//! Observability vocabulary: the structured events switches and fabric
//! wrappers can report about a run.
//!
//! The event types live here (rather than in `fifoms-obs`) so that the
//! fabric and scheduler crates can *emit* events without depending on any
//! sink, serialisation or metrics machinery. The `fifoms-obs` crate
//! provides the consuming side: sinks, JSONL export, metric registries and
//! the profiling harness.
//!
//! Events are plain data. Emitting one costs a `Vec::push`; when no trace
//! sink is attached, nothing in the workspace constructs per-slot events
//! at all, so the hot path pays only an untaken branch.

use crate::{PortId, Slot};

/// One structured observation about a run.
///
/// The taxonomy (see `DESIGN.md` §8):
///
/// * [`ObsEvent::RunMeta`] — once per run: who ran what, with the full
///   workload parameter provenance (`p`, `b`, fanout bounds, burst
///   lengths, ...) so a trace is self-describing even when the workload
///   has no closed-form offered load;
/// * [`ObsEvent::SlotSched`] — once per (non-idle) slot: the scheduler's
///   per-slot matching dynamics, derived generically from the
///   [`SlotOutcome`](crate::SlotOutcome) by an instrumentation wrapper;
/// * [`ObsEvent::FaultMasked`] — a fault-injection wrapper trimmed or
///   dropped an arriving packet;
/// * [`ObsEvent::InvariantViolated`] — a runtime invariant checker caught
///   a structural violation.
#[derive(Clone, PartialEq, Debug)]
pub enum ObsEvent {
    /// Identity and workload provenance of one run, emitted before slot 0.
    RunMeta {
        /// Scheduler name as reported by the switch.
        switch: String,
        /// Workload name as reported by the traffic model.
        traffic: String,
        /// The workload's defining parameters as `(name, value)` pairs
        /// (e.g. `("p", 0.25)`, `("b", 0.2)`). Self-describing provenance
        /// for rows whose analytic `offered_load` is unknown.
        params: Vec<(String, f64)>,
    },
    /// Per-slot scheduler dynamics (the Fig. 5 view, per slot instead of
    /// averaged).
    SlotSched {
        /// The slot this record describes.
        slot: Slot,
        /// Ports with at least one queued packet before scheduling (the
        /// demand side of the request phase).
        active_ports: u32,
        /// Distinct inputs that transmitted at least one copy this slot.
        matched_inputs: u32,
        /// Request/grant iterations executed (iterations-to-convergence).
        rounds: u32,
        /// Crosspoint connections made (a fanout-`k` transfer counts `k`).
        connections: u32,
        /// Inputs that used the crossbar's native multicast (two or more
        /// copies in one slot).
        multicast_inputs: u32,
        /// Packets served *partially* this slot (fanout splitting: some
        /// copies sent, a residue stays queued).
        fanout_splits: u32,
        /// Packets whose final copy departed this slot.
        completed_packets: u32,
        /// Distinct packets still queued after the slot.
        backlog_packets: u64,
        /// Undelivered copies still queued after the slot.
        backlog_copies: u64,
        /// Age in slots of the oldest packet still queued after the slot
        /// (`None` when the switch drained): the starvation indicator.
        oldest_age: Option<u64>,
    },
    /// A fault-injection wrapper masked part or all of an arrival.
    FaultMasked {
        /// The arrival slot the fault applied to.
        slot: Slot,
        /// The input port the packet arrived on.
        input: PortId,
        /// Copies removed from the packet's fanout.
        copies_dropped: u32,
        /// Whether the whole packet was dropped (entire fanout dead).
        packet_dropped: bool,
    },
    /// A runtime invariant checker recorded its (first, sticky) violation.
    InvariantViolated {
        /// The slot the violation was detected.
        slot: Slot,
        /// Human-readable rendering of the violation.
        detail: String,
    },
}

impl ObsEvent {
    /// The event's kind as a stable lowercase tag (the `"event"` field of
    /// the JSONL export).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::RunMeta { .. } => "run_meta",
            ObsEvent::SlotSched { .. } => "slot_sched",
            ObsEvent::FaultMasked { .. } => "fault_masked",
            ObsEvent::InvariantViolated { .. } => "invariant_violated",
        }
    }

    /// The slot the event is anchored to, if it is slot-scoped.
    pub fn slot(&self) -> Option<Slot> {
        match self {
            ObsEvent::RunMeta { .. } => None,
            ObsEvent::SlotSched { slot, .. }
            | ObsEvent::FaultMasked { slot, .. }
            | ObsEvent::InvariantViolated { slot, .. } => Some(*slot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let meta = ObsEvent::RunMeta {
            switch: "FIFOMS".into(),
            traffic: "bernoulli".into(),
            params: vec![("p".into(), 0.2)],
        };
        assert_eq!(meta.kind(), "run_meta");
        assert_eq!(meta.slot(), None);
        let fault = ObsEvent::FaultMasked {
            slot: Slot(7),
            input: PortId(3),
            copies_dropped: 2,
            packet_dropped: false,
        };
        assert_eq!(fault.kind(), "fault_masked");
        assert_eq!(fault.slot(), Some(Slot(7)));
    }
}
