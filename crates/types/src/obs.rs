//! Observability vocabulary: the structured events switches and fabric
//! wrappers can report about a run.
//!
//! The event types live here (rather than in `fifoms-obs`) so that the
//! fabric and scheduler crates can *emit* events without depending on any
//! sink, serialisation or metrics machinery. The `fifoms-obs` crate
//! provides the consuming side: sinks, JSONL export, metric registries and
//! the profiling harness.
//!
//! Events are plain data. Emitting one costs a `Vec::push`; when no trace
//! sink is attached, nothing in the workspace constructs per-slot events
//! at all, so the hot path pays only an untaken branch.

use crate::{PacketId, PortId, Slot};

/// One structured observation about a run.
///
/// The taxonomy (see `DESIGN.md` §8):
///
/// * [`ObsEvent::RunMeta`] — once per run: who ran what, with the full
///   workload parameter provenance (`p`, `b`, fanout bounds, burst
///   lengths, ...) so a trace is self-describing even when the workload
///   has no closed-form offered load;
/// * [`ObsEvent::SlotSched`] — once per (non-idle) slot: the scheduler's
///   per-slot matching dynamics, derived generically from the
///   [`SlotOutcome`](crate::SlotOutcome) by an instrumentation wrapper;
/// * [`ObsEvent::FaultMasked`] — a fault-injection wrapper trimmed or
///   dropped an arriving packet;
/// * [`ObsEvent::InvariantViolated`] — a runtime invariant checker caught
///   a structural violation;
/// * [`ObsEvent::RecorderMeta`] / [`ObsEvent::PacketArrived`] /
///   [`ObsEvent::CopySent`] / [`ObsEvent::PacketCompleted`] — the
///   packet-level flight recorder (see `DESIGN.md` §9): per-packet
///   lifecycles behind a sampling gate, consumed by the `analysis`
///   module of `fifoms-obs`;
/// * [`ObsEvent::RunEnd`] — the engine's end-of-run marker. `SlotSched`
///   is skipped for idle slots, so without a terminator a trace consumer
///   could not tell an idle tail from a truncated file; `RunEnd` makes
///   idleness explicit: any slot in `[0, slots_run)` with no `SlotSched`
///   record is provably idle, and utilisation is computable exactly.
#[derive(Clone, PartialEq, Debug)]
pub enum ObsEvent {
    /// Identity and workload provenance of one run, emitted before slot 0.
    RunMeta {
        /// Scheduler name as reported by the switch.
        switch: String,
        /// Workload name as reported by the traffic model.
        traffic: String,
        /// Switch size `N` (ports), so trace consumers can compare
        /// convergence rounds against the `log2 N` reference.
        ports: u32,
        /// The workload's defining parameters as `(name, value)` pairs
        /// (e.g. `("p", 0.25)`, `("b", 0.2)`). Self-describing provenance
        /// for rows whose analytic `offered_load` is unknown.
        params: Vec<(String, f64)>,
    },
    /// Per-slot scheduler dynamics (the Fig. 5 view, per slot instead of
    /// averaged).
    SlotSched {
        /// The slot this record describes.
        slot: Slot,
        /// Ports with at least one queued packet before scheduling (the
        /// demand side of the request phase).
        active_ports: u32,
        /// Distinct inputs that transmitted at least one copy this slot.
        matched_inputs: u32,
        /// Request/grant iterations executed (iterations-to-convergence).
        rounds: u32,
        /// Crosspoint connections made (a fanout-`k` transfer counts `k`).
        connections: u32,
        /// Inputs that used the crossbar's native multicast (two or more
        /// copies in one slot).
        multicast_inputs: u32,
        /// Packets served *partially* this slot (fanout splitting: some
        /// copies sent, a residue stays queued).
        fanout_splits: u32,
        /// Packets whose final copy departed this slot.
        completed_packets: u32,
        /// Distinct packets still queued after the slot.
        backlog_packets: u64,
        /// Undelivered copies still queued after the slot.
        backlog_copies: u64,
        /// Age in slots of the oldest packet still queued after the slot
        /// (`None` when the switch drained): the starvation indicator.
        oldest_age: Option<u64>,
    },
    /// A fault-injection wrapper masked part or all of an arrival.
    FaultMasked {
        /// The arrival slot the fault applied to.
        slot: Slot,
        /// The input port the packet arrived on.
        input: PortId,
        /// Copies removed from the packet's fanout.
        copies_dropped: u32,
        /// Whether the whole packet was dropped (entire fanout dead).
        packet_dropped: bool,
    },
    /// An egress fault killed a scheduled copy at crosspoint-traversal
    /// time. Emitted by the fault injector; `requeued` tells whether the
    /// copy went back to the head of its VOQ (timestamp preserved) or was
    /// abandoned with its `fanoutCounter` reconciled.
    CopyKilled {
        /// The slot the transmission was killed.
        slot: Slot,
        /// The input port that was transmitting.
        input: PortId,
        /// The destination output the copy was bound for.
        output: PortId,
        /// The packet the copy belongs to.
        packet: PacketId,
        /// `true` if the copy was re-queued for retransmission, `false`
        /// if the retry budget was exhausted and it became a structured
        /// drop.
        requeued: bool,
        /// How many times this copy has now been killed (1 on the first
        /// failure).
        retry: u32,
    },
    /// A previously killed copy finally crossed the fabric.
    CopyRecovered {
        /// The slot the copy was delivered.
        slot: Slot,
        /// The input port that transmitted it.
        input: PortId,
        /// The destination output reached.
        output: PortId,
        /// The packet the copy belongs to.
        packet: PacketId,
        /// Total kills the copy survived before delivery.
        kills: u32,
        /// Slots between the first kill and the successful delivery
        /// (the copy's time-to-recover).
        latency: u64,
    },
    /// A runtime invariant checker recorded its (first, sticky) violation.
    InvariantViolated {
        /// The slot the violation was detected.
        slot: Slot,
        /// Human-readable rendering of the violation.
        detail: String,
    },
    /// Flight-recorder configuration, emitted once when packet-level
    /// tracing is enabled. Consumers use it to decide which analyses are
    /// sound: the starvation audit and delay decomposition require
    /// `mode == "all"` (every lifecycle present); sampled or ring traces
    /// only support per-copy statistics over the packets they kept.
    RecorderMeta {
        /// Sampling gate: `"all"`, `"sample"` (1-in-`param`) or `"ring"`
        /// (bounded buffer of the last `param` packet events).
        mode: String,
        /// The gate's parameter (`0` for `"all"`).
        param: u64,
    },
    /// A sampled packet entered the switch.
    PacketArrived {
        /// The packet's engine-assigned id.
        id: PacketId,
        /// Arrival slot (the packet's timestamp in FIFOMS terms).
        slot: Slot,
        /// Input port the packet arrived on.
        input: PortId,
        /// Number of destination outputs (fanout).
        fanout: u32,
    },
    /// One copy of a sampled packet crossed the fabric.
    CopySent {
        /// The packet the copy belongs to.
        id: PacketId,
        /// The slot the copy departed.
        slot: Slot,
        /// The destination output.
        output: PortId,
        /// Whether this was a *partial* service of the packet's residual
        /// fanout (fanout splitting: more copies remain queued after this
        /// slot).
        split: bool,
    },
    /// The final copy of a sampled packet departed.
    PacketCompleted {
        /// The packet that completed.
        id: PacketId,
        /// The slot its last copy departed.
        slot: Slot,
    },
    /// Finite-buffer admission control refused or evicted copies of a
    /// packet (drop-tail, pushout eviction, or fair shedding). One event
    /// summarises all copies of one packet removed by one policy decision;
    /// per-copy ledger records travel separately through
    /// `Switch::drain_admission_drops`. Emitted outside the flight
    /// recorder's sampling gate, so sampled and ring traces still carry
    /// every admission drop and `analyze` can reconcile loss exactly.
    AdmissionDropped {
        /// The slot the copies were refused or evicted.
        slot: Slot,
        /// The input port whose buffers were full.
        input: PortId,
        /// The packet that lost copies.
        packet: PacketId,
        /// Number of copies removed by this decision.
        copies: u32,
        /// Policy tag: `"tail_full"`, `"pushout"` or `"fair_shed"`.
        cause: String,
    },
    /// A virtual output queue crossed the soft high-water mark for the
    /// first time this run. Emitted even with finite-buffer limits
    /// disabled, so unbounded growth is visible in traces before it
    /// becomes an out-of-memory incident.
    VoqHighWater {
        /// The arrival slot that pushed the queue over the mark.
        slot: Slot,
        /// The input port owning the queue.
        input: PortId,
        /// The output the queue feeds.
        output: PortId,
        /// Queue depth (address cells) at the crossing.
        depth: u64,
    },
    /// The overload governor moved to a new rung of the degradation
    /// ladder (0 = healthy, 1 = shed packet tracing, 2 = sample metrics,
    /// 3 = shed lowest-priority fanout).
    OverloadLevel {
        /// The slot the level changed.
        slot: Slot,
        /// The new degradation level.
        level: u32,
        /// Queued copies that drove the decision.
        backlog_copies: u64,
    },
    /// Aggregated wall time of one named profiler phase (or nested
    /// span), emitted once at end-of-run by profiled runs that also
    /// carry a trace sink. Spans are identified by name; nested spans
    /// (e.g. `"grant"` under `"schedule"`) appear as their own records.
    PhaseTimed {
        /// The phase or span name (`"schedule"`, `"grant"`, ...).
        phase: String,
        /// Times the span was entered over the sampled slots.
        calls: u64,
        /// Wall time inside the span including children, in ns.
        inclusive_ns: u64,
        /// Wall time inside the span excluding children, in ns.
        exclusive_ns: u64,
    },
    /// Per-slot wall-time distribution summary over the sampled slots of
    /// a profiled run, emitted once at end-of-run. Quantiles come from a
    /// log₂-bucketed histogram, so they are conservative lower bounds
    /// (at most 2× below the true value); `max_ns` is exact.
    SlotTimeSummary {
        /// Slots whose wall time was sampled.
        samples: u64,
        /// Median slot wall time, in ns.
        p50_ns: u64,
        /// 99th-percentile slot wall time, in ns.
        p99_ns: u64,
        /// 99.9th-percentile slot wall time, in ns.
        p999_ns: u64,
        /// Worst sampled slot wall time, in ns.
        max_ns: u64,
    },
    /// Telemetry window configuration, emitted once per scope before the
    /// first [`ObsEvent::WindowSummary`] of a live-telemetry run. Makes a
    /// `fifoms-timeseries-v1` stream self-describing: consumers learn the
    /// window stride (slots per window) and the snapshot ring depth
    /// without out-of-band configuration.
    WindowMeta {
        /// Slots aggregated into each window.
        stride: u64,
        /// Closed windows retained in the live snapshot ring.
        ring: u32,
        /// Switch size `N`, for per-input scoreboard rendering.
        ports: u32,
    },
    /// One closed telemetry window: counters aggregated over `slots`
    /// consecutive slots starting at `start_slot`. All fields are
    /// integers so constructing and emitting a summary never allocates —
    /// the engine can close windows from inside the slot loop without
    /// perturbing the alloc-audit gate.
    WindowSummary {
        /// Zero-based window index within the run.
        window: u64,
        /// First slot aggregated into this window.
        start_slot: u64,
        /// Slots aggregated (equal to the stride except for a partial
        /// final window).
        slots: u64,
        /// Packets admitted by the traffic/admission path this window.
        admitted_packets: u64,
        /// Copies delivered across the fabric this window.
        delivered_copies: u64,
        /// Packets whose final copy departed this window.
        completed_packets: u64,
        /// Copies refused by drop-tail admission (`cause == "tail_full"`).
        drop_tail_full: u64,
        /// Copies evicted by pushout (`cause == "pushout"`).
        drop_pushout: u64,
        /// Copies shed by fair shedding (`cause == "fair_shed"`).
        drop_fair_shed: u64,
        /// Copies killed at crosspoint traversal by egress faults.
        copy_kills: u64,
        /// Previously killed copies that finally crossed the fabric.
        copy_recoveries: u64,
        /// Deepest VOQ high-water crossing observed this window (0 when
        /// no queue crossed the soft mark).
        voq_high_water: u64,
        /// Undelivered copies still queued when the window closed.
        backlog_copies: u64,
        /// `(input, output)` paths quarantined by the fault scoreboard
        /// when the window closed.
        quarantined_paths: u32,
        /// Highest overload-governor rung observed this window.
        overload_level: u32,
        /// Wall time spent inside the scheduler's `run_slot` this window,
        /// in ns (0 when the engine does not time the schedule phase).
        sched_ns: u64,
        /// Wall time of the whole window's slot loop, in ns. Windowed
        /// slots/sec is `slots * 1e9 / wall_ns`.
        wall_ns: u64,
    },
    /// End-of-run marker: the number of slots actually executed. Emitted
    /// by the engine as the last event of an observed run; encodes idle
    /// slots explicitly (a slot below `slots_run` with no `SlotSched`
    /// record was idle, not lost).
    RunEnd {
        /// Slots executed (may be below the configured total if the
        /// backlog cap aborted the run).
        slots_run: u64,
    },
    /// The engine persisted a crash-recovery checkpoint (see `DESIGN.md`
    /// §15). Emitted *after* the trace byte offset stored inside the
    /// checkpoint was captured, so a recovery that truncates the trace to
    /// that offset and resumes re-emits this exact event — recovered and
    /// uninterrupted traces stay bit-identical.
    CheckpointWritten {
        /// The slot about to execute when the state was captured.
        slot: Slot,
        /// Monotonic checkpoint sequence number (`slot / interval`, so it
        /// is deterministic across recoveries).
        seq: u64,
        /// Size of the framed checkpoint blob in bytes.
        bytes: u64,
    },
    /// A supervisor began restoring a run from a checkpoint. Emitted to
    /// the *supervisor's* event log, never to the deterministic run trace
    /// (an uninterrupted run has no recoveries, so trace-level emission
    /// would break bit-identity).
    RecoveryStarted {
        /// The slot execution will resume from (the checkpoint's slot).
        slot: Slot,
        /// Sequence number of the checkpoint being restored.
        seq: u64,
    },
    /// A restore finished: state was loaded and the write-ahead arrival
    /// log replayed up to the crash frontier. Supervisor-log only, like
    /// [`ObsEvent::RecoveryStarted`].
    RecoveryCompleted {
        /// The first slot executed live after replay.
        slot: Slot,
        /// Write-ahead-log slots replayed deterministically.
        replayed: u64,
    },
}

impl ObsEvent {
    /// The event's kind as a stable lowercase tag (the `"event"` field of
    /// the JSONL export).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::RunMeta { .. } => "run_meta",
            ObsEvent::SlotSched { .. } => "slot_sched",
            ObsEvent::FaultMasked { .. } => "fault_masked",
            ObsEvent::CopyKilled { .. } => "copy_killed",
            ObsEvent::CopyRecovered { .. } => "copy_recovered",
            ObsEvent::InvariantViolated { .. } => "invariant_violated",
            ObsEvent::RecorderMeta { .. } => "recorder_meta",
            ObsEvent::PacketArrived { .. } => "packet_arrived",
            ObsEvent::CopySent { .. } => "copy_sent",
            ObsEvent::PacketCompleted { .. } => "packet_completed",
            ObsEvent::AdmissionDropped { .. } => "admission_dropped",
            ObsEvent::VoqHighWater { .. } => "voq_high_water",
            ObsEvent::OverloadLevel { .. } => "overload_level",
            ObsEvent::PhaseTimed { .. } => "phase_timed",
            ObsEvent::SlotTimeSummary { .. } => "slot_time",
            ObsEvent::WindowMeta { .. } => "window_meta",
            ObsEvent::WindowSummary { .. } => "window_summary",
            ObsEvent::RunEnd { .. } => "run_end",
            ObsEvent::CheckpointWritten { .. } => "checkpoint_written",
            ObsEvent::RecoveryStarted { .. } => "recovery_started",
            ObsEvent::RecoveryCompleted { .. } => "recovery_completed",
        }
    }

    /// The slot the event is anchored to, if it is slot-scoped.
    pub fn slot(&self) -> Option<Slot> {
        match self {
            ObsEvent::RunMeta { .. }
            | ObsEvent::RecorderMeta { .. }
            | ObsEvent::PhaseTimed { .. }
            | ObsEvent::SlotTimeSummary { .. }
            | ObsEvent::WindowMeta { .. }
            | ObsEvent::WindowSummary { .. }
            | ObsEvent::RunEnd { .. } => None,
            ObsEvent::SlotSched { slot, .. }
            | ObsEvent::FaultMasked { slot, .. }
            | ObsEvent::CopyKilled { slot, .. }
            | ObsEvent::CopyRecovered { slot, .. }
            | ObsEvent::InvariantViolated { slot, .. }
            | ObsEvent::PacketArrived { slot, .. }
            | ObsEvent::CopySent { slot, .. }
            | ObsEvent::PacketCompleted { slot, .. }
            | ObsEvent::AdmissionDropped { slot, .. }
            | ObsEvent::VoqHighWater { slot, .. }
            | ObsEvent::OverloadLevel { slot, .. }
            | ObsEvent::CheckpointWritten { slot, .. }
            | ObsEvent::RecoveryStarted { slot, .. }
            | ObsEvent::RecoveryCompleted { slot, .. } => Some(*slot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let meta = ObsEvent::RunMeta {
            switch: "FIFOMS".into(),
            traffic: "bernoulli".into(),
            ports: 16,
            params: vec![("p".into(), 0.2)],
        };
        assert_eq!(meta.kind(), "run_meta");
        assert_eq!(meta.slot(), None);
        let fault = ObsEvent::FaultMasked {
            slot: Slot(7),
            input: PortId(3),
            copies_dropped: 2,
            packet_dropped: false,
        };
        assert_eq!(fault.kind(), "fault_masked");
        assert_eq!(fault.slot(), Some(Slot(7)));
    }

    #[test]
    fn egress_fault_events_are_slot_scoped() {
        let killed = ObsEvent::CopyKilled {
            slot: Slot(12),
            input: PortId(0),
            output: PortId(5),
            packet: PacketId(42),
            requeued: true,
            retry: 1,
        };
        assert_eq!(killed.kind(), "copy_killed");
        assert_eq!(killed.slot(), Some(Slot(12)));
        let recovered = ObsEvent::CopyRecovered {
            slot: Slot(19),
            input: PortId(0),
            output: PortId(5),
            packet: PacketId(42),
            kills: 2,
            latency: 7,
        };
        assert_eq!(recovered.kind(), "copy_recovered");
        assert_eq!(recovered.slot(), Some(Slot(19)));
    }

    #[test]
    fn packet_events_are_slot_scoped() {
        let arrived = ObsEvent::PacketArrived {
            id: PacketId(9),
            slot: Slot(3),
            input: PortId(1),
            fanout: 4,
        };
        assert_eq!(arrived.kind(), "packet_arrived");
        assert_eq!(arrived.slot(), Some(Slot(3)));
        let sent = ObsEvent::CopySent {
            id: PacketId(9),
            slot: Slot(5),
            output: PortId(2),
            split: true,
        };
        assert_eq!(sent.kind(), "copy_sent");
        assert_eq!(sent.slot(), Some(Slot(5)));
        let done = ObsEvent::PacketCompleted {
            id: PacketId(9),
            slot: Slot(6),
        };
        assert_eq!(done.kind(), "packet_completed");
        assert_eq!(done.slot(), Some(Slot(6)));
        // Run-scoped markers carry no slot.
        let rec = ObsEvent::RecorderMeta {
            mode: "ring".into(),
            param: 1024,
        };
        assert_eq!(rec.kind(), "recorder_meta");
        assert_eq!(rec.slot(), None);
        let end = ObsEvent::RunEnd { slots_run: 1000 };
        assert_eq!(end.kind(), "run_end");
        assert_eq!(end.slot(), None);
    }

    #[test]
    fn profiler_events_are_run_scoped() {
        let phase = ObsEvent::PhaseTimed {
            phase: "grant".into(),
            calls: 625,
            inclusive_ns: 10_000,
            exclusive_ns: 9_000,
        };
        assert_eq!(phase.kind(), "phase_timed");
        assert_eq!(phase.slot(), None);
        let slot_time = ObsEvent::SlotTimeSummary {
            samples: 625,
            p50_ns: 2048,
            p99_ns: 8192,
            p999_ns: 16384,
            max_ns: 20000,
        };
        assert_eq!(slot_time.kind(), "slot_time");
        assert_eq!(slot_time.slot(), None);
    }

    #[test]
    fn telemetry_window_events_are_run_scoped() {
        let meta = ObsEvent::WindowMeta {
            stride: 1000,
            ring: 64,
            ports: 16,
        };
        assert_eq!(meta.kind(), "window_meta");
        assert_eq!(meta.slot(), None);
        let summary = ObsEvent::WindowSummary {
            window: 3,
            start_slot: 3000,
            slots: 1000,
            admitted_packets: 450,
            delivered_copies: 1800,
            completed_packets: 440,
            drop_tail_full: 12,
            drop_pushout: 0,
            drop_fair_shed: 3,
            copy_kills: 2,
            copy_recoveries: 2,
            voq_high_water: 48,
            backlog_copies: 90,
            quarantined_paths: 1,
            overload_level: 2,
            sched_ns: 1_000_000,
            wall_ns: 2_000_000,
        };
        assert_eq!(summary.kind(), "window_summary");
        assert_eq!(summary.slot(), None);
    }

    #[test]
    fn overload_events_are_slot_scoped() {
        let dropped = ObsEvent::AdmissionDropped {
            slot: Slot(4),
            input: PortId(2),
            packet: PacketId(11),
            copies: 3,
            cause: "tail_full".into(),
        };
        assert_eq!(dropped.kind(), "admission_dropped");
        assert_eq!(dropped.slot(), Some(Slot(4)));
        let high = ObsEvent::VoqHighWater {
            slot: Slot(8),
            input: PortId(0),
            output: PortId(1),
            depth: 1024,
        };
        assert_eq!(high.kind(), "voq_high_water");
        assert_eq!(high.slot(), Some(Slot(8)));
        let level = ObsEvent::OverloadLevel {
            slot: Slot(12),
            level: 2,
            backlog_copies: 9000,
        };
        assert_eq!(level.kind(), "overload_level");
        assert_eq!(level.slot(), Some(Slot(12)));
    }
}
