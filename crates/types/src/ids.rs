//! Identifier newtypes: time slots, ports and packets.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A discrete time slot.
///
/// The switch model is synchronous: in each slot at most one cell arrives at
/// each input port, the scheduler computes a matching, and matched cells
/// traverse the crossbar. `Slot` is a transparent wrapper around `u64` with
/// only the arithmetic the simulator needs, to prevent accidental mixing of
/// slot counts with other integers (e.g. queue lengths).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Slot(pub u64);

impl Slot {
    /// Slot zero, the start of a simulation.
    pub const ZERO: Slot = Slot(0);

    /// The raw slot index.
    #[inline]
    pub fn index(self) -> u64 {
        self.0
    }

    /// The slot immediately after this one.
    #[inline]
    pub fn next(self) -> Slot {
        Slot(self.0 + 1)
    }

    /// Saturating difference `self - earlier` in whole slots.
    ///
    /// Used for delay computation: a cell arriving and departing in the same
    /// slot has delay 0.
    #[inline]
    pub fn delay_since(self, earlier: Slot) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Slot {
    type Output = Slot;
    #[inline]
    fn add(self, rhs: u64) -> Slot {
        Slot(self.0 + rhs)
    }
}

impl AddAssign<u64> for Slot {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Slot> for Slot {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Slot) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("slot subtraction underflow")
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An input or output port index.
///
/// Ports are numbered `0..N`. The same type is used for input and output
/// ports; the switch geometry is always square in this model (as in the
/// paper), and which side a `PortId` refers to is unambiguous from context.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u16);

impl PortId {
    /// The raw index as `usize`, for indexing port-indexed vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize`, panicking if it exceeds `u16::MAX`.
    #[inline]
    pub fn new(index: usize) -> PortId {
        assert!(index <= u16::MAX as usize, "port index {index} out of range");
        PortId(index as u16)
    }
}

impl From<u16> for PortId {
    #[inline]
    fn from(v: u16) -> PortId {
        PortId(v)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A unique packet (cell) identifier.
///
/// Identifiers are assigned by traffic sources in arrival order and are
/// unique within a simulation run. The simulator uses them to correlate the
/// possibly many [`Departure`](crate::Departure) records of one multicast
/// packet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PacketId(pub u64);

impl PacketId {
    /// The raw identifier.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_arithmetic() {
        let t = Slot(10);
        assert_eq!(t.next(), Slot(11));
        assert_eq!(t + 5, Slot(15));
        assert_eq!(Slot(15) - t, 5);
        assert_eq!(t.delay_since(Slot(3)), 7);
        assert_eq!(t.delay_since(Slot(10)), 0);
        // delay_since saturates rather than panicking on out-of-order input
        assert_eq!(Slot(3).delay_since(Slot(10)), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn slot_sub_underflow_panics() {
        let _ = Slot(1) - Slot(2);
    }

    #[test]
    fn slot_add_assign() {
        let mut t = Slot::ZERO;
        t += 3;
        assert_eq!(t, Slot(3));
    }

    #[test]
    fn port_id_round_trip() {
        let p = PortId::new(13);
        assert_eq!(p.index(), 13);
        assert_eq!(PortId::from(13u16), p);
        assert_eq!(format!("{p}"), "p13");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn port_id_overflow_panics() {
        let _ = PortId::new(usize::from(u16::MAX) + 1);
    }

    #[test]
    fn packet_id_display() {
        assert_eq!(format!("{}", PacketId(7)), "pkt7");
        assert_eq!(PacketId(7).raw(), 7);
    }

    #[test]
    fn slot_ordering_matches_index() {
        assert!(Slot(3) < Slot(4));
        assert_eq!(Slot(9).index(), 9);
        assert_eq!(format!("{}", Slot(2)), "t2");
    }
}
