//! Core vocabulary types for the FIFOMS reproduction.
//!
//! This crate defines the shared, dependency-free types used by every other
//! crate in the workspace:
//!
//! * [`Slot`] — the discrete time unit of the synchronous switch model.
//! * [`PortId`], [`PacketId`] — newtype identifiers.
//! * [`PortSet`] — a compact bitset over output ports used to represent a
//!   multicast packet's destination set (its *fanout set*).
//! * [`Packet`] — a fixed-size cell entering the switch.
//! * [`Departure`], [`SlotOutcome`] — the per-slot result record every
//!   switch implementation produces, from which all paper metrics
//!   (input/output oriented delay, queue sizes, convergence rounds) are
//!   derived.
//!
//! The paper models a switch with `N` input ports and `N` output ports and
//! fixed-length cells, operating in synchronous time slots (§I). All types
//! here are deliberately free of behaviour beyond what the model requires,
//! so that scheduler crates stay small and auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod error;
mod fault;
mod ids;
mod obs;
mod outcome;
mod packet;
mod portset;
mod timing;

pub use checkpoint::{
    crc32, frame_state, get_admission_drop, get_dropped_copy, get_obs_event, get_violation,
    put_admission_drop, put_dropped_copy, put_obs_event, put_violation, unframe_state, Checkpoint,
    StateError, StateReader, StateWriter, STATE_FORMAT_VERSION, STATE_MAGIC,
};
pub use error::{check_ports, check_probability, InvariantViolation, SimError, TypeError};
pub use fault::{AdmissionDrop, DropCause, DroppedCopy, RetryDisposition};
pub use ids::{PacketId, PortId, Slot};
pub use obs::ObsEvent;
pub use outcome::{Departure, SlotOutcome};
pub use packet::Packet;
pub use portset::{PortSet, PortSetIter};
pub use timing::{SpanSample, SpanTimer};

/// The largest switch size the workspace supports.
///
/// The paper evaluates a 16×16 switch; we allow considerably larger switches
/// for scaling studies. `PortSet` stores up to 128 ports inline and spills
/// to the heap beyond that, so this cap exists only to catch nonsensical
/// configuration values early.
pub const MAX_PORTS: usize = 4096;
