//! Measurement-only timing vocabulary for the span profiler.
//!
//! These types exist so the scheduler and fabric crates can *measure*
//! wall time without reading the clock through `std::time` directly —
//! the R1 determinism lint forbids raw clock access in those crates
//! because simulation results must be a function of the seed alone.
//! A [`SpanTimer`] may only ever feed profiler output: nothing read from
//! it is allowed to influence scheduling decisions, and the span hooks
//! are dead (`recording == false`) unless a profiled run turned them on.

use std::time::Instant;

/// One timed sub-phase of a slot, reported by a switch when span
/// recording is enabled (e.g. `("grant", 1834)`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanSample {
    /// Stable span name, e.g. `"voq_scan"`, `"request"`, `"grant"`,
    /// `"commit"`.
    pub name: &'static str,
    /// Wall time spent in the span, in nanoseconds.
    pub ns: u64,
}

/// A monotonic stopwatch for profiler spans.
///
/// # Examples
///
/// ```
/// use fifoms_types::SpanTimer;
///
/// let t = SpanTimer::start();
/// let ns = t.elapsed_ns();
/// assert!(ns < 1_000_000_000, "reading a timer is fast");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SpanTimer(Instant);

impl SpanTimer {
    /// Start the stopwatch.
    #[inline]
    pub fn start() -> SpanTimer {
        SpanTimer(Instant::now())
    }

    /// Nanoseconds elapsed since [`SpanTimer::start`], saturating at
    /// `u64::MAX` (584 years).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        let ns = self.0.elapsed().as_nanos();
        u64::try_from(ns).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotonic() {
        let t = SpanTimer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn span_samples_are_plain_data() {
        let s = SpanSample {
            name: "grant",
            ns: 120,
        };
        let t = s;
        assert_eq!(s, t);
        assert_eq!(format!("{s:?}"), "SpanSample { name: \"grant\", ns: 120 }");
    }
}
