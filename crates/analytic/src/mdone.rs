//! M/D/1 queue formulas (the `N → ∞` limit of the output-queued switch).

/// Pollaczek–Khinchine mean wait of an M/D/1 queue with utilisation
/// `rho` (service time = 1 slot): `W = ρ / (2(1−ρ))`.
///
/// # Panics
///
/// Panics unless `0 <= rho < 1`.
pub fn mean_wait(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "rho {rho} outside [0,1)");
    rho / (2.0 * (1.0 - rho))
}

/// Mean sojourn (wait + the unit service slot).
pub fn mean_sojourn(rho: f64) -> f64 {
    mean_wait(rho) + 1.0
}

/// Mean number in queue (excluding the cell in service), by Little's law.
pub fn mean_queue(rho: f64) -> f64 {
    rho * mean_wait(rho)
}

/// The M/D/1 wait upper-bounds the finite-`N` output-queued switch wait
/// for every `N` (Karol's `(N−1)/N` factor is < 1), which makes it a
/// handy conservative bound for sizing buffers.
pub fn bounds_oq_wait(n: usize, rho: f64) -> bool {
    crate::karol::oq_mean_wait(n, rho) <= mean_wait(rho) + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(mean_wait(0.0), 0.0);
        assert!((mean_wait(0.5) - 0.5).abs() < 1e-12);
        assert!((mean_wait(0.8) - 2.0).abs() < 1e-12);
        assert!((mean_sojourn(0.8) - 3.0).abs() < 1e-12);
        assert!((mean_queue(0.8) - 1.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rho_out_of_range() {
        mean_wait(-0.1);
    }

    proptest! {
        #[test]
        fn prop_mdone_dominates_finite_oq(n in 1usize..512, rho in 0.0f64..0.999) {
            prop_assert!(bounds_oq_wait(n, rho));
        }

        #[test]
        fn prop_wait_monotone_in_rho(a in 0.0f64..0.99, b in 0.0f64..0.99) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(mean_wait(lo) <= mean_wait(hi) + 1e-12);
        }
    }
}
