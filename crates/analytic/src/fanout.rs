//! Analytic fanout distributions of the paper's traffic models.
//!
//! Centralises the closed forms the traffic crate's tests and
//! EXPERIMENTS.md sanity checks rely on, in particular the truncation
//! corrections introduced by resampling empty destination draws.

/// Mean of a Binomial(`n`, `b`) truncated to values `>= min_k`.
///
/// The Bernoulli multicast model draws each output with probability `b`
/// and redraws results below `min_k` destinations (1 for the Bernoulli
/// and burst models, 2 for the mixed model's multicast class).
///
/// # Panics
///
/// Panics for `b` outside `(0, 1]`, `n == 0`, or `min_k > n`.
pub fn truncated_binomial_mean(n: usize, b: f64, min_k: usize) -> f64 {
    assert!(n > 0, "n must be positive");
    assert!(b > 0.0 && b <= 1.0, "b {b} outside (0,1]");
    assert!(min_k <= n, "min_k {min_k} > n {n}");
    let mean = n as f64 * b;
    if min_k == 0 {
        return mean;
    }
    // P(X = k) for k < min_k, accumulated exactly.
    let mut p_below = 0.0;
    let mut mass_below = 0.0;
    let mut pk = (1.0 - b).powi(n as i32); // P(X = 0)
    for k in 0..min_k {
        p_below += pk;
        mass_below += k as f64 * pk;
        // advance to P(X = k+1)
        pk *= (n - k) as f64 / (k + 1) as f64 * b / (1.0 - b);
    }
    (mean - mass_below) / (1.0 - p_below)
}

/// The Bernoulli model's *actual* mean fanout: Binomial(`n`, `b`)
/// truncated at ≥ 1 (the paper's nominal `b·N` ignores the truncation).
pub fn bernoulli_mean_fanout(n: usize, b: f64) -> f64 {
    truncated_binomial_mean(n, b, 1)
}

/// The multiplicative bias of the truncation: actual load over the
/// paper's nominal `p·b·N`. Equals `1/(1 − (1−b)^N)`.
pub fn bernoulli_load_correction(n: usize, b: f64) -> f64 {
    bernoulli_mean_fanout(n, b) / (n as f64 * b)
}

/// Mean fanout of the uniform model: `(1 + max_fanout)/2`.
pub fn uniform_mean_fanout(max_fanout: usize) -> f64 {
    (1.0 + max_fanout as f64) / 2.0
}

/// Arrival rate of the two-state burst model: `E_on / (E_on + E_off)`.
pub fn burst_arrival_rate(e_off: f64, e_on: f64) -> f64 {
    assert!(e_off >= 1.0 && e_on >= 1.0, "state lengths must be >= 1");
    e_on / (e_on + e_off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn untruncated_is_plain_mean() {
        assert!((truncated_binomial_mean(16, 0.2, 0) - 3.2).abs() < 1e-12);
    }

    #[test]
    fn truncation_at_one_matches_closed_form() {
        // E[X | X >= 1] = nb / (1 - (1-b)^n)
        let n = 16;
        let b = 0.2;
        let expect = n as f64 * b / (1.0 - (1.0f64 - b).powi(n as i32));
        assert!((truncated_binomial_mean(n, b, 1) - expect).abs() < 1e-12);
        assert!((bernoulli_mean_fanout(n, b) - expect).abs() < 1e-12);
    }

    #[test]
    fn truncation_at_two_exceeds_truncation_at_one() {
        let m1 = truncated_binomial_mean(16, 0.2, 1);
        let m2 = truncated_binomial_mean(16, 0.2, 2);
        assert!(m2 > m1);
        assert!(m2 > 2.0, "conditional mean must be at least the floor");
    }

    #[test]
    fn load_correction_for_paper_parameters() {
        // b = 0.2, N = 16: (1-0.2)^16 ≈ 0.0281 → correction ≈ 1.0289
        let c = bernoulli_load_correction(16, 0.2);
        assert!((c - 1.0 / (1.0 - 0.8f64.powi(16))).abs() < 1e-12);
        assert!(c > 1.0 && c < 1.05);
    }

    #[test]
    fn helper_formulas() {
        assert_eq!(uniform_mean_fanout(1), 1.0);
        assert_eq!(uniform_mean_fanout(8), 4.5);
        assert!((burst_arrival_rate(112.0, 16.0) - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "min_k")]
    fn min_k_beyond_n_rejected() {
        truncated_binomial_mean(4, 0.5, 5);
    }

    fn monte_carlo_truncated_mean(n: usize, b: f64, min_k: usize) -> f64 {
        // deterministic LCG so the test has no rand dependency
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rand01 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut total = 0u64;
        let mut samples = 0u64;
        while samples < 40_000 {
            let k = (0..n).filter(|_| rand01() < b).count();
            if k >= min_k {
                total += k as u64;
                samples += 1;
            }
        }
        total as f64 / samples as f64
    }

    #[test]
    fn monte_carlo_agreement() {
        for (n, b, min_k) in [(16, 0.2, 1), (16, 0.2, 2), (8, 0.5, 1)] {
            let analytic = truncated_binomial_mean(n, b, min_k);
            let mc = monte_carlo_truncated_mean(n, b, min_k);
            assert!(
                (analytic - mc).abs() < 0.06,
                "n={n} b={b} min_k={min_k}: analytic {analytic} vs MC {mc}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_truncated_mean_bounds(n in 1usize..64, b in 0.01f64..1.0, min_k in 0usize..4) {
            prop_assume!(min_k <= n);
            let m = truncated_binomial_mean(n, b, min_k);
            // conditional mean is at least the floor and the plain mean,
            // and at most n
            prop_assert!(m >= min_k as f64 - 1e-9);
            prop_assert!(m >= n as f64 * b - 1e-9);
            prop_assert!(m <= n as f64 + 1e-9);
        }
    }
}
