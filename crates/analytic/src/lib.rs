//! Closed-form queueing-theory references for validating the simulator.
//!
//! The paper leans on two classical analytic results:
//!
//! * **Karol/Hluchyj/Morgan 1987** (the paper's \[13\]): on a uniform
//!   Bernoulli unicast workload, a FIFO *input*-queued switch saturates at
//!   `2 − √2 ≈ 0.586` as `N → ∞`, while a FIFO *output*-queued switch is
//!   stable up to load 1 with mean wait
//!   `W = ((N−1)/N) · ρ / (2(1−ρ))` slots.
//! * **M/D/1** (the `N → ∞` limit of the OQ switch): Pollaczek–Khinchine
//!   wait `ρ / (2(1−ρ))`.
//!
//! The integration suite compares `fifoms-sim` measurements against these
//! formulas — agreement to a few percent is strong evidence the slot
//! loop, the delay accounting and the OQ baseline are all correct. The
//! module also centralises the traffic models' analytic forms (truncated
//! binomial fanout means, effective-load conversions) so tests don't
//! re-derive them ad hoc.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fanout;
pub mod karol;
pub mod mdone;
