//! Results from M. J. Karol, M. J. Hluchyj and S. P. Morgan, "Input
//! versus output queueing on a space-division packet switch", IEEE
//! Trans. Communications 35(12), 1987 — the paper's reference \[13\].

/// Saturation throughput of a FIFO input-queued switch under uniform
/// Bernoulli unicast traffic, as `N → ∞`: `2 − √2 ≈ 0.5858`.
///
/// §V-B of the FIFOMS paper cites this to explain TATRA's unicast
/// ceiling ("a maximum effective load of about 55%, which is consistent
/// with the theoretical analysis result of 0.586 in \[13\]").
pub fn input_queued_saturation() -> f64 {
    2.0 - std::f64::consts::SQRT_2
}

/// Finite-`N` saturation throughput of the FIFO input-queued switch
/// (Karol et al., Table I). Exact small-`N` values from the paper;
/// `N > 8` returns the asymptote.
pub fn input_queued_saturation_finite(n: usize) -> f64 {
    // Table I of Karol 1987: N = 1..8.
    const TABLE: [f64; 8] = [
        1.0000, 0.7500, 0.6825, 0.6553, 0.6399, 0.6302, 0.6234, 0.6184,
    ];
    match n {
        0 => 0.0,
        1..=8 => TABLE[n - 1],
        _ => input_queued_saturation(),
    }
}

/// Mean wait (slots) of a cell in a FIFO *output*-queued `N×N` switch
/// under uniform Bernoulli unicast load `rho`:
///
/// `W = ((N−1)/N) · ρ / (2(1−ρ))`
///
/// (Karol 1987, eq. (2); the `N → ∞` limit is the M/D/1 wait.) A cell
/// transmitted in its arrival slot has wait 0, matching this
/// workspace's delay convention.
///
/// # Panics
///
/// Panics unless `0 <= rho < 1` and `n >= 1`.
pub fn oq_mean_wait(n: usize, rho: f64) -> f64 {
    assert!(n >= 1, "need at least one port");
    assert!((0.0..1.0).contains(&rho), "rho {rho} outside [0,1)");
    ((n - 1) as f64 / n as f64) * rho / (2.0 * (1.0 - rho))
}

/// Mean *output queue length* of the same switch via Little's law applied
/// to the waiting room: `L = ρ · W`.
pub fn oq_mean_queue(n: usize, rho: f64) -> f64 {
    rho * oq_mean_wait(n, rho)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_constant() {
        assert!((input_queued_saturation() - 0.585786).abs() < 1e-6);
    }

    #[test]
    fn finite_table_monotone_to_asymptote() {
        // Karol's Table I decreases in N toward 2-sqrt(2).
        let mut prev = f64::INFINITY;
        for n in 1..=8 {
            let v = input_queued_saturation_finite(n);
            assert!(v < prev, "not monotone at n={n}");
            prev = v;
        }
        assert!(prev > input_queued_saturation());
        assert_eq!(
            input_queued_saturation_finite(100),
            input_queued_saturation()
        );
        assert_eq!(input_queued_saturation_finite(0), 0.0);
    }

    #[test]
    fn oq_wait_known_values() {
        // N = 16, rho = 0.8: (15/16)*0.8/0.4 = 1.875
        assert!((oq_mean_wait(16, 0.8) - 1.875).abs() < 1e-12);
        // zero load, zero wait
        assert_eq!(oq_mean_wait(16, 0.0), 0.0);
        // single output port never queues behind other inputs
        assert_eq!(oq_mean_wait(1, 0.5), 0.0);
    }

    #[test]
    fn oq_wait_diverges_near_one() {
        assert!(oq_mean_wait(16, 0.99) > 40.0);
        assert!(oq_mean_wait(16, 0.999) > 400.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rho_one_rejected() {
        oq_mean_wait(16, 1.0);
    }

    #[test]
    fn littles_law_queue() {
        let (n, rho) = (16, 0.8);
        assert!((oq_mean_queue(n, rho) - rho * oq_mean_wait(n, rho)).abs() < 1e-12);
    }
}
