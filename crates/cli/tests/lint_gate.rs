//! Black-box tests for the `fifoms-repro lint` gate: injected R1/R2
//! violations in a synthetic workspace must fail the run with a single
//! `error:` diagnostic, `--write-baseline` followed by `--baseline` must
//! grandfather them, the `--json` report must satisfy
//! `schemas/lint.schema.json`, and the real repository must stay clean
//! against its committed baseline.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use fifoms_obs::{schema, Json};

const LINT_SCHEMA: &str = include_str!("../../../schemas/lint.schema.json");

fn repro_in(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fifoms-repro"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn fifoms-repro")
}

/// A throwaway workspace with one R1 violation (hash-ordered iteration
/// in `sim`) and one R2 violation (a retransmission path that mints a
/// fresh stamp in `fabric`).
fn synthetic_workspace(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("fifoms-lint-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("crates/sim/src")).expect("mkdir sim");
    std::fs::create_dir_all(root.join("crates/fabric/src")).expect("mkdir fabric");
    std::fs::create_dir_all(root.join("schemas")).expect("mkdir schemas");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
    std::fs::write(root.join("schemas/lint.schema.json"), LINT_SCHEMA).expect("write schema");
    std::fs::write(
        root.join("crates/sim/src/lib.rs"),
        "fn tally(counts: HashMap<u32, u32>) -> u32 {\n\
         \x20   let mut total = 0;\n\
         \x20   for (_k, v) in counts.iter() {\n\
         \x20       total += v;\n\
         \x20   }\n\
         \x20   total\n\
         }\n",
    )
    .expect("write R1 violation");
    std::fs::write(
        root.join("crates/fabric/src/lib.rs"),
        "fn requeue(d: &Departure) -> Packet {\n\
         \x20   Packet::new(d.packet, Slot::now(), d.input, d.dests.clone())\n\
         }\n",
    )
    .expect("write R2 violation");
    root
}

#[test]
fn gate_fails_on_injected_r1_and_r2_violations() {
    let ws = synthetic_workspace("inject");
    let out = repro_in(&ws, &["lint"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);

    assert!(!out.status.success(), "gate must fail:\n{stdout}{stderr}");
    assert!(
        !stderr.contains("panicked"),
        "gate panicked instead of erroring:\n{stderr}"
    );
    let lines: Vec<&str> = stderr.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 1, "one diagnostic expected:\n{stderr}");
    assert!(lines[0].starts_with("error: lint:"), "{}", lines[0]);

    assert!(
        stdout.contains("[R1] iteration over hash-ordered `counts`"),
        "injected hash iteration not reported:\n{stdout}"
    );
    assert!(
        stdout.contains("[R2] fresh timestamp minted outside admission"),
        "injected stamp mint not reported:\n{stdout}"
    );
    assert!(
        stdout.contains("[R2] Packet::new with a non-preserved arrival stamp"),
        "non-preserving Packet::new not reported:\n{stdout}"
    );
}

#[test]
fn write_baseline_grandfathers_then_gate_passes() {
    let ws = synthetic_workspace("baseline");
    let wrote = repro_in(&ws, &["lint", "--write-baseline"]);
    assert!(
        wrote.status.success(),
        "--write-baseline must succeed:\n{}",
        String::from_utf8_lossy(&wrote.stderr)
    );
    assert!(ws.join("lint-baseline.json").is_file());

    let gated = repro_in(&ws, &["lint", "--baseline", "lint-baseline.json"]);
    let stdout = String::from_utf8_lossy(&gated.stdout);
    assert!(gated.status.success(), "baselined gate must pass:\n{stdout}");
    assert!(stdout.contains("lint: clean"), "{stdout}");

    // Fixing a grandfathered violation is celebrated, never punished.
    std::fs::write(root_file(&ws), "fn quiet() {}\n").expect("fix the R1 file");
    let shrunk = repro_in(&ws, &["lint", "--baseline", "lint-baseline.json"]);
    let stdout = String::from_utf8_lossy(&shrunk.stdout);
    assert!(shrunk.status.success(), "shrinkage must pass:\n{stdout}");
    assert!(stdout.contains("shrunk: R1"), "{stdout}");
}

fn root_file(ws: &Path) -> PathBuf {
    ws.join("crates/sim/src/lib.rs")
}

#[test]
fn json_report_satisfies_the_checked_in_schema() {
    let ws = synthetic_workspace("json");
    // The report is written (and self-validated) even when the gate
    // fails — CI consumes it precisely on failures.
    let out = repro_in(&ws, &["lint", "--json", "lint-report.json"]);
    assert!(!out.status.success());

    let text = std::fs::read_to_string(ws.join("lint-report.json")).expect("report written");
    let doc = Json::parse(&text).expect("report parses");
    let schema_doc = Json::parse(LINT_SCHEMA).expect("schema parses");
    schema::validate(&doc, &schema_doc).expect("report must satisfy schemas/lint.schema.json");

    let Json::Obj(fields) = &doc else {
        panic!("report must be an object")
    };
    let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    assert_eq!(get("schema"), Some(&Json::Str("fifoms-lint-v1".into())));
    match get("new_findings") {
        Some(Json::Num(n)) => assert!(*n >= 2.0, "expected injected findings, got {n}"),
        other => panic!("new_findings missing: {other:?}"),
    }
}

/// The repository itself must stay clean against its committed baseline:
/// this is the same invocation `scripts/ci.sh` gates on.
#[test]
fn real_workspace_is_clean_with_committed_baseline() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = repro_in(&repo, &["lint", "--baseline", "lint-baseline.json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "workspace has new lint findings:\n{stdout}{stderr}"
    );
    assert!(stdout.contains("lint: clean"), "{stdout}");
}

/// Deleting a forwarding method from `InstrumentedSwitch` must trip R7
/// end-to-end through the binary. The synthetic workspace holds copies
/// of the REAL `Switch` trait and wrapper sources, so this test breaks
/// the moment the actual forwarding discipline and the lint disagree —
/// not just when a hand-written toy does.
#[test]
fn r7_catches_a_deleted_forwarding_method_in_the_real_wrapper() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let trait_src =
        std::fs::read_to_string(repo.join("crates/fabric/src/switch.rs")).expect("read trait");
    let wrapper_src = std::fs::read_to_string(repo.join("crates/fabric/src/instrument.rs"))
        .expect("read wrapper");

    let ws = std::env::temp_dir().join(format!("fifoms-lint-r7-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ws);
    std::fs::create_dir_all(ws.join("crates/fabric/src")).expect("mkdir fabric");
    std::fs::write(ws.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
    std::fs::write(ws.join("crates/fabric/src/switch.rs"), &trait_src).expect("write trait");
    let wrapper = ws.join("crates/fabric/src/instrument.rs");
    std::fs::write(&wrapper, &wrapper_src).expect("write wrapper");

    // Two passes: the first registers the checkpoint-state fingerprint
    // manifest, the second locks in a clean baseline against it.
    assert!(repro_in(&ws, &["lint", "--write-baseline"]).status.success());
    assert!(repro_in(&ws, &["lint", "--write-baseline"]).status.success());
    let clean = repro_in(&ws, &["lint", "--baseline", "lint-baseline.json"]);
    assert!(
        clean.status.success(),
        "real trait + wrapper copies must start clean:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    // Surgically delete the `drain_spans` override (signature through
    // matching close brace), exactly what a careless refactor would do.
    let at = wrapper_src
        .find("fn drain_spans")
        .expect("wrapper forwards drain_spans");
    let open = at + wrapper_src[at..].find('{').expect("method body opens");
    let mut depth = 0usize;
    let mut close = None;
    for (i, c) in wrapper_src[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + i + c.len_utf8());
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close.expect("method body closes");
    let broken = format!("{}{}", &wrapper_src[..at], &wrapper_src[close..]);
    std::fs::write(&wrapper, broken).expect("rewrite wrapper");

    let gated = repro_in(&ws, &["lint", "--baseline", "lint-baseline.json"]);
    let stdout = String::from_utf8_lossy(&gated.stdout);
    assert!(
        !gated.status.success(),
        "R7 must fail the gate on the deleted forward:\n{stdout}"
    );
    assert!(
        stdout.contains("[R7]") && stdout.contains("drain_spans"),
        "missing-forward diagnostic expected:\n{stdout}"
    );
}
