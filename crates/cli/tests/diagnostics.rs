//! Black-box diagnostics tests for `fifoms-repro`: `analyze` and
//! `check-bench` must exit non-zero with a one-line `error:` message on
//! truncated, corrupted or missing inputs — never a panic/backtrace —
//! and the bench regression gate must fail on a slots/sec regression
//! and pass within tolerance.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fifoms-repro"))
        .args(args)
        .output()
        .expect("spawn fifoms-repro")
}

fn tmp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("fifoms-diag-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp fixture");
    path
}

/// Assert a failed invocation carried exactly one diagnostic line on
/// stderr, starting with `error:`, and no panic machinery.
fn assert_clean_failure(out: &Output, context: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "{context}: expected failure");
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "{context}: panicked instead of erroring:\n{stderr}"
    );
    let lines: Vec<&str> = stderr.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 1, "{context}: expected one diagnostic:\n{stderr}");
    assert!(
        lines[0].starts_with("error: "),
        "{context}: diagnostic not prefixed: {}",
        lines[0]
    );
}

#[test]
fn analyze_rejects_missing_and_corrupt_traces() {
    let missing = repro(&["analyze", "/nonexistent/trace.jsonl"]);
    assert_clean_failure(&missing, "missing trace");

    // A trace truncated mid-record, as a killed sweep would leave it.
    let corrupt = tmp_file(
        "truncated.jsonl",
        "{\"event\":\"run_meta\",\"scope\":\"S\",\"switch\":\"FIFOMS\",\"traffic\":\"b\",\"ports\":8,\"params\":{}}\n{\"event\":\"slot_sch",
    );
    let out = repro(&["analyze", corrupt.to_str().unwrap()]);
    std::fs::remove_file(&corrupt).ok();
    assert_clean_failure(&out, "corrupt trace");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 2"),
        "diagnostic names the bad line: {stderr}"
    );

    // Valid JSONL that is not a trace at all.
    let alien = tmp_file("alien.jsonl", "{\"foo\": 1}\n");
    let out = repro(&["analyze", alien.to_str().unwrap()]);
    std::fs::remove_file(&alien).ok();
    assert_clean_failure(&out, "non-trace JSONL");
}

fn bench_doc(fifoms_sps: f64, islip_sps: f64) -> String {
    format!(
        r#"{{"schema":"fifoms-bench-core-v1","n":16,"slots":1000,"smoke":true,"rows":[
{{"switch":"FIFOMS","load":0.3,"slots_run":1000,"elapsed_ns":1,"slots_per_sec":{fifoms_sps}}},
{{"switch":"iSLIP","load":0.3,"slots_run":1000,"elapsed_ns":1,"slots_per_sec":{islip_sps}}}]}}"#
    )
}

#[test]
fn check_bench_gate_passes_within_tolerance_and_fails_on_regression() {
    let baseline = tmp_file("baseline.json", &bench_doc(100_000.0, 200_000.0));
    // Within 15%: one cell 10% down, one up.
    let ok = tmp_file("ok.json", &bench_doc(90_000.0, 210_000.0));
    // Injected regression: FIFOMS lost half its throughput.
    let slow = tmp_file("slow.json", &bench_doc(50_000.0, 200_000.0));

    let pass = repro(&[
        "check-bench",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        ok.to_str().unwrap(),
    ]);
    assert!(
        pass.status.success(),
        "gate failed within tolerance:\n{}",
        String::from_utf8_lossy(&pass.stderr)
    );

    let fail = repro(&[
        "check-bench",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        slow.to_str().unwrap(),
    ]);
    assert_clean_failure(&fail, "regressed bench");
    let stderr = String::from_utf8_lossy(&fail.stderr);
    assert!(
        stderr.contains("FIFOMS") && stderr.contains("regressed"),
        "diagnostic names the regressed cell: {stderr}"
    );

    // A generous tolerance lets the same artifact through.
    let waved = repro(&[
        "check-bench",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        slow.to_str().unwrap(),
        "--tolerance",
        "0.6",
    ]);
    assert!(waved.status.success(), "0.6 tolerance still failed");

    for p in [baseline, ok, slow] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn check_bench_rejects_corrupt_artifacts() {
    let baseline = tmp_file("gate-base.json", &bench_doc(1.0, 1.0));
    let corrupt = tmp_file("gate-corrupt.json", "{\"rows\": [{\"switch\": 3}]}");
    let truncated = tmp_file("gate-truncated.json", "{\"rows\": [");

    for bad in [&corrupt, &truncated] {
        let out = repro(&[
            "check-bench",
            "--baseline",
            baseline.to_str().unwrap(),
            "--current",
            bad.to_str().unwrap(),
        ]);
        assert_clean_failure(&out, "corrupt bench artifact");
    }

    for p in [baseline, corrupt, truncated] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn usage_errors_are_one_liners() {
    for argv in [
        &["analyze"][..],
        &["check-bench", "--tolerance", "0"][..],
        &["sweep", "--packet-trace", "bogus"][..],
    ] {
        let out = repro(argv);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "{argv:?} succeeded");
        assert!(
            !stderr.contains("panicked"),
            "{argv:?} panicked:\n{stderr}"
        );
        assert!(
            stderr.lines().next().unwrap_or("").starts_with("error: "),
            "{argv:?}: {stderr}"
        );
    }
}
