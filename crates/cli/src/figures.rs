//! One function per paper figure, plus extension experiments.

use std::sync::Arc;

use fifoms_obs::{EventSink, Json, JsonlSink, MetricsRegistry, ProgressMeter};
use fifoms_sim::report::{figure_table, sweep_csv, Metric};
use fifoms_sim::{
    CellOutcome, CellPolicy, FaultConfig, RunConfig, Sweep, SweepObserver, SweepRow, SwitchKind,
    TrafficKind,
};
use fifoms_types::SimError;

use crate::args::Options;

/// Evenly spaced loads in `[lo, hi]` with `points` points.
fn loads(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    if points == 1 {
        return vec![hi];
    }
    (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
        .collect()
}

fn run_config(opts: &Options) -> RunConfig {
    RunConfig::paper(opts.slots)
}

fn execute(opts: &Options, sweep: &Sweep) -> Vec<SweepRow> {
    sweep.run_parallel(opts.threads)
}

fn print_figure(
    title: &str,
    rows: &[SweepRow],
    switches: &[SwitchKind],
    metrics: &[Metric],
    opts: &Options,
    csv_name: &str,
) {
    println!("\n=== {title} ===");
    for metric in metrics {
        println!("\n--- {} ---", metric.title());
        print!("{}", figure_table(rows, switches, *metric).render());
        if opts.plot {
            let chart = fifoms_sim::plot::ascii_plot(
                rows,
                switches,
                *metric,
                &fifoms_sim::plot::PlotOptions::default(),
            );
            if !chart.is_empty() {
                println!("\n{chart}");
            }
        }
    }
    println!("(* = operating point beyond the scheduler's stability region)");
    if let Some(dir) = &opts.csv_dir {
        let path = format!("{dir}/{csv_name}.csv");
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&path, sweep_csv(rows)))
        {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }
}

const FOUR_PANELS: &[Metric] = &[
    Metric::InputDelay,
    Metric::OutputDelay,
    Metric::AvgQueue,
    Metric::MaxQueue,
];

/// Fig. 4: 16×16, Bernoulli b=0.2, loads 0.1..1.0.
pub fn fig4(opts: &Options) -> Result<(), SimError> {
    let b = 0.2;
    let sweep = Sweep {
        n: opts.n,
        switches: SwitchKind::paper_set(),
        points: loads(0.1, 1.0, opts.points)
            .into_iter()
            .map(|l| (l, TrafficKind::bernoulli_at_load(l, b, opts.n)))
            .collect(),
        run: run_config(opts),
        seed: opts.seed,
    };
    let rows = execute(opts, &sweep);
    print_figure(
        &format!("Fig. 4: {0}x{0} switch, Bernoulli traffic, b = {b}", opts.n),
        &rows,
        &sweep.switches,
        FOUR_PANELS,
        opts,
        "fig4",
    );
    Ok(())
}

/// Fig. 5: convergence rounds of FIFOMS vs iSLIP under the Fig. 4 traffic.
pub fn fig5(opts: &Options) -> Result<(), SimError> {
    let b = 0.2;
    let switches = vec![SwitchKind::Fifoms, SwitchKind::Islip(None)];
    let sweep = Sweep {
        n: opts.n,
        switches: switches.clone(),
        points: loads(0.1, 1.0, opts.points)
            .into_iter()
            .map(|l| (l, TrafficKind::bernoulli_at_load(l, b, opts.n)))
            .collect(),
        run: run_config(opts),
        seed: opts.seed,
    };
    let rows = execute(opts, &sweep);
    print_figure(
        &format!(
            "Fig. 5: average convergence rounds, {0}x{0} switch, Bernoulli b = {b}",
            opts.n
        ),
        &rows,
        &switches,
        &[Metric::Rounds],
        opts,
        "fig5",
    );
    Ok(())
}

/// Fig. 6: uniform traffic, maxFanout = 1 (pure unicast).
pub fn fig6(opts: &Options) -> Result<(), SimError> {
    uniform_figure(opts, 1, "Fig. 6", "fig6")
}

/// Fig. 7: uniform traffic, maxFanout = 8.
pub fn fig7(opts: &Options) -> Result<(), SimError> {
    uniform_figure(opts, 8, "Fig. 7", "fig7")
}

fn uniform_figure(opts: &Options, max_fanout: usize, title: &str, csv: &str) -> Result<(), SimError> {
    let sweep = Sweep {
        n: opts.n,
        switches: SwitchKind::paper_set(),
        points: loads(0.1, 1.0, opts.points)
            .into_iter()
            .map(|l| (l, TrafficKind::uniform_at_load(l, max_fanout)))
            .collect(),
        run: run_config(opts),
        seed: opts.seed,
    };
    let rows = execute(opts, &sweep);
    print_figure(
        &format!(
            "{title}: {0}x{0} switch, uniform traffic, maxFanout = {max_fanout}",
            opts.n
        ),
        &rows,
        &sweep.switches,
        FOUR_PANELS,
        opts,
        csv,
    );
    Ok(())
}

/// Fig. 8: burst traffic, E_on = 16, b = 0.5.
pub fn fig8(opts: &Options) -> Result<(), SimError> {
    let (e_on, b) = (16.0, 0.5);
    let sweep = Sweep {
        n: opts.n,
        switches: SwitchKind::paper_set(),
        points: loads(0.1, 0.9, opts.points)
            .into_iter()
            .map(|l| (l, TrafficKind::burst_at_load(l, e_on, b, opts.n)))
            .collect(),
        run: run_config(opts),
        seed: opts.seed,
    };
    let rows = execute(opts, &sweep);
    print_figure(
        &format!(
            "Fig. 8: {0}x{0} switch, burst traffic, E_on = {e_on}, b = {b}",
            opts.n
        ),
        &rows,
        &sweep.switches,
        FOUR_PANELS,
        opts,
        "fig8",
    );
    Ok(())
}

/// Extension: FIFOMS design-choice ablations under the Fig. 4 workload.
pub fn ablation(opts: &Options) -> Result<(), SimError> {
    use fifoms_core::TieBreak;
    let b = 0.2;
    let switches = vec![
        SwitchKind::Fifoms,
        SwitchKind::FifomsSingleRequest,
        SwitchKind::FifomsMaxRounds(1),
        SwitchKind::FifomsMaxRounds(2),
        SwitchKind::FifomsTieBreak(TieBreak::LowestInput),
        SwitchKind::FifomsTieBreak(TieBreak::Rotating),
        SwitchKind::McFifo { splitting: true },
        SwitchKind::McFifo { splitting: false },
        SwitchKind::Wba,
    ];
    let sweep = Sweep {
        n: opts.n,
        switches: switches.clone(),
        points: loads(0.2, 0.9, opts.points.min(6))
            .into_iter()
            .map(|l| (l, TrafficKind::bernoulli_at_load(l, b, opts.n)))
            .collect(),
        run: run_config(opts),
        seed: opts.seed,
    };
    let rows = execute(opts, &sweep);
    print_figure(
        &format!(
            "Ablations: {0}x{0} switch, Bernoulli b = {b} (FIFOMS variants and naive baselines)",
            opts.n
        ),
        &rows,
        &switches,
        &[Metric::OutputDelay, Metric::Throughput],
        opts,
        "ablation",
    );
    Ok(())
}

/// Extension: mixed unicast/multicast traffic (the introduction's hard
/// case for single-input-queued schedulers: "especially when the incoming
/// traffic has mixed multicast and unicast packets").
pub fn mixed(opts: &Options) -> Result<(), SimError> {
    let n = opts.n;
    let switches = vec![
        SwitchKind::Fifoms,
        SwitchKind::Tatra,
        SwitchKind::Wba,
        SwitchKind::Islip(None),
        SwitchKind::OqFifo,
    ];
    // Fix the effective load at 0.7 and sweep the multicast fraction: the
    // mean fanout rises with the fraction, so p falls correspondingly.
    let load = 0.7;
    let b = 0.2;
    let fractions = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0];
    let mut points: Vec<(f64, TrafficKind)> = Vec::with_capacity(fractions.len());
    for frac in fractions {
        // compute p so p * mean_fanout == load, using the model itself;
        // invalid combinations surface as a diagnostic, not a panic
        let probe = fifoms_traffic::MixedTraffic::new(n, 1.0, frac, b, 0)?;
        let p = load / probe.mean_fanout();
        let tk = TrafficKind::Mixed {
            p,
            frac_multicast: frac,
            b,
        };
        points.push((frac, tk));
    }
    let sweep = Sweep {
        n,
        switches: switches.clone(),
        points,
        run: run_config(opts),
        seed: opts.seed,
    };
    let rows = execute(opts, &sweep);
    println!(
        "\n=== Mixed traffic: {n}x{n} switch, effective load {load}, x-axis = multicast fraction ==="
    );
    for metric in [Metric::InputDelay, Metric::OutputDelay, Metric::AvgQueue] {
        println!("\n--- {} (x = multicast fraction) ---", metric.title());
        print!("{}", figure_table(&rows, &switches, metric).render());
    }
    println!("(* = operating point beyond the scheduler's stability region)");
    Ok(())
}

/// Extension: how the comparison scales with switch size `N` at a fixed
/// effective load.
pub fn scaling(opts: &Options) -> Result<(), SimError> {
    let (load, b_fanout) = (0.7, 4.0); // average fanout 4 at every N
    let switches = SwitchKind::paper_set();
    println!("\n=== Scaling: delay vs switch size at load {load}, mean fanout 4 ===");
    let mut table = fifoms_sim::report::Table::new(
        std::iter::once("N".to_string())
            .chain(switches.iter().map(|s| s.label()))
            .collect::<Vec<_>>(),
    );
    for n in [8usize, 16, 32, 64] {
        let sweep = Sweep {
            n,
            switches: switches.clone(),
            points: vec![(load, TrafficKind::bernoulli_at_load(load, b_fanout / n as f64, n))],
            run: run_config(opts),
            seed: opts.seed,
        };
        let rows = execute(opts, &sweep);
        let mut cells = vec![format!("{n}")];
        for sk in &switches {
            // A missing cell renders as a dash instead of panicking.
            cells.push(match rows.iter().find(|r| r.switch == *sk) {
                Some(r) => {
                    let star = if r.result.is_stable() { "" } else { "*" };
                    format!("{:.3}{star}", r.result.delay.mean_output_oriented)
                }
                None => "-".to_string(),
            });
        }
        table.push_row(cells);
    }
    print!("{}", table.render());
    println!("(output-oriented delay in slots; * = unstable)");
    Ok(())
}

/// Extension: Jain fairness of per-input service under asymmetric demand.
pub fn fairness(opts: &Options) -> Result<(), SimError> {
    use fifoms_stats::FairnessTracker;
    use fifoms_types::{Packet, PacketId, PortId, Slot};
    let n = opts.n;
    println!("\n=== Fairness: Jain index of per-input delivered copies (uniform multicast, load 0.9) ===");
    let mut table = fifoms_sim::report::Table::new(vec![
        "scheduler".to_string(),
        "jain-index".to_string(),
        "max/min".to_string(),
    ]);
    for sk in [
        SwitchKind::Fifoms,
        SwitchKind::Tatra,
        SwitchKind::Wba,
        SwitchKind::Islip(None),
        SwitchKind::TwoDrr,
        SwitchKind::OqFifo,
    ] {
        let mut sw = sk.build(n, opts.seed);
        let mut tr = TrafficKind::bernoulli_at_load(0.9, 0.2, n).build(n, opts.seed ^ 0xF00D);
        let mut tracker = FairnessTracker::new(n);
        let mut arrivals = Vec::new();
        let mut id = 0u64;
        for t in 0..opts.slots {
            let now = Slot(t);
            tr.next_slot(now, &mut arrivals);
            for (input, dests) in arrivals.iter_mut().enumerate() {
                if let Some(d) = dests.take() {
                    id += 1;
                    sw.admit(Packet::new(PacketId(id), now, PortId::new(input), d));
                }
            }
            for d in &sw.run_slot(now).departures {
                if t >= opts.slots / 2 {
                    tracker.record(d.input.index(), 1);
                }
            }
        }
        table.push_row(vec![
            sk.label(),
            format!("{:.5}", tracker.jain_index()),
            format!("{:.3}", tracker.max_min_ratio()),
        ]);
    }
    print!("{}", table.render());
    println!("(1.0 = perfectly equal service across inputs)");
    Ok(())
}

/// Extension: the §I claim that output queueing needs internal speedup N —
/// sweep the speedup of the OQ switch and watch throughput/delay degrade.
pub fn oq_speedup(opts: &Options) -> Result<(), SimError> {
    let n = opts.n;
    let switches: Vec<SwitchKind> = [1usize, 2, 4, 8, n]
        .iter()
        .map(|&s| SwitchKind::OqSpeedup(s))
        .chain([SwitchKind::Fifoms, SwitchKind::OqFifo])
        .collect();
    let sweep = Sweep {
        n,
        switches: switches.clone(),
        points: loads(0.3, 0.95, opts.points.min(6))
            .into_iter()
            .map(|l| (l, TrafficKind::bernoulli_at_load(l, 0.2, n)))
            .collect(),
        run: run_config(opts),
        seed: opts.seed,
    };
    let rows = execute(opts, &sweep);
    print_figure(
        &format!(
            "OQ speedup requirement: {n}x{n} switch, Bernoulli b = 0.2 (§I: OQ needs S = N)"
        ),
        &rows,
        &switches,
        &[Metric::OutputDelay, Metric::Throughput],
        opts,
        "oq_speedup",
    );
    Ok(())
}

/// Extension: sustained-throughput comparison at overload.
pub fn throughput(opts: &Options) -> Result<(), SimError> {
    let b = 0.2;
    let switches = vec![
        SwitchKind::Fifoms,
        SwitchKind::Tatra,
        SwitchKind::Islip(None),
        SwitchKind::Pim(None),
        SwitchKind::Wba,
        SwitchKind::OqFifo,
        SwitchKind::McFifo { splitting: true },
        SwitchKind::McFifo { splitting: false },
    ];
    let sweep = Sweep {
        n: opts.n,
        switches: switches.clone(),
        points: loads(0.5, 1.2, opts.points.min(8))
            .into_iter()
            .map(|l| (l, TrafficKind::bernoulli_at_load(l, b, opts.n)))
            .collect(),
        run: run_config(opts),
        seed: opts.seed,
    };
    let rows = execute(opts, &sweep);
    print_figure(
        &format!(
            "Throughput: {0}x{0} switch, Bernoulli b = {b}, offered load up to 1.2",
            opts.n
        ),
        &rows,
        &switches,
        &[Metric::Throughput],
        opts,
        "throughput",
    );
    Ok(())
}

/// The `sweep` command: the Fig. 4 grid under the fault-isolated runner,
/// with optional checkpoint journaling (`--journal` / `--resume`),
/// runtime invariant validation (`--check-every`), per-cell watchdog
/// (`--cell-timeout`), fault injection (`--inject-faults`) and bounded
/// retries (`--retries`). Failed cells are reported as rows, not crashes.
/// Aggregate a finished grid into the `--metrics-out` document:
/// sweep-level counters and per-cell gauges from a [`MetricsRegistry`],
/// plus one self-describing row per cell carrying the workload parameters
/// the cell actually ran with (so a metrics file needs no side-channel to
/// interpret its loads).
fn sweep_metrics(sweep: &Sweep, outcomes: &[CellOutcome]) -> Json {
    let registry = MetricsRegistry::new();
    registry.counter_add("cells_total", outcomes.len() as u64);
    let mut rows = Vec::new();
    for outcome in outcomes {
        match outcome {
            CellOutcome::Completed(row) => {
                let r = &row.result;
                registry.counter_add("cells_completed", 1);
                registry.counter_add("slots_run", r.slots_run);
                registry.counter_add("packets_admitted", r.packets_admitted);
                registry.counter_add("copies_delivered", r.copies_delivered);
                let scope = format!("{}@{}", row.switch.label(), row.load);
                registry.gauge_set(&format!("throughput/{scope}"), r.throughput);
                let mut obj = Json::object();
                obj.set("switch", r.switch_name.as_str());
                obj.set("traffic", r.traffic_name.as_str());
                obj.set("load", row.load);
                obj.set("offered_load", r.offered_load);
                let mut wl = Json::object();
                for (k, v) in &r.workload {
                    wl.set(k, *v);
                }
                obj.set("workload", wl);
                obj.set("throughput", r.throughput);
                obj.set("mean_delay_out", r.delay.mean_output_oriented);
                obj.set("mean_rounds", r.mean_rounds);
                obj.set("slots_run", r.slots_run);
                obj.set("stable", r.is_stable());
                rows.push(obj);
            }
            CellOutcome::Failed(f) => {
                registry.counter_add("cells_failed", 1);
                let mut obj = Json::object();
                obj.set("switch", f.switch.label());
                obj.set("load", f.load);
                obj.set("failed", true);
                obj.set("reason", f.reason.to_string());
                rows.push(obj);
            }
        }
    }
    let mut doc = registry.snapshot();
    doc.set("schema", "fifoms-metrics-v1");
    doc.set("n", sweep.n);
    doc.set("seed", sweep.seed);
    doc.set("rows", Json::Arr(rows));
    doc
}

pub fn sweep_cmd(opts: &Options) -> Result<(), SimError> {
    let b = 0.2;
    let sweep = Sweep {
        n: opts.n,
        switches: SwitchKind::paper_set(),
        points: loads(0.1, 1.0, opts.points)
            .into_iter()
            .map(|l| (l, TrafficKind::bernoulli_at_load(l, b, opts.n)))
            .collect(),
        run: run_config(opts),
        seed: opts.seed,
    };
    let policy = CellPolicy {
        timeout: opts.cell_timeout.map(std::time::Duration::from_secs),
        retries: opts.retries,
        check_every: opts.check_every,
        faults: opts
            .inject_faults
            .then(|| FaultConfig::moderate(opts.seed)),
    };
    let trace: Option<Arc<dyn EventSink>> = match &opts.trace_out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| SimError::Usage(format!("cannot create {path}: {e}")))?;
            Some(Arc::new(JsonlSink::new(std::io::BufWriter::new(file))))
        }
        None => None,
    };
    let cells = (sweep.switches.len() * sweep.points.len()) as u64;
    let observer = SweepObserver {
        trace,
        progress: opts
            .progress
            .then(|| Arc::new(ProgressMeter::new(cells, std::time::Duration::from_secs(2)))),
        packet_trace: opts.packet_trace,
        telemetry: crate::topcmd::telemetry_spec(opts)?,
    };
    let outcomes = match &opts.journal {
        Some(path) => {
            let verb = if opts.resume { "resuming from" } else { "journaling to" };
            println!("{verb} {path}");
            sweep.run_checkpointed_observed(opts.threads, &policy, path, opts.resume, &observer)?
        }
        None => sweep.run_robust_observed(opts.threads, &policy, &observer),
    };
    if let Some(path) = &opts.trace_out {
        println!("wrote {path}");
    }
    crate::topcmd::report_telemetry_outputs(opts);
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, sweep_metrics(&sweep, &outcomes).to_string() + "\n")
            .map_err(|e| SimError::Usage(format!("cannot write {path}: {e}")))?;
        println!("wrote {path}");
    }
    let rows: Vec<SweepRow> = outcomes.iter().filter_map(|o| o.row().cloned()).collect();
    let failures: Vec<_> = outcomes.iter().filter_map(|o| o.failure()).collect();
    let mut title = format!(
        "Robust sweep: {0}x{0} switch, Bernoulli traffic, b = {b}",
        opts.n
    );
    if policy.faults.is_some() {
        title.push_str(" (faults injected)");
    }
    print_figure(
        &title,
        &rows,
        &sweep.switches,
        FOUR_PANELS,
        opts,
        "sweep",
    );
    println!(
        "grid: {} cells, {} completed, {} failed",
        outcomes.len(),
        rows.len(),
        failures.len()
    );
    if !failures.is_empty() {
        let mut table = fifoms_sim::report::Table::new(vec![
            "scheduler".to_string(),
            "load".to_string(),
            "attempts".to_string(),
            "failure".to_string(),
        ]);
        for f in &failures {
            table.push_row(vec![
                f.switch.label(),
                format!("{:.3}", f.load),
                format!("{}", f.attempts),
                format!("{}", f.reason),
            ]);
        }
        print!("{}", table.render());
    }
    Ok(())
}
