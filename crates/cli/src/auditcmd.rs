//! `fifoms-repro alloc-audit`: prove the steady-state slot loop never
//! touches the heap.
//!
//! The harness itself lives in [`fifoms_sim::alloc_audit`]; this module
//! supplies the one piece that needs `unsafe` — a counting
//! [`GlobalAlloc`](std::alloc::GlobalAlloc) wrapper around the system
//! allocator — and keeps it behind the `alloc-audit` cargo feature so
//! ordinary builds pay nothing. Without the feature the command explains
//! how to rebuild instead of silently reporting a vacuous pass.

use fifoms_types::SimError;

use crate::args::Options;

#[cfg(feature = "alloc-audit")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Allocation events (alloc + realloc) since process start.
    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Monotonic allocation-event counter read by the audit harness.
    pub fn alloc_events() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    /// [`System`] with an event counter in front. Counts allocation
    /// *events*, not bytes: the audit's claim is "the slot loop never
    /// calls the allocator", and a count of calls is exactly that.
    struct CountingAlloc;

    // SAFETY: every operation defers verbatim to `System`, which upholds
    // the GlobalAlloc contract; the relaxed counter increment does not
    // touch the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: forwards to `System::alloc` under the caller's layout
        // obligations, unchanged.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        // SAFETY: `ptr`/`layout` were produced by a matching `alloc` on
        // `System` (the only allocator behind this wrapper).
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        // SAFETY: forwards to `System::realloc` under the caller's
        // obligations, unchanged.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// Audit FIFOMS and iSLIP at the reference operating point (Bernoulli
/// b=0.2, load 0.6): after half the run as warmup, every counted slot of
/// `traffic → admit → run_slot → stats` must perform zero allocations.
/// Exits nonzero if either scheduler's measured window allocated.
#[cfg(feature = "alloc-audit")]
pub fn alloc_audit_cmd(opts: &Options) -> Result<(), SimError> {
    use fifoms_sim::{alloc_audit, SwitchKind, TrafficKind};

    let warmup = (opts.slots / 2).max(1_000);
    let measure = warmup;
    let counter = counting::alloc_events;
    let mut reports = Vec::new();
    for sk in [SwitchKind::Fifoms, SwitchKind::Islip(None)] {
        let mut sw = sk.build(opts.n, opts.seed);
        let mut tr = TrafficKind::bernoulli_at_load(0.6, 0.2, opts.n)
            .try_build(opts.n, opts.seed ^ 0xBEEF)?;
        let report = alloc_audit(sw.as_mut(), tr.as_mut(), warmup, measure, &counter)?;
        println!(
            "alloc-audit: {} under {} — {} measured slots after {} warmup, \
             {} admitted, {} delivered",
            report.switch_name,
            report.traffic_name,
            report.measured_slots,
            report.warmup_slots,
            report.packets_admitted,
            report.copies_delivered
        );
        for (phase, allocs) in report.phase_allocs {
            println!("  {phase:<9} {allocs:>8} allocations");
        }
        println!(
            "  => {} ({} total)",
            if report.is_clean() { "CLEAN" } else { "ALLOCATING" },
            report.total_allocs()
        );
        reports.push(report);
    }
    if let Some(path) = opts.json_out.as_deref() {
        let docs: Vec<_> = reports.iter().map(|r| r.to_json()).collect();
        let mut doc = fifoms_obs::Json::object();
        doc.set("schema", "fifoms-alloc-audit-v1");
        doc.set("audits", docs);
        std::fs::write(path, format!("{doc}\n"))
            .map_err(|e| SimError::Usage(format!("{path}: {e}")))?;
        println!("wrote {path}");
    }
    let dirty: Vec<&str> = reports
        .iter()
        .filter(|r| !r.is_clean())
        .map(|r| r.switch_name.as_str())
        .collect();
    if dirty.is_empty() {
        println!("alloc-audit: steady-state slot loop is allocation-free");
        Ok(())
    } else {
        Err(SimError::Usage(format!(
            "alloc-audit: steady-state allocations detected in {}",
            dirty.join(", ")
        )))
    }
}

/// Featureless stub: a count of zero from the ordinary allocator would be
/// indistinguishable from a real pass, so refuse to run instead.
#[cfg(not(feature = "alloc-audit"))]
pub fn alloc_audit_cmd(_opts: &Options) -> Result<(), SimError> {
    Err(SimError::Usage(
        "alloc-audit needs the counting allocator compiled in; rerun as \
         `cargo run --release -p fifoms-cli --features alloc-audit -- alloc-audit`"
            .into(),
    ))
}
