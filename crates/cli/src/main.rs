//! `fifoms-repro` — regenerate every figure of the paper.
//!
//! ```text
//! fifoms-repro <fig4|fig5|fig6|fig7|fig8|all|ablation|throughput|sweep|...> [options]
//!
//! Options:
//!   --n <N>            switch size                      [default: 16]
//!   --slots <S>        slots per run                    [default: 100000]
//!   --seed <K>         base RNG seed                    [default: 1]
//!   --points <P>       load points per sweep            [default: 10]
//!   --threads <T>      worker threads                   [default: 4]
//!   --csv-dir <DIR>    also write per-figure CSV files
//!   --quick            1/10th slots (smoke runs)
//!
//! sweep (fault-isolated Fig. 4 grid) additionally accepts:
//!   --journal <PATH>     journal finished cells to PATH (fresh run)
//!   --resume <PATH>      resume from PATH, skipping journaled cells
//!   --check-every <K>    runtime invariant validation; conservation every K slots
//!   --cell-timeout <SEC> per-cell wall-clock watchdog
//!   --inject-faults      deterministic crosspoint/output-port faults
//!   --retries <R>        retry budget for panicked/timed-out cells
//!   --trace-out <PATH>   stream per-slot scheduler events as JSONL to PATH
//!   --metrics-out <PATH> write aggregated sweep metrics as JSON to PATH
//!   --progress           periodic progress line on stderr (slots/s, ETA)
//!   --packet-trace <M>   packet flight recorder: all, 1/K or ring:C [default: off]
//!
//! profile (self-profiling harness) additionally accepts:
//!   --out <PATH>         output path               [default: BENCH_profile.json]
//!   --sample-every <K>   time every K-th slot      [default: 16]
//!
//! check-bench validates BENCH_profile.json / BENCH_core.json against the
//! schemas under schemas/. With --baseline PATH it instead gates
//! slots/sec against that baseline artifact:
//!   --baseline <PATH>    reference BENCH_core.json to compare against
//!   --current <PATH>     artifact under test       [default: BENCH_core.json]
//!   --tolerance <F>      allowed fractional drop   [default: 0.15]
//!
//! perf-diff <baseline.json> <current.json> attributes a slots/sec delta
//! between two `fifoms-repro profile` artifacts to named spans
//! (exclusive ns/call per span), failing past the tolerance and naming
//! the span whose per-call cost grew the most:
//!   --tolerance <F>      allowed fractional slots/sec drop [default: 0.15]
//!
//! alloc-audit proves the steady-state slot loop (FIFOMS and iSLIP at
//! the reference operating point) performs zero heap allocations per
//! slot after warmup. Requires the counting allocator:
//!   cargo run --release -p fifoms-cli --features alloc-audit -- alloc-audit
//!   --json <PATH>        write the fifoms-alloc-audit-v1 report
//!
//! analyze <trace.jsonl> reconstructs packet lifecycles from a
//! --trace-out file: delay decomposition (HOL / contention / split
//! residue), the Theorem 1 starvation audit, convergence histograms and
//! fanout-split tables.
//!   --compare <PATH>     diff against a second trace (e.g. iSLIP run)
//!   --json <PATH>        also write the report as JSON
//!
//! chaos runs a seeded egress-fault campaign through the invariant
//! checker and exits nonzero on any violation, deadlock or unreconciled
//! fanout counter; failing scenarios are shrunk to a minimal
//! `--scenario` reproducer:
//!   --scenarios <C>      scenarios per campaign    [default: 12]
//!   --smoke              shortened CI campaign (seconds, not minutes)
//!   --scenario <SPEC>    run one scenario, e.g.
//!                        crosspoint_faults=2,crosspoint_duration=never
//!
//! overload runs the finite-buffer loss-rate / stability sweep: every
//! load point against the infinite-buffer baseline and the drop-tail,
//! stamp-preserving pushout and fair-shed admission policies, each cell
//! proving the extended conservation law under `CheckedSwitch`:
//!   --voq-cap <C>        per-VOQ address-cell cap   [default: 16]
//!   --input-cap <C>      per-input aggregate cap    [default: 64]
//!   --json <PATH>        write the fifoms-overload-v1 artifact
//!                        (schema-checked against schemas/overload.schema.json)
//!
//! sweep, chaos and overload accept the live-telemetry flags, which
//! attach windowed observation without perturbing results (runs stay
//! bit-identical, asserted by the telemetry test suite):
//!   --timeseries-out <PATH> stream fifoms-timeseries-v1 window JSONL
//!   --snapshot-out <PATH>   publish the live snapshot JSON (atomic rewrite)
//!   --prom-out <PATH>       publish Prometheus-style text exposition
//!   --window <S>            window stride in slots    [default: 1000]
//!
//! top <snapshot.json> renders an in-terminal live view of a running
//! campaign from its --snapshot-out file — windowed slots/sec,
//! delivered/admitted, tail percentiles, overload level and the
//! per-input fault scoreboard — refreshing until every scope completes:
//!   --once               render one frame and exit (CI / scripting)
//!   --interval-ms <MS>   refresh period            [default: 500]
//!   --timeseries <PATH>  also validate a --timeseries-out stream
//!
//! serve runs a supervised, checkpointed long-running session: periodic
//! crash-safe checkpoints plus a write-ahead arrival log in the state
//! directory, a watchdog-guarded worker, and restart-from-checkpoint
//! with exponential backoff until the budget is exhausted. Killing the
//! process and re-running the command resumes bit-identically:
//!   --state-dir <DIR>       checkpoint/WAL directory (required)
//!   --checkpoint-every <K>  checkpoint interval in slots [default: 10000]
//!   --max-restarts <R>      supervisor restart budget    [default: 3]
//!   --load <P>              per-slot arrival probability [default: 0.6]
//!   --die-at-slot <T>       deliberately crash the first attempt at T
//!   --cell-timeout <SEC>    per-attempt worker watchdog
//!   --out <PATH>            supervisor recovery-event JSONL log
//!
//! check-bench additionally maintains a running slots/sec ledger:
//!   --ledger <PATH>      append a fifoms-bench-ledger-v1 row to PATH
//!   --ledger-note <S>    free-form note stored with the row
//!
//! lint runs the fifoms-lint source disciplines (R1 determinism, R2
//! timestamp preservation, R3 panic freedom, R4 event vocabulary, R5
//! SAFETY/INVARIANT audit, R6 fingerprint floats, R7 wrapper forwarding,
//! R8 checkpoint coverage, R9 schema drift, R10 guarded indexing) over
//! the workspace and exits nonzero on any finding beyond the baseline:
//!   --baseline <PATH>    grandfathered-findings allowlist to gate against
//!   --json <PATH>        write the fifoms-lint-v1 report (schema-checked)
//!   --write-baseline     regenerate the baseline (and the R8 state
//!                        fingerprint manifest) from current findings
//!   --explain <RULE>     print one rule's documentation card and exit
//!   --stats              append a fifoms-lint-stats-v1 rule-hit row to
//!                        results/bench_ledger.jsonl (--ledger overrides)
//! ```
//!
//! Each figure command prints the paper's four statistics (input-oriented
//! delay, output-oriented delay, average queue size, maximum queue size)
//! as load-by-scheduler tables; values measured beyond a scheduler's
//! stability region are suffixed `*`. `fig5` prints convergence rounds for
//! FIFOMS and iSLIP.

mod analyze;
mod args;
mod auditcmd;
mod chaoscmd;
mod figures;
mod lintcmd;
mod obscmd;
mod overloadcmd;
mod servecmd;
mod topcmd;
mod traces;

use std::process::ExitCode;

use args::Options;
use fifoms_types::SimError;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (command, opts) = match args::parse(&argv) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: fifoms-repro <fig4|fig5|fig6|fig7|fig8|all|ablation|throughput|scaling|fairness|oq-speedup|mixed|record|replay|sweep|profile|check-bench|perf-diff|alloc-audit|analyze|chaos|lint|overload|top|serve> [--n N] [--slots S] [--seed K] [--points P] [--threads T] [--csv-dir DIR] [--plot] [--quick] [--journal PATH] [--resume PATH] [--check-every K] [--cell-timeout SEC] [--inject-faults] [--retries R] [--trace-out PATH] [--metrics-out PATH] [--progress] [--packet-trace all|1/K|ring:C] [--out PATH] [--sample-every K] [--baseline PATH] [--current PATH] [--tolerance F] [--compare PATH] [--json PATH] [--scenarios C] [--smoke] [--scenario SPEC] [--write-baseline] [--explain RULE] [--stats] [--voq-cap C] [--input-cap C] [--timeseries-out PATH] [--snapshot-out PATH] [--prom-out PATH] [--window S] [--once] [--interval-ms MS] [--timeseries PATH] [--ledger PATH] [--ledger-note S] [--state-dir DIR] [--checkpoint-every K] [--die-at-slot T] [--max-restarts R] [--load P]");
            return ExitCode::FAILURE;
        }
    };
    match run(&command, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(command: &str, opts: &Options) -> Result<(), SimError> {
    match command {
        "fig4" => figures::fig4(opts),
        "fig5" => figures::fig5(opts),
        "fig6" => figures::fig6(opts),
        "fig7" => figures::fig7(opts),
        "fig8" => figures::fig8(opts),
        "ablation" => figures::ablation(opts),
        "throughput" => figures::throughput(opts),
        "scaling" => figures::scaling(opts),
        "fairness" => figures::fairness(opts),
        "oq-speedup" => figures::oq_speedup(opts),
        "mixed" => figures::mixed(opts),
        "sweep" => figures::sweep_cmd(opts),
        "profile" => obscmd::profile(opts),
        "check-bench" => obscmd::check_bench(opts),
        "perf-diff" => obscmd::perf_diff(opts),
        "alloc-audit" => auditcmd::alloc_audit_cmd(opts),
        "analyze" => analyze::analyze(opts),
        "chaos" => chaoscmd::chaos(opts),
        "lint" => lintcmd::lint(opts),
        "overload" => overloadcmd::overload(opts),
        "serve" => servecmd::serve_cmd(opts),
        "top" => topcmd::top(opts),
        "record" => traces::record(opts),
        "replay" => traces::replay(opts),
        "all" => {
            figures::fig4(opts)?;
            figures::fig5(opts)?;
            figures::fig6(opts)?;
            figures::fig7(opts)?;
            figures::fig8(opts)
        }
        _ => unreachable!("parse validated the command"),
    }
}
