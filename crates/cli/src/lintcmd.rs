//! The `lint` command: run the `fifoms-lint` disciplines over the
//! workspace and gate against the checked-in baseline.
//!
//! The gate is a ratchet: findings already in the baseline are
//! grandfathered; anything new fails the run with a one-line error (the
//! detail lines precede it on stdout); baseline entries that no longer
//! match are reported as shrinkage and `--write-baseline` re-tightens
//! the file. With `--json` the `fifoms-lint-v1` report is written and —
//! when the workspace carries `schemas/lint.schema.json` — validated
//! against it before writing, the same self-check `check-bench` applies
//! to the BENCH_* artifacts.

use std::path::PathBuf;

use fifoms_lint::{engine, Gate, Report};
use fifoms_obs::{schema, Json};
use fifoms_sim::report::Table;
use fifoms_types::SimError;

use crate::args::Options;

/// Entry point for `fifoms-repro lint`.
pub fn lint(opts: &Options) -> Result<(), SimError> {
    if let Some(rule) = opts.explain.as_deref() {
        return explain(rule);
    }
    let root = discover_root()?;
    let report = engine::lint_root(&root).map_err(SimError::Usage)?;
    let baseline = match opts.baseline.as_deref() {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| SimError::Usage(format!("{path}: {e}")))?;
            engine::parse_baseline(&text).map_err(|e| SimError::Usage(format!("{path}: {e}")))?
        }
        None => Vec::new(),
    };
    let g = engine::gate(&report, &baseline);

    println!(
        "lint: scanned {} files under {} — {} finding(s): {} baselined, {} new",
        report.files_scanned,
        root.display(),
        report.findings.len(),
        g.baselined,
        g.new.len()
    );
    let mut table = Table::new(vec!["rule", "findings", "new"]);
    for (id, name, _) in fifoms_lint::RULES {
        let total = report.findings.iter().filter(|f| f.rule == *id).count();
        let new = g.new.iter().filter(|f| f.rule == *id).count();
        table.push_row(vec![
            format!("{id} {name}"),
            total.to_string(),
            new.to_string(),
        ]);
    }
    print!("{}", table.render());
    for f in &g.new {
        println!("NEW {}:{}:{} [{}] {}", f.path, f.line, f.col, f.rule, f.message);
    }
    for (rule, path, key, was, now) in &g.stale {
        println!(
            "shrunk: {rule} {path} {key:?} {was} -> {now} finding(s); \
             run with --write-baseline to lock in the progress"
        );
    }

    if let Some(json_path) = opts.json_out.as_deref() {
        let doc = engine::render_json(&report, &g);
        let schema_path = root.join("schemas/lint.schema.json");
        if schema_path.is_file() {
            let schema_text = std::fs::read_to_string(&schema_path)
                .map_err(|e| SimError::Usage(format!("{}: {e}", schema_path.display())))?;
            let schema_doc = Json::parse(&schema_text)
                .map_err(|e| SimError::Usage(format!("{}: {e}", schema_path.display())))?;
            schema::validate(&doc, &schema_doc).map_err(|e| {
                SimError::Usage(format!("lint: emitted report violates its own schema: {e}"))
            })?;
        }
        std::fs::write(json_path, format!("{doc}\n"))
            .map_err(|e| SimError::Usage(format!("{json_path}: {e}")))?;
        println!("lint: wrote {json_path}");
    }

    if opts.stats {
        let ledger = opts
            .ledger
            .as_deref()
            .unwrap_or("results/bench_ledger.jsonl");
        let mut doc = Json::object();
        doc.set("schema", "fifoms-lint-stats-v1");
        doc.set("files_scanned", report.files_scanned);
        doc.set("findings", report.findings.len());
        doc.set("new", g.new.len());
        doc.set("baselined", g.baselined);
        let rows: Vec<Json> = fifoms_lint::RULES
            .iter()
            .map(|(id, _, _)| {
                let mut row = Json::object();
                row.set("rule", *id);
                row.set(
                    "findings",
                    report.findings.iter().filter(|f| f.rule == *id).count(),
                );
                row
            })
            .collect();
        doc.set("rules", Json::Arr(rows));
        crate::obscmd::append_jsonl(ledger, &doc)?;
        println!("lint: appended fifoms-lint-stats-v1 row to {ledger}");
    }

    if opts.write_baseline {
        let path = opts.baseline.as_deref().unwrap_or("lint-baseline.json");
        let counts = engine::key_counts(&report.findings);
        std::fs::write(path, engine::render_baseline(&counts))
            .map_err(|e| SimError::Usage(format!("{path}: {e}")))?;
        println!(
            "lint: wrote {path} ({} entries, {} finding(s) grandfathered)",
            counts.len(),
            report.findings.len()
        );
        // Re-anchor the checkpoint-state fingerprint manifest alongside
        // the baseline: R8 drift detection compares future runs to the
        // fingerprints captured here.
        let manifest = root.join(engine::STATE_MANIFEST_REL);
        std::fs::write(&manifest, &report.state_manifest)
            .map_err(|e| SimError::Usage(format!("{}: {e}", manifest.display())))?;
        println!("lint: wrote {} (state fingerprints)", manifest.display());
        return Ok(());
    }
    finish(&report, &g)
}

/// `lint --explain <RULE>`: print one rule's documentation card — what
/// it enforces, why the discipline exists, a violating example and the
/// sanctioned escape hatch.
fn explain(rule: &str) -> Result<(), SimError> {
    let id = rule.to_ascii_uppercase();
    let Some((id, rationale, example, escape)) = fifoms_lint::RULE_DOCS
        .iter()
        .find(|(r, _, _, _)| *r == id)
    else {
        return Err(SimError::Usage(format!(
            "lint: unknown rule {rule:?} (expected one of {})",
            fifoms_lint::RULE_DOCS
                .iter()
                .map(|(r, _, _, _)| *r)
                .collect::<Vec<_>>()
                .join(", ")
        )));
    };
    let name = fifoms_lint::RULES
        .iter()
        .find(|(r, _, _)| r == id)
        .map(|(_, n, _)| *n)
        .unwrap_or("");
    println!("{id} — {name}");
    println!();
    println!("why      {rationale}");
    println!("example  {example}");
    println!("escape   {escape}");
    Ok(())
}

fn finish(_report: &Report, g: &Gate) -> Result<(), SimError> {
    if g.new.is_empty() {
        println!("lint: clean (no findings beyond the baseline)");
        Ok(())
    } else {
        Err(SimError::Usage(format!(
            "lint: {} new finding(s) beyond the baseline — fix them, justify with \
             `// fifoms-lint: allow(Rk) reason`, or accept with --write-baseline",
            g.new.len()
        )))
    }
}

/// Walk up from the current directory to the workspace root (the first
/// ancestor holding both `Cargo.toml` and a `crates/` directory).
fn discover_root() -> Result<PathBuf, SimError> {
    let start = std::env::current_dir()
        .map_err(|e| SimError::Usage(format!("lint: cannot read current directory: {e}")))?;
    let mut dir = start.clone();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(SimError::Usage(format!(
                "lint: no workspace root (Cargo.toml + crates/) at or above {}",
                start.display()
            )));
        }
    }
}
