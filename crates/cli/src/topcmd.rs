//! The `top` subcommand: an in-terminal live view of a running campaign.
//!
//! `fifoms-repro top <snapshot.json>` attaches to the snapshot file a
//! campaign publishes via `--snapshot-out` and re-renders it every
//! `--interval-ms` until every scope reports `complete` — windowed
//! rates, per-window scheduling share, the per-slot wall-time tail from
//! the live [`Log2Histogram`](fifoms_obs::Log2Histogram), and the
//! per-input fault scoreboard. `--once` renders a single frame and
//! exits, which is what CI and scripts use; `--timeseries <file.jsonl>`
//! additionally validates a `--timeseries-out` stream line-by-line
//! against `schemas/timeseries.schema.json`.
//!
//! Every snapshot read is validated against
//! `schemas/snapshot.schema.json` (both schemas are compiled in with
//! `include_str!`, so `top` works from any working directory). Reads
//! race the producer safely: the bus writes through a temp file and an
//! atomic rename, so a frame is either the previous snapshot or the
//! next one, never a torn file.
//!
//! This module also owns [`telemetry_spec`], the shared builder that
//! turns the `--timeseries-out` / `--snapshot-out` / `--prom-out` flags
//! into the [`TelemetrySpec`] the campaign commands (`sweep`, `chaos`,
//! `overload`) attach to their runs.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fifoms_obs::{schema, Json, JsonlSink, SnapshotBus};
use fifoms_sim::TelemetrySpec;
use fifoms_types::SimError;

use crate::args::Options;

const SNAPSHOT_SCHEMA: &str = include_str!("../../../schemas/snapshot.schema.json");
const TIMESERIES_SCHEMA: &str = include_str!("../../../schemas/timeseries.schema.json");

/// Trailing windows shown per scope.
const SHOW_WINDOWS: usize = 5;

/// Live mode gives the producer this long to create the snapshot file
/// before giving up (a campaign publishes its first window quickly; a
/// missing file after this is almost certainly a wrong path).
const WAIT_LIMIT_MS: u64 = 60_000;

/// Build the live-telemetry spec from the `--timeseries-out`,
/// `--snapshot-out` and `--prom-out` flags; `None` when none is given,
/// so unobserved campaigns take the plain (bit-identical) path.
pub fn telemetry_spec(opts: &Options) -> Result<Option<TelemetrySpec>, SimError> {
    if opts.timeseries_out.is_none() && opts.snapshot_out.is_none() && opts.prom_out.is_none() {
        return Ok(None);
    }
    let mut spec = TelemetrySpec::new(opts.window);
    if let Some(path) = &opts.timeseries_out {
        let file = std::fs::File::create(path)
            .map_err(|e| SimError::Usage(format!("cannot create {path}: {e}")))?;
        spec.series = Some(Arc::new(JsonlSink::new(std::io::BufWriter::new(file))));
    }
    if opts.snapshot_out.is_some() || opts.prom_out.is_some() {
        spec.bus = Some(Arc::new(SnapshotBus::new(
            opts.snapshot_out.as_deref().map(PathBuf::from),
            opts.prom_out.as_deref().map(PathBuf::from),
        )));
    }
    Ok(Some(spec))
}

/// Print one `wrote <path>` line per telemetry output a campaign
/// produced, so the follow-up `top` invocation is copy-pasteable.
pub fn report_telemetry_outputs(opts: &Options) {
    for path in [&opts.timeseries_out, &opts.snapshot_out, &opts.prom_out]
        .into_iter()
        .flatten()
    {
        println!("wrote {path}");
    }
}

/// Entry point for `fifoms-repro top`.
pub fn top(opts: &Options) -> Result<(), SimError> {
    let path = opts
        .input
        .as_deref()
        .expect("parse enforced the positional snapshot path");
    let schema_doc =
        Json::parse(SNAPSHOT_SCHEMA).expect("checked-in snapshot schema parses");

    if opts.once {
        let doc = load_snapshot(path, &schema_doc)?;
        print!("{}", render(&doc));
        if let Some(ts) = opts.timeseries.as_deref() {
            println!("{}", check_timeseries(ts)?);
        }
        return Ok(());
    }

    let interval = std::time::Duration::from_millis(opts.interval_ms);
    let mut waited_ms = 0u64;
    loop {
        if !Path::new(path).exists() {
            if waited_ms >= WAIT_LIMIT_MS {
                return Err(SimError::Usage(format!(
                    "top: {path} did not appear within {}s — is the campaign \
                     running with --snapshot-out {path}?",
                    WAIT_LIMIT_MS / 1_000
                )));
            }
            println!("top: waiting for {path} ...");
            std::thread::sleep(interval);
            waited_ms += opts.interval_ms;
            continue;
        }
        let doc = load_snapshot(path, &schema_doc)?;
        // ANSI clear + home, then the frame: a plain full-screen redraw
        // (no cursor tricks, so it degrades fine in pipes and logs).
        print!("\x1b[2J\x1b[H{}", render(&doc));
        if all_complete(&doc) {
            println!("top: all scopes complete");
            if let Some(ts) = opts.timeseries.as_deref() {
                println!("{}", check_timeseries(ts)?);
            }
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// Read, parse and schema-validate one snapshot frame.
fn load_snapshot(path: &str, schema_doc: &Json) -> Result<Json, SimError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SimError::Usage(format!("top: cannot read {path}: {e}")))?;
    let doc = Json::parse(&text)
        .map_err(|e| SimError::Usage(format!("top: {path} is not valid JSON: {e}")))?;
    schema::validate(&doc, schema_doc).map_err(|e| {
        SimError::Usage(format!(
            "top: {path} is not a fifoms-telemetry-snapshot-v1 document: {e}"
        ))
    })?;
    Ok(doc)
}

/// Whether every scope in the snapshot has published its final,
/// completion-marked frame.
fn all_complete(doc: &Json) -> bool {
    match doc.get("scopes") {
        Some(Json::Obj(scopes)) => {
            !scopes.is_empty()
                && scopes
                    .iter()
                    .all(|(_, body)| matches!(body.get("complete"), Some(Json::Bool(true))))
        }
        _ => false,
    }
}

fn num(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64
}

/// Human-scale rate: `912`, `14.2k`, `1.3M`.
fn human_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Slots per second from a window's slot count and wall nanoseconds.
fn window_rate(slots: u64, wall_ns: u64) -> String {
    if wall_ns == 0 {
        return "-".to_string();
    }
    human_rate(slots as f64 / (wall_ns as f64 / 1e9))
}

/// Render one full frame of the live view.
fn render(doc: &Json) -> String {
    let mut out = String::new();
    let seq = num(doc, "seq");
    let empty = Vec::new();
    let scopes = match doc.get("scopes") {
        Some(Json::Obj(pairs)) => pairs,
        _ => &empty,
    };
    let done = scopes
        .iter()
        .filter(|(_, b)| matches!(b.get("complete"), Some(Json::Bool(true))))
        .count();
    let _ = writeln!(
        out,
        "fifoms top — snapshot seq {seq}, {} scope(s), {done} complete",
        scopes.len()
    );
    for (scope, body) in scopes {
        render_scope(&mut out, scope, body);
    }
    out
}

/// Render one scope's panel: totals, health, tail, trailing windows and
/// the per-input fault scoreboard.
fn render_scope(out: &mut String, scope: &str, body: &Json) {
    let state = if matches!(body.get("complete"), Some(Json::Bool(true))) {
        "DONE"
    } else {
        "RUNNING"
    };
    let _ = writeln!(
        out,
        "\n── {scope} ─ {state} ─ {} slots ({} ports, window {})",
        num(body, "slots"),
        num(body, "ports"),
        num(body, "stride"),
    );
    if let Some(totals) = body.get("totals") {
        let _ = writeln!(
            out,
            "   totals   admitted {} pkts   delivered {} copies   completed {} pkts",
            num(totals, "admitted_packets"),
            num(totals, "delivered_copies"),
            num(totals, "completed_packets"),
        );
        let _ = writeln!(
            out,
            "   faults   drops tail {} / pushout {} / fair-shed {}   kills {}   recoveries {}",
            num(totals, "drop_tail_full"),
            num(totals, "drop_pushout"),
            num(totals, "drop_fair_shed"),
            num(totals, "copy_kills"),
            num(totals, "copy_recoveries"),
        );
    }
    let _ = writeln!(
        out,
        "   health   backlog {} copies   voq high-water {}   overload L{}   quarantined paths {}",
        num(body, "backlog_copies"),
        num(body, "voq_high_water"),
        num(body, "overload_level"),
        num(body, "quarantined_paths"),
    );
    if let Some(tail) = body.get("slot_ns") {
        let _ = writeln!(
            out,
            "   slot ns  p50 {}   p99 {}   p99.9 {}   max {}   ({} samples)",
            num(tail, "p50_ns"),
            num(tail, "p99_ns"),
            num(tail, "p999_ns"),
            num(tail, "max_ns"),
            num(tail, "samples"),
        );
    }
    if let Some(windows) = body.get("windows").and_then(Json::as_arr) {
        if !windows.is_empty() {
            let shown = &windows[windows.len().saturating_sub(SHOW_WINDOWS)..];
            let _ = writeln!(
                out,
                "   windows  (last {} of {} ringed)",
                shown.len(),
                windows.len()
            );
            let _ = writeln!(
                out,
                "     {:>6} {:>7} {:>7} {:>8} {:>9} {:>7}",
                "win", "slots", "admit", "deliver", "slots/s", "sched%"
            );
            for w in shown {
                let wall = num(w, "wall_ns");
                let sched_pct = if wall == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", 100.0 * num(w, "sched_ns") as f64 / wall as f64)
                };
                let _ = writeln!(
                    out,
                    "     {:>6} {:>7} {:>7} {:>8} {:>9} {:>7}",
                    num(w, "window"),
                    num(w, "slots"),
                    num(w, "admitted_packets"),
                    num(w, "delivered_copies"),
                    window_rate(num(w, "slots"), wall),
                    sched_pct,
                );
            }
        }
    }
    if let Some(inputs) = body.get("inputs").and_then(Json::as_arr) {
        for i in inputs {
            let (kills, recov, drops, quar) = (
                num(i, "kills"),
                num(i, "recoveries"),
                num(i, "admission_drops"),
                num(i, "quarantined"),
            );
            if kills + recov + drops + quar == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "   input #{}  kills {kills}  recoveries {recov}  admission drops {drops}{}",
                num(i, "input"),
                if quar > 0 {
                    format!("  [{quar} quarantined path(s)]")
                } else {
                    String::new()
                },
            );
        }
    }
}

/// Validate a `--timeseries-out` stream line-by-line against
/// `schemas/timeseries.schema.json` and summarize it.
fn check_timeseries(path: &str) -> Result<String, SimError> {
    let schema_doc =
        Json::parse(TIMESERIES_SCHEMA).expect("checked-in timeseries schema parses");
    let text = std::fs::read_to_string(path)
        .map_err(|e| SimError::Usage(format!("top: cannot read {path}: {e}")))?;
    let mut records = 0u64;
    let mut windows = 0u64;
    let mut scopes: BTreeSet<String> = BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| {
            SimError::Usage(format!("top: {path}:{}: not valid JSON: {e}", lineno + 1))
        })?;
        schema::validate(&doc, &schema_doc).map_err(|e| {
            SimError::Usage(format!(
                "top: {path}:{}: violates fifoms-timeseries-v1: {e}",
                lineno + 1
            ))
        })?;
        records += 1;
        if doc.get("event").and_then(Json::as_str) == Some("window_summary") {
            windows += 1;
        }
        if let Some(scope) = doc.get("scope").and_then(Json::as_str) {
            scopes.insert(scope.to_string());
        }
    }
    if records == 0 {
        return Err(SimError::Usage(format!(
            "top: {path} holds no fifoms-timeseries-v1 records"
        )));
    }
    Ok(format!(
        "timeseries {path}: {records} record(s) valid against fifoms-timeseries-v1 \
         ({windows} window(s) across {} scope(s))",
        scopes.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scope() -> Json {
        let mut totals = Json::object();
        totals.set("admitted_packets", 500u64);
        totals.set("delivered_copies", 1_000u64);
        totals.set("completed_packets", 500u64);
        totals.set("drop_tail_full", 3u64);
        totals.set("drop_pushout", 0u64);
        totals.set("drop_fair_shed", 0u64);
        totals.set("copy_kills", 2u64);
        totals.set("copy_recoveries", 2u64);
        let mut w = Json::object();
        w.set("window", 1u64);
        w.set("slots", 100u64);
        w.set("admitted_packets", 50u64);
        w.set("delivered_copies", 100u64);
        w.set("wall_ns", 1_000_000u64);
        w.set("sched_ns", 400_000u64);
        let mut input = Json::object();
        input.set("input", 3u64);
        input.set("kills", 2u64);
        input.set("recoveries", 2u64);
        input.set("admission_drops", 0u64);
        input.set("quarantined", 1u64);
        let mut body = Json::object();
        body.set("complete", true);
        body.set("ports", 8u64);
        body.set("stride", 100u64);
        body.set("slots", 1_000u64);
        body.set("totals", totals);
        body.set("backlog_copies", 0u64);
        body.set("voq_high_water", 14u64);
        body.set("overload_level", 0u64);
        body.set("quarantined_paths", 1u64);
        body.set("windows", Json::Arr(vec![w]));
        body.set("inputs", Json::Arr(vec![input]));
        body
    }

    fn sample_snapshot() -> Json {
        let mut scopes = Json::object();
        scopes.set("baseline@0.5", sample_scope());
        let mut doc = Json::object();
        doc.set("schema", "fifoms-telemetry-snapshot-v1");
        doc.set("seq", 7u64);
        doc.set("scopes", scopes);
        doc
    }

    #[test]
    fn sample_snapshot_validates_and_renders() {
        let doc = sample_snapshot();
        let schema_doc = Json::parse(SNAPSHOT_SCHEMA).unwrap();
        schema::validate(&doc, &schema_doc).expect("sample conforms");
        let frame = render(&doc);
        assert!(frame.contains("baseline@0.5"), "{frame}");
        assert!(frame.contains("DONE"), "{frame}");
        assert!(frame.contains("delivered 1000 copies"), "{frame}");
        assert!(frame.contains("voq high-water 14"), "{frame}");
        assert!(frame.contains("input #3"), "{frame}");
        assert!(frame.contains("sched%"), "{frame}");
        assert!(all_complete(&doc));
    }

    #[test]
    fn incomplete_scopes_keep_the_view_live() {
        let mut doc = sample_snapshot();
        let mut running = sample_scope();
        running.set("complete", false);
        let Some(Json::Obj(scopes)) = doc.get("scopes").cloned().map(|mut s| {
            s.set("chaos#1", running);
            s
        }) else {
            panic!("scopes is an object");
        };
        doc.set("scopes", Json::Obj(scopes));
        assert!(!all_complete(&doc));
        let frame = render(&doc);
        assert!(frame.contains("RUNNING"), "{frame}");
        assert!(frame.contains("1 complete"), "{frame}");
    }

    #[test]
    fn rates_render_humanely() {
        assert_eq!(human_rate(912.0), "912");
        assert_eq!(human_rate(14_200.0), "14.2k");
        assert_eq!(human_rate(1_300_000.0), "1.3M");
        assert_eq!(window_rate(100, 0), "-");
        // 100 slots in 1ms = 100k slots/sec.
        assert_eq!(window_rate(100, 1_000_000), "100.0k");
    }

    #[test]
    fn timeseries_checker_accepts_real_lines_and_rejects_junk() {
        let dir = std::env::temp_dir();
        let good = dir.join(format!("fifoms-top-ts-good-{}.jsonl", std::process::id()));
        std::fs::write(
            &good,
            concat!(
                "{\"event\":\"window_meta\",\"scope\":\"s\",\"schema\":\"fifoms-timeseries-v1\",",
                "\"stride\":100,\"ring\":64,\"ports\":8}\n",
                "{\"event\":\"window_summary\",\"scope\":\"s\",\"window\":0,\"start_slot\":0,",
                "\"slots\":100,\"admitted_packets\":50,\"delivered_copies\":100,",
                "\"completed_packets\":50,\"drop_tail_full\":0,\"drop_pushout\":0,",
                "\"drop_fair_shed\":0,\"copy_kills\":0,\"copy_recoveries\":0,",
                "\"voq_high_water\":3,\"backlog_copies\":0,\"quarantined_paths\":0,",
                "\"overload_level\":0,\"sched_ns\":1000,\"wall_ns\":2000}\n",
            ),
        )
        .unwrap();
        let summary = check_timeseries(good.to_str().unwrap()).expect("valid stream");
        assert!(summary.contains("2 record(s)"), "{summary}");
        assert!(summary.contains("1 window(s)"), "{summary}");
        std::fs::remove_file(&good).ok();

        let bad = dir.join(format!("fifoms-top-ts-bad-{}.jsonl", std::process::id()));
        std::fs::write(&bad, "{\"event\":\"run_meta\",\"scope\":\"s\"}\n").unwrap();
        assert!(check_timeseries(bad.to_str().unwrap()).is_err());
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn telemetry_spec_is_none_without_flags() {
        let opts = Options::default();
        assert!(telemetry_spec(&opts).unwrap().is_none());
        let dir = std::env::temp_dir();
        let snap = dir.join(format!("fifoms-top-spec-{}.json", std::process::id()));
        let opts = Options {
            snapshot_out: Some(snap.to_str().unwrap().to_string()),
            window: 250,
            ..Options::default()
        };
        let spec = telemetry_spec(&opts).unwrap().expect("bus-only spec");
        assert!(spec.series.is_none());
        assert!(spec.bus.is_some());
        assert_eq!(spec.window, 250);
    }
}
