//! `record` / `replay` subcommands: capture a workload to a trace file
//! and compare schedulers on identical recorded arrivals.

use fifoms_sim::report::Table;
use fifoms_sim::SwitchKind;
use fifoms_stats::DelayStats;
use fifoms_traffic::{Trace, TraceSource, TrafficModel};
use fifoms_types::{Packet, PacketId, PortId, SimError, Slot};

use crate::args::Options;

/// `fifoms-repro record --csv-dir DIR`: record the paper's Fig. 4
/// workload (Bernoulli b = 0.2 at 70% load) for `--slots` slots into
/// `DIR/trace.txt`. `--seed` selects the stream.
pub fn record(opts: &Options) -> Result<(), SimError> {
    let Some(dir) = &opts.csv_dir else {
        return Err(SimError::Usage(
            "record requires --csv-dir <DIR> (the trace is written there)".into(),
        ));
    };
    let n = opts.n;
    let p = fifoms_traffic::BernoulliMulticast::p_for_load(0.7, n, 0.2);
    let mut model = fifoms_traffic::BernoulliMulticast::new(n, p, 0.2, opts.seed)?;
    let trace = Trace::record(&mut model, opts.slots);
    let path = format!("{dir}/trace.txt");
    std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&path, trace.to_text()))
        .map_err(|e| SimError::Usage(format!("could not write {path}: {e}")))?;
    println!(
        "recorded {} packets over {} slots ({}x{n}, load 0.70) to {path}",
        trace.packets(),
        trace.len_slots(),
        n
    );
    Ok(())
}

/// `fifoms-repro replay --csv-dir DIR`: load `DIR/trace.txt` and run the
/// paper's four schedulers on the identical arrival sequence, reporting
/// variance-free deltas.
pub fn replay(opts: &Options) -> Result<(), SimError> {
    let Some(dir) = &opts.csv_dir else {
        return Err(SimError::Usage(
            "replay requires --csv-dir <DIR> (containing trace.txt from `record`)".into(),
        ));
    };
    let path = format!("{dir}/trace.txt");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| SimError::Usage(format!("could not read {path}: {e} (run `record` first)")))?;
    let trace = Trace::from_text(&text)
        .map_err(|e| SimError::Usage(format!("{path} is not a valid trace: {e}")))?;
    println!(
        "replaying {} packets / {} slots from {path}\n",
        trace.packets(),
        trace.len_slots()
    );
    let mut table = Table::new(vec![
        "scheduler",
        "in-delay",
        "out-delay",
        "copies",
        "drain-slot",
    ]);
    for sk in SwitchKind::paper_set() {
        let (delay, drained) = replay_one(&trace, sk, opts.seed);
        table.push_row(vec![
            sk.label(),
            format!("{:.3}", delay.mean_input_oriented()),
            format!("{:.3}", delay.mean_output_oriented()),
            format!("{}", delay.delivered_copies()),
            format!("{drained}"),
        ]);
    }
    print!("{}", table.render());
    println!("\n(identical arrivals for every scheduler: deltas are pure scheduling)");
    Ok(())
}

fn replay_one(trace: &Trace, sk: SwitchKind, seed: u64) -> (DelayStats, u64) {
    let mut sw = sk.build(trace.ports(), seed);
    let mut src = TraceSource::new(trace.clone());
    let mut arrivals = Vec::new();
    let mut delay = DelayStats::new();
    let mut id = 0u64;
    let mut t = 0u64;
    loop {
        let now = Slot(t);
        src.next_slot(now, &mut arrivals);
        for (input, dests) in arrivals.iter_mut().enumerate() {
            if let Some(d) = dests.take() {
                id += 1;
                sw.admit(Packet::new(PacketId(id), now, PortId::new(input), d));
            }
        }
        for d in &sw.run_slot(now).departures {
            delay.record_copy(d.delay(now), d.last_copy);
        }
        t += 1;
        if t >= trace.len_slots() && sw.backlog().is_empty() {
            break;
        }
        assert!(
            t < trace.len_slots() + 10_000_000,
            "{} failed to drain the trace",
            sw.name()
        );
    }
    (delay, t)
}
