//! The `overload` subcommand: the finite-buffer loss-rate / stability
//! sweep.
//!
//! Runs every load point in a grid crossing the admissible boundary
//! against the infinite-buffer baseline and each finite-buffer
//! admission policy (drop-tail, stamp-preserving pushout, fair-shed),
//! with every cell inside `CheckedSwitch` so the extended conservation
//! law (`admitted == delivered + backlog + reconciled + admission
//! drops`, backlog within capacity) is proven as the sweep runs. Prints
//! the loss-rate table; with `--json PATH` also writes the
//! `fifoms-overload-v1` artifact, self-validated against
//! `schemas/overload.schema.json` when the schema is present.

use fifoms_obs::{schema, Json};
use fifoms_sim::report::Table;
use fifoms_sim::{loss_sweep_observed, LossPoint, LossSweepConfig};
use fifoms_types::SimError;

use crate::args::Options;
use crate::topcmd;

/// Entry point for `fifoms-repro overload`.
pub fn overload(opts: &Options) -> Result<(), SimError> {
    let mut cfg = LossSweepConfig::quick(opts.n, opts.slots, opts.seed, opts.points);
    cfg.voq_cap = opts.voq_cap;
    cfg.input_cap = opts.input_cap;
    let max_load = cfg.max_load();
    if let Some(&bad) = cfg.loads.iter().find(|&&l| l <= 0.0 || l > max_load) {
        return Err(SimError::Usage(format!(
            "overload: load {bad:.2} not representable at n={} \
             (the sweep's fanout caps offered load at {max_load:.2}); use a larger --n",
            cfg.n
        )));
    }
    println!(
        "overload sweep: n={}, {} slots/cell, {} load point(s) x 4 policies, \
         voq_cap={}, input_cap={}, seed {}",
        cfg.n,
        cfg.slots,
        cfg.loads.len(),
        cfg.voq_cap,
        cfg.input_cap,
        opts.seed
    );

    // Each cell streams live windows under its `<policy>@<load>` scope
    // when the telemetry flags are present; results are bit-identical
    // either way.
    let telemetry = topcmd::telemetry_spec(opts)?;
    let points = loss_sweep_observed(&cfg, telemetry.as_ref());
    drop(telemetry); // flush the series sink before the table prints
    topcmd::report_telemetry_outputs(opts);

    let mut table = Table::new(vec![
        "load",
        "policy",
        "admitted",
        "delivered",
        "dropped",
        "loss_rate",
        "stable",
        "mean_delay",
    ]);
    for p in &points {
        table.push_row(vec![
            format!("{:.2}", p.load),
            p.policy.clone(),
            p.admitted.to_string(),
            p.delivered.to_string(),
            p.admission_dropped.to_string(),
            format!("{:.4}", p.loss_rate),
            if p.stable { "yes" } else { "no" }.to_string(),
            format!("{:.2}", p.mean_delay),
        ]);
    }
    print!("{}", table.render());
    println!(
        "{} cell(s), all conservation checks passed (every cell ran under CheckedSwitch)",
        points.len()
    );

    if let Some(json_path) = opts.json_out.as_deref() {
        let doc = render_json(&cfg, &points);
        let schema_path = std::path::Path::new("schemas/overload.schema.json");
        if schema_path.is_file() {
            let schema_text = std::fs::read_to_string(schema_path)
                .map_err(|e| SimError::Usage(format!("{}: {e}", schema_path.display())))?;
            let schema_doc = Json::parse(&schema_text)
                .map_err(|e| SimError::Usage(format!("{}: {e}", schema_path.display())))?;
            schema::validate(&doc, &schema_doc).map_err(|e| {
                SimError::Usage(format!(
                    "overload: emitted artifact violates its own schema: {e}"
                ))
            })?;
        }
        std::fs::write(json_path, format!("{doc}\n"))
            .map_err(|e| SimError::Usage(format!("{json_path}: {e}")))?;
        println!("overload: wrote {json_path}");
    }
    Ok(())
}

/// Render the sweep as the `fifoms-overload-v1` JSON artifact.
fn render_json(cfg: &LossSweepConfig, points: &[LossPoint]) -> Json {
    let mut doc = Json::object();
    doc.set("schema", "fifoms-overload-v1");
    doc.set("n", cfg.n as u64);
    doc.set("slots", cfg.slots);
    doc.set("voq_cap", cfg.voq_cap as u64);
    doc.set("input_cap", cfg.input_cap as u64);
    let rows: Vec<Json> = points
        .iter()
        .map(|p| {
            let mut row = Json::object();
            row.set("load", p.load);
            row.set("policy", p.policy.as_str());
            row.set("admitted", p.admitted);
            row.set("delivered", p.delivered);
            row.set("admission_dropped", p.admission_dropped);
            row.set("backlog", p.backlog);
            row.set("loss_rate", p.loss_rate);
            row.set("stable", p.stable);
            row.set("mean_delay", p.mean_delay);
            row
        })
        .collect();
    doc.set("rows", Json::Arr(rows));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use fifoms_sim::loss_sweep;

    #[test]
    fn artifact_conforms_to_the_checked_in_schema() {
        let cfg = LossSweepConfig {
            n: 4,
            slots: 200,
            seed: 7,
            loads: vec![0.5, 0.9],
            voq_cap: 4,
            input_cap: 16,
        };
        let points = loss_sweep(&cfg);
        let doc = render_json(&cfg, &points);
        let schema_text = include_str!("../../../schemas/overload.schema.json");
        let schema_doc = Json::parse(schema_text).expect("schema parses");
        schema::validate(&doc, &schema_doc).expect("artifact conforms");
    }

    #[test]
    fn out_of_range_loads_are_a_usage_error_not_a_panic() {
        // At n = 2 the max representable load is 0.5; the quick grid tops at 1.6.
        let opts = Options {
            n: 2,
            ..Options::default()
        };
        let err = overload(&opts).unwrap_err();
        assert!(format!("{err}").contains("not representable"));
    }
}
