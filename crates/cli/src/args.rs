//! Minimal dependency-free argument parsing.

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Switch size `N`.
    pub n: usize,
    /// Slots per simulation run.
    pub slots: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Load points per sweep.
    pub points: usize,
    /// Worker threads.
    pub threads: usize,
    /// Directory for CSV output, if requested.
    pub csv_dir: Option<String>,
    /// Render ASCII charts after the tables.
    pub plot: bool,
    /// Checkpoint journal path for the `sweep` command.
    pub journal: Option<String>,
    /// Resume from the journal instead of restarting it.
    pub resume: bool,
    /// Verify fabric invariants each slot, conservation every K slots.
    pub check_every: Option<u64>,
    /// Per-cell wall-clock budget, in seconds.
    pub cell_timeout: Option<u64>,
    /// Inject deterministic fabric faults (crosspoint failures and
    /// output-port flaps) into every cell.
    pub inject_faults: bool,
    /// Retry budget for panicked or timed-out cells.
    pub retries: u32,
    /// Stream per-slot scheduler events as JSONL to this path.
    pub trace_out: Option<String>,
    /// Write aggregated sweep metrics as JSON to this path.
    pub metrics_out: Option<String>,
    /// Output path override (`profile` writes `BENCH_profile.json` by
    /// default).
    pub out: Option<String>,
    /// Print a periodic progress line to stderr during sweeps.
    pub progress: bool,
    /// Profiling stride: time every `k`-th slot in `profile`.
    pub sample_every: u64,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            n: 16,
            slots: 100_000,
            seed: 1,
            points: 10,
            threads: 4,
            csv_dir: None,
            plot: false,
            journal: None,
            resume: false,
            check_every: None,
            cell_timeout: None,
            inject_faults: false,
            retries: 0,
            trace_out: None,
            metrics_out: None,
            out: None,
            progress: false,
            sample_every: 16,
        }
    }
}

const COMMANDS: &[&str] = &[
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "all",
    "ablation",
    "throughput",
    "scaling",
    "fairness",
    "oq-speedup",
    "mixed",
    "record",
    "replay",
    "sweep",
    "profile",
    "check-bench",
];

/// Parse `argv` into `(command, options)`.
pub fn parse(argv: &[String]) -> Result<(String, Options), String> {
    let mut opts = Options::default();
    let mut command = None;
    let mut quick = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--plot" => opts.plot = true,
            "--inject-faults" => opts.inject_faults = true,
            "--progress" => opts.progress = true,
            "--n" | "--slots" | "--seed" | "--points" | "--threads" | "--csv-dir"
            | "--journal" | "--resume" | "--check-every" | "--cell-timeout" | "--retries"
            | "--trace-out" | "--metrics-out" | "--out" | "--sample-every" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("{arg} requires a value"))?;
                match arg.as_str() {
                    "--n" => opts.n = parse_num(arg, value)?,
                    "--slots" => opts.slots = parse_num(arg, value)?,
                    "--seed" => opts.seed = parse_num(arg, value)?,
                    "--points" => opts.points = parse_num(arg, value)?,
                    "--threads" => opts.threads = parse_num(arg, value)?,
                    "--csv-dir" => opts.csv_dir = Some(value.clone()),
                    "--journal" => opts.journal = Some(value.clone()),
                    "--resume" => {
                        opts.journal = Some(value.clone());
                        opts.resume = true;
                    }
                    "--check-every" => opts.check_every = Some(parse_num(arg, value)?),
                    "--cell-timeout" => opts.cell_timeout = Some(parse_num(arg, value)?),
                    "--retries" => opts.retries = parse_num(arg, value)?,
                    "--trace-out" => opts.trace_out = Some(value.clone()),
                    "--metrics-out" => opts.metrics_out = Some(value.clone()),
                    "--out" => opts.out = Some(value.clone()),
                    "--sample-every" => opts.sample_every = parse_num(arg, value)?,
                    _ => unreachable!(),
                }
            }
            cmd if COMMANDS.contains(&cmd) => {
                if command.replace(cmd.to_string()).is_some() {
                    return Err(format!("duplicate command {cmd}"));
                }
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if quick {
        opts.slots = (opts.slots / 10).max(1_000);
    }
    if opts.n == 0 || opts.points == 0 || opts.slots < 10 {
        return Err("n, points and slots must be positive (slots >= 10)".into());
    }
    if opts.check_every == Some(0) {
        return Err("--check-every must be positive".into());
    }
    if opts.cell_timeout == Some(0) {
        return Err("--cell-timeout must be positive".into());
    }
    if opts.sample_every == 0 {
        return Err("--sample-every must be positive".into());
    }
    let command = command.ok_or("missing command")?;
    Ok((command, opts))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value {value} for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults() {
        let (cmd, o) = parse(&argv("fig4")).unwrap();
        assert_eq!(cmd, "fig4");
        assert_eq!(o.n, 16);
        assert_eq!(o.slots, 100_000);
        assert_eq!(o.points, 10);
        assert!(o.csv_dir.is_none());
    }

    #[test]
    fn all_flags() {
        let (cmd, o) =
            parse(&argv("fig8 --n 8 --slots 5000 --seed 9 --points 5 --threads 2 --csv-dir /tmp/x"))
                .unwrap();
        assert_eq!(cmd, "fig8");
        assert_eq!(o.n, 8);
        assert_eq!(o.slots, 5000);
        assert_eq!(o.seed, 9);
        assert_eq!(o.points, 5);
        assert_eq!(o.threads, 2);
        assert_eq!(o.csv_dir.as_deref(), Some("/tmp/x"));
    }

    #[test]
    fn quick_divides_slots() {
        let (_, o) = parse(&argv("fig4 --slots 50000 --quick")).unwrap();
        assert_eq!(o.slots, 5_000);
        // floor at 1000
        let (_, o) = parse(&argv("fig4 --slots 100 --quick")).unwrap();
        assert_eq!(o.slots, 1_000);
    }

    #[test]
    fn errors() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("fig9")).is_err());
        assert!(parse(&argv("fig4 fig5")).is_err());
        assert!(parse(&argv("fig4 --n")).is_err());
        assert!(parse(&argv("fig4 --n zero")).is_err());
        assert!(parse(&argv("fig4 --n 0")).is_err());
        assert!(parse(&argv("sweep --check-every 0")).is_err());
        assert!(parse(&argv("sweep --cell-timeout 0")).is_err());
        assert!(parse(&argv("sweep --resume")).is_err());
    }

    #[test]
    fn sweep_flags() {
        let (cmd, o) = parse(&argv(
            "sweep --journal /tmp/j.txt --check-every 500 --cell-timeout 30 \
             --inject-faults --retries 2",
        ))
        .unwrap();
        assert_eq!(cmd, "sweep");
        assert_eq!(o.journal.as_deref(), Some("/tmp/j.txt"));
        assert!(!o.resume);
        assert_eq!(o.check_every, Some(500));
        assert_eq!(o.cell_timeout, Some(30));
        assert!(o.inject_faults);
        assert_eq!(o.retries, 2);
    }

    #[test]
    fn observability_flags() {
        let (cmd, o) = parse(&argv(
            "sweep --trace-out events.jsonl --metrics-out metrics.json --progress",
        ))
        .unwrap();
        assert_eq!(cmd, "sweep");
        assert_eq!(o.trace_out.as_deref(), Some("events.jsonl"));
        assert_eq!(o.metrics_out.as_deref(), Some("metrics.json"));
        assert!(o.progress);

        let (cmd, o) = parse(&argv("profile --out /tmp/p.json --sample-every 4")).unwrap();
        assert_eq!(cmd, "profile");
        assert_eq!(o.out.as_deref(), Some("/tmp/p.json"));
        assert_eq!(o.sample_every, 4);
        assert!(parse(&argv("profile --sample-every 0")).is_err());

        let (cmd, _) = parse(&argv("check-bench")).unwrap();
        assert_eq!(cmd, "check-bench");
    }

    #[test]
    fn resume_implies_journal() {
        let (_, o) = parse(&argv("sweep --resume /tmp/j.txt")).unwrap();
        assert_eq!(o.journal.as_deref(), Some("/tmp/j.txt"));
        assert!(o.resume);
    }
}
