//! Minimal dependency-free argument parsing.

use fifoms_sim::PacketTraceMode;

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Switch size `N`.
    pub n: usize,
    /// Slots per simulation run.
    pub slots: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Load points per sweep.
    pub points: usize,
    /// Worker threads.
    pub threads: usize,
    /// Directory for CSV output, if requested.
    pub csv_dir: Option<String>,
    /// Render ASCII charts after the tables.
    pub plot: bool,
    /// Checkpoint journal path for the `sweep` command.
    pub journal: Option<String>,
    /// Resume from the journal instead of restarting it.
    pub resume: bool,
    /// Verify fabric invariants each slot, conservation every K slots.
    pub check_every: Option<u64>,
    /// Per-cell wall-clock budget, in seconds.
    pub cell_timeout: Option<u64>,
    /// Inject deterministic fabric faults (crosspoint failures and
    /// output-port flaps) into every cell.
    pub inject_faults: bool,
    /// Retry budget for panicked or timed-out cells.
    pub retries: u32,
    /// Stream per-slot scheduler events as JSONL to this path.
    pub trace_out: Option<String>,
    /// Write aggregated sweep metrics as JSON to this path.
    pub metrics_out: Option<String>,
    /// Output path override (`profile` writes `BENCH_profile.json` by
    /// default).
    pub out: Option<String>,
    /// Print a periodic progress line to stderr during sweeps.
    pub progress: bool,
    /// Profiling stride: time every `k`-th slot in `profile`.
    pub sample_every: u64,
    /// Packet-level flight recorder mode for traced sweeps.
    pub packet_trace: PacketTraceMode,
    /// Positional input file (`analyze <trace.jsonl>`).
    pub input: Option<String>,
    /// Second trace to diff against (`analyze --compare`).
    pub compare: Option<String>,
    /// Write the analysis report as JSON to this path (`analyze --json`).
    pub json_out: Option<String>,
    /// Baseline bench artifact for the `check-bench` regression gate.
    pub baseline: Option<String>,
    /// Current bench artifact compared against `--baseline`.
    pub current: Option<String>,
    /// Allowed fractional slots/sec regression before the gate fails.
    pub tolerance: f64,
    /// Run the shortened CI chaos campaign (`chaos --smoke`).
    pub smoke: bool,
    /// Scenarios per chaos campaign.
    pub scenarios: usize,
    /// Run a single chaos scenario from a `name=value,...` spec.
    pub scenario: Option<String>,
    /// Regenerate the lint baseline instead of gating (`lint
    /// --write-baseline`).
    pub write_baseline: bool,
    /// Print the documentation for one lint rule and exit (`lint
    /// --explain R7`).
    pub explain: Option<String>,
    /// Append a `fifoms-lint-stats-v1` rule-hit row to the results
    /// ledger (`lint --stats`).
    pub stats: bool,
    /// Per-VOQ address-cell cap for `overload` (`0` = unbounded).
    pub voq_cap: usize,
    /// Per-input aggregate copy cap for `overload` (`0` = unbounded).
    pub input_cap: usize,
    /// Stream windowed telemetry as `fifoms-timeseries-v1` JSONL here.
    pub timeseries_out: Option<String>,
    /// Publish the live telemetry snapshot JSON document here.
    pub snapshot_out: Option<String>,
    /// Publish Prometheus-style text exposition here.
    pub prom_out: Option<String>,
    /// Telemetry window stride in slots.
    pub window: u64,
    /// Render one frame and exit (`top --once`).
    pub once: bool,
    /// Refresh period for the live `top` view, in milliseconds.
    pub interval_ms: u64,
    /// Validate/show the windowed time-series alongside the snapshot
    /// (`top --timeseries <file.jsonl>`).
    pub timeseries: Option<String>,
    /// Append a bench-ledger row to this JSONL path (`check-bench
    /// --ledger`).
    pub ledger: Option<String>,
    /// Free-form note stored with the ledger row (e.g. a commit id).
    pub ledger_note: Option<String>,
    /// Checkpoint/WAL state directory for the supervised `serve` run.
    pub state_dir: Option<String>,
    /// Checkpoint interval in slots for `serve`.
    pub checkpoint_every: u64,
    /// Crash-injection hook: kill the first `serve` worker attempt at
    /// this slot (testing/demo).
    pub die_at: Option<u64>,
    /// Supervisor restart budget for `serve`.
    pub max_restarts: u32,
    /// Per-slot arrival probability of the `serve` workload.
    pub load: f64,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            n: 16,
            slots: 100_000,
            seed: 1,
            points: 10,
            threads: 4,
            csv_dir: None,
            plot: false,
            journal: None,
            resume: false,
            check_every: None,
            cell_timeout: None,
            inject_faults: false,
            retries: 0,
            trace_out: None,
            metrics_out: None,
            out: None,
            progress: false,
            sample_every: 16,
            packet_trace: PacketTraceMode::Off,
            input: None,
            compare: None,
            json_out: None,
            baseline: None,
            current: None,
            tolerance: 0.15,
            smoke: false,
            scenarios: 12,
            scenario: None,
            write_baseline: false,
            explain: None,
            stats: false,
            voq_cap: 16,
            input_cap: 64,
            timeseries_out: None,
            snapshot_out: None,
            prom_out: None,
            window: 1_000,
            once: false,
            interval_ms: 500,
            timeseries: None,
            ledger: None,
            ledger_note: None,
            state_dir: None,
            checkpoint_every: 10_000,
            die_at: None,
            max_restarts: 3,
            load: 0.6,
        }
    }
}

const COMMANDS: &[&str] = &[
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "all",
    "ablation",
    "throughput",
    "scaling",
    "fairness",
    "oq-speedup",
    "mixed",
    "record",
    "replay",
    "sweep",
    "profile",
    "check-bench",
    "analyze",
    "chaos",
    "lint",
    "overload",
    "perf-diff",
    "alloc-audit",
    "top",
    "serve",
];

/// Parse `argv` into `(command, options)`.
pub fn parse(argv: &[String]) -> Result<(String, Options), String> {
    let mut opts = Options::default();
    let mut command = None;
    let mut quick = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--smoke" => opts.smoke = true,
            "--write-baseline" => opts.write_baseline = true,
            "--stats" => opts.stats = true,
            "--plot" => opts.plot = true,
            "--inject-faults" => opts.inject_faults = true,
            "--progress" => opts.progress = true,
            "--once" => opts.once = true,
            "--n" | "--slots" | "--seed" | "--points" | "--threads" | "--csv-dir"
            | "--journal" | "--resume" | "--check-every" | "--cell-timeout" | "--retries"
            | "--trace-out" | "--metrics-out" | "--out" | "--sample-every" | "--packet-trace"
            | "--compare" | "--json" | "--baseline" | "--current" | "--tolerance"
            | "--scenarios" | "--scenario" | "--voq-cap" | "--input-cap"
            | "--timeseries-out" | "--snapshot-out" | "--prom-out" | "--window"
            | "--interval-ms" | "--timeseries" | "--ledger" | "--ledger-note"
            | "--state-dir" | "--checkpoint-every" | "--die-at-slot" | "--max-restarts"
            | "--load" | "--explain" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("{arg} requires a value"))?;
                match arg.as_str() {
                    "--n" => opts.n = parse_num(arg, value)?,
                    "--slots" => opts.slots = parse_num(arg, value)?,
                    "--seed" => opts.seed = parse_num(arg, value)?,
                    "--points" => opts.points = parse_num(arg, value)?,
                    "--threads" => opts.threads = parse_num(arg, value)?,
                    "--csv-dir" => opts.csv_dir = Some(value.clone()),
                    "--journal" => opts.journal = Some(value.clone()),
                    "--resume" => {
                        opts.journal = Some(value.clone());
                        opts.resume = true;
                    }
                    "--check-every" => opts.check_every = Some(parse_num(arg, value)?),
                    "--cell-timeout" => opts.cell_timeout = Some(parse_num(arg, value)?),
                    "--retries" => opts.retries = parse_num(arg, value)?,
                    "--trace-out" => opts.trace_out = Some(value.clone()),
                    "--metrics-out" => opts.metrics_out = Some(value.clone()),
                    "--out" => opts.out = Some(value.clone()),
                    "--sample-every" => opts.sample_every = parse_num(arg, value)?,
                    "--packet-trace" => opts.packet_trace = parse_packet_trace(value)?,
                    "--compare" => opts.compare = Some(value.clone()),
                    "--json" => opts.json_out = Some(value.clone()),
                    "--baseline" => opts.baseline = Some(value.clone()),
                    "--current" => opts.current = Some(value.clone()),
                    "--tolerance" => opts.tolerance = parse_num(arg, value)?,
                    "--scenarios" => opts.scenarios = parse_num(arg, value)?,
                    "--scenario" => opts.scenario = Some(value.clone()),
                    "--voq-cap" => opts.voq_cap = parse_num(arg, value)?,
                    "--input-cap" => opts.input_cap = parse_num(arg, value)?,
                    "--timeseries-out" => opts.timeseries_out = Some(value.clone()),
                    "--snapshot-out" => opts.snapshot_out = Some(value.clone()),
                    "--prom-out" => opts.prom_out = Some(value.clone()),
                    "--window" => opts.window = parse_num(arg, value)?,
                    "--interval-ms" => opts.interval_ms = parse_num(arg, value)?,
                    "--timeseries" => opts.timeseries = Some(value.clone()),
                    "--ledger" => opts.ledger = Some(value.clone()),
                    "--ledger-note" => opts.ledger_note = Some(value.clone()),
                    "--state-dir" => opts.state_dir = Some(value.clone()),
                    "--checkpoint-every" => opts.checkpoint_every = parse_num(arg, value)?,
                    "--die-at-slot" => opts.die_at = Some(parse_num(arg, value)?),
                    "--max-restarts" => opts.max_restarts = parse_num(arg, value)?,
                    "--load" => opts.load = parse_num(arg, value)?,
                    "--explain" => opts.explain = Some(value.clone()),
                    _ => unreachable!(),
                }
            }
            cmd if COMMANDS.contains(&cmd) => {
                if command.replace(cmd.to_string()).is_some() {
                    return Err(format!("duplicate command {cmd}"));
                }
            }
            // `analyze` and `top` take their input file as a positional
            // argument, like `analyze trace.jsonl` / `top snapshot.json`.
            path if matches!(command.as_deref(), Some("analyze") | Some("top"))
                && opts.input.is_none()
                && !path.starts_with('-') =>
            {
                opts.input = Some(path.to_string());
            }
            // `perf-diff` takes its two profile artifacts positionally:
            // `perf-diff <baseline.json> <current.json>`.
            path if command.as_deref() == Some("perf-diff")
                && opts.current.is_none()
                && !path.starts_with('-') =>
            {
                if opts.baseline.is_none() {
                    opts.baseline = Some(path.to_string());
                } else {
                    opts.current = Some(path.to_string());
                }
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if quick {
        opts.slots = (opts.slots / 10).max(1_000);
    }
    if opts.n == 0 || opts.points == 0 || opts.slots < 10 {
        return Err("n, points and slots must be positive (slots >= 10)".into());
    }
    if opts.check_every == Some(0) {
        return Err("--check-every must be positive".into());
    }
    if opts.cell_timeout == Some(0) {
        return Err("--cell-timeout must be positive".into());
    }
    if opts.sample_every == 0 {
        return Err("--sample-every must be positive".into());
    }
    if !opts.tolerance.is_finite() || opts.tolerance <= 0.0 {
        return Err("--tolerance must be a positive number".into());
    }
    if opts.scenarios == 0 {
        return Err("--scenarios must be positive".into());
    }
    if opts.window == 0 {
        return Err("--window must be positive".into());
    }
    if opts.interval_ms == 0 {
        return Err("--interval-ms must be positive".into());
    }
    let command = command.ok_or("missing command")?;
    if command == "analyze" && opts.input.is_none() {
        return Err("analyze requires a trace file: analyze <trace.jsonl>".into());
    }
    if command == "top" && opts.input.is_none() {
        return Err("top requires a snapshot file: top <snapshot.json>".into());
    }
    if command == "overload" && (opts.voq_cap == 0 || opts.input_cap == 0) {
        return Err("overload requires finite --voq-cap and --input-cap".into());
    }
    if command == "serve" {
        if opts.state_dir.is_none() {
            return Err("serve requires a state directory: serve --state-dir <DIR>".into());
        }
        if opts.checkpoint_every == 0 {
            return Err("--checkpoint-every must be positive".into());
        }
        if !opts.load.is_finite() || opts.load <= 0.0 || opts.load > 1.0 {
            return Err("--load must be a probability in (0, 1]".into());
        }
    }
    if command == "perf-diff" && (opts.baseline.is_none() || opts.current.is_none()) {
        return Err(
            "perf-diff requires two profile artifacts: perf-diff <baseline.json> <current.json>"
                .into(),
        );
    }
    Ok((command, opts))
}

/// Parse a `--packet-trace` mode: `off`, `all`, `1/K` (keep every K-th
/// packet) or `ring:C` (retain the last C events).
fn parse_packet_trace(value: &str) -> Result<PacketTraceMode, String> {
    let bad = || format!("invalid --packet-trace {value:?} (expected off, all, 1/K or ring:C)");
    match value {
        "off" => Ok(PacketTraceMode::Off),
        "all" => Ok(PacketTraceMode::All),
        _ => {
            if let Some(k) = value.strip_prefix("1/") {
                let k: u64 = k.parse().map_err(|_| bad())?;
                if k == 0 {
                    return Err(bad());
                }
                Ok(PacketTraceMode::OneIn(k))
            } else if let Some(cap) = value.strip_prefix("ring:") {
                let cap: usize = cap.parse().map_err(|_| bad())?;
                if cap == 0 {
                    return Err(bad());
                }
                Ok(PacketTraceMode::Ring(cap))
            } else {
                Err(bad())
            }
        }
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value {value} for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults() {
        let (cmd, o) = parse(&argv("fig4")).unwrap();
        assert_eq!(cmd, "fig4");
        assert_eq!(o.n, 16);
        assert_eq!(o.slots, 100_000);
        assert_eq!(o.points, 10);
        assert!(o.csv_dir.is_none());
    }

    #[test]
    fn all_flags() {
        let (cmd, o) =
            parse(&argv("fig8 --n 8 --slots 5000 --seed 9 --points 5 --threads 2 --csv-dir /tmp/x"))
                .unwrap();
        assert_eq!(cmd, "fig8");
        assert_eq!(o.n, 8);
        assert_eq!(o.slots, 5000);
        assert_eq!(o.seed, 9);
        assert_eq!(o.points, 5);
        assert_eq!(o.threads, 2);
        assert_eq!(o.csv_dir.as_deref(), Some("/tmp/x"));
    }

    #[test]
    fn quick_divides_slots() {
        let (_, o) = parse(&argv("fig4 --slots 50000 --quick")).unwrap();
        assert_eq!(o.slots, 5_000);
        // floor at 1000
        let (_, o) = parse(&argv("fig4 --slots 100 --quick")).unwrap();
        assert_eq!(o.slots, 1_000);
    }

    #[test]
    fn errors() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("fig9")).is_err());
        assert!(parse(&argv("fig4 fig5")).is_err());
        assert!(parse(&argv("fig4 --n")).is_err());
        assert!(parse(&argv("fig4 --n zero")).is_err());
        assert!(parse(&argv("fig4 --n 0")).is_err());
        assert!(parse(&argv("sweep --check-every 0")).is_err());
        assert!(parse(&argv("sweep --cell-timeout 0")).is_err());
        assert!(parse(&argv("sweep --resume")).is_err());
    }

    #[test]
    fn sweep_flags() {
        let (cmd, o) = parse(&argv(
            "sweep --journal /tmp/j.txt --check-every 500 --cell-timeout 30 \
             --inject-faults --retries 2",
        ))
        .unwrap();
        assert_eq!(cmd, "sweep");
        assert_eq!(o.journal.as_deref(), Some("/tmp/j.txt"));
        assert!(!o.resume);
        assert_eq!(o.check_every, Some(500));
        assert_eq!(o.cell_timeout, Some(30));
        assert!(o.inject_faults);
        assert_eq!(o.retries, 2);
    }

    #[test]
    fn observability_flags() {
        let (cmd, o) = parse(&argv(
            "sweep --trace-out events.jsonl --metrics-out metrics.json --progress",
        ))
        .unwrap();
        assert_eq!(cmd, "sweep");
        assert_eq!(o.trace_out.as_deref(), Some("events.jsonl"));
        assert_eq!(o.metrics_out.as_deref(), Some("metrics.json"));
        assert!(o.progress);

        let (cmd, o) = parse(&argv("profile --out /tmp/p.json --sample-every 4")).unwrap();
        assert_eq!(cmd, "profile");
        assert_eq!(o.out.as_deref(), Some("/tmp/p.json"));
        assert_eq!(o.sample_every, 4);
        assert!(parse(&argv("profile --sample-every 0")).is_err());

        let (cmd, _) = parse(&argv("check-bench")).unwrap();
        assert_eq!(cmd, "check-bench");
    }

    #[test]
    fn analyze_takes_a_positional_trace() {
        let (cmd, o) = parse(&argv("analyze trace.jsonl")).unwrap();
        assert_eq!(cmd, "analyze");
        assert_eq!(o.input.as_deref(), Some("trace.jsonl"));

        let (_, o) =
            parse(&argv("analyze a.jsonl --compare b.jsonl --json out.json")).unwrap();
        assert_eq!(o.input.as_deref(), Some("a.jsonl"));
        assert_eq!(o.compare.as_deref(), Some("b.jsonl"));
        assert_eq!(o.json_out.as_deref(), Some("out.json"));

        // Missing trace, stray second positional, positional without the
        // command.
        assert!(parse(&argv("analyze")).is_err());
        assert!(parse(&argv("analyze a.jsonl b.jsonl")).is_err());
        assert!(parse(&argv("trace.jsonl analyze")).is_err());
        // Commands still cannot be repeated.
        assert!(parse(&argv("fig4 fig5")).is_err());
    }

    #[test]
    fn packet_trace_modes() {
        use fifoms_sim::PacketTraceMode;
        let (_, o) = parse(&argv("sweep --packet-trace all")).unwrap();
        assert_eq!(o.packet_trace, PacketTraceMode::All);
        let (_, o) = parse(&argv("sweep --packet-trace 1/8")).unwrap();
        assert_eq!(o.packet_trace, PacketTraceMode::OneIn(8));
        let (_, o) = parse(&argv("sweep --packet-trace ring:4096")).unwrap();
        assert_eq!(o.packet_trace, PacketTraceMode::Ring(4096));
        let (_, o) = parse(&argv("sweep --packet-trace off")).unwrap();
        assert_eq!(o.packet_trace, PacketTraceMode::Off);
        for bad in ["1/0", "ring:0", "some", "ring:", "1/x"] {
            assert!(
                parse(&argv(&format!("sweep --packet-trace {bad}"))).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn check_bench_gate_flags() {
        let (cmd, o) = parse(&argv(
            "check-bench --baseline base.json --current cur.json --tolerance 0.5",
        ))
        .unwrap();
        assert_eq!(cmd, "check-bench");
        assert_eq!(o.baseline.as_deref(), Some("base.json"));
        assert_eq!(o.current.as_deref(), Some("cur.json"));
        assert_eq!(o.tolerance, 0.5);
        assert!(parse(&argv("check-bench --tolerance 0")).is_err());
        assert!(parse(&argv("check-bench --tolerance -0.1")).is_err());
    }

    #[test]
    fn perf_diff_takes_two_positionals() {
        let (cmd, o) = parse(&argv("perf-diff base.json cur.json")).unwrap();
        assert_eq!(cmd, "perf-diff");
        assert_eq!(o.baseline.as_deref(), Some("base.json"));
        assert_eq!(o.current.as_deref(), Some("cur.json"));

        let (_, o) = parse(&argv("perf-diff base.json cur.json --tolerance 0.3")).unwrap();
        assert_eq!(o.tolerance, 0.3);

        // Missing artifacts, stray third positional.
        assert!(parse(&argv("perf-diff")).is_err());
        assert!(parse(&argv("perf-diff base.json")).is_err());
        assert!(parse(&argv("perf-diff a.json b.json c.json")).is_err());
    }

    #[test]
    fn alloc_audit_parses() {
        let (cmd, o) = parse(&argv("alloc-audit --n 8 --slots 4000")).unwrap();
        assert_eq!(cmd, "alloc-audit");
        assert_eq!(o.n, 8);
        assert_eq!(o.slots, 4000);
    }

    #[test]
    fn chaos_flags() {
        let (cmd, o) = parse(&argv("chaos --smoke --seed 7")).unwrap();
        assert_eq!(cmd, "chaos");
        assert!(o.smoke);
        assert_eq!(o.seed, 7);
        assert_eq!(o.scenarios, 12);

        let (_, o) = parse(&argv(
            "chaos --scenarios 3 --scenario crosspoint_faults=2,retry_budget=1",
        ))
        .unwrap();
        assert_eq!(o.scenarios, 3);
        assert_eq!(
            o.scenario.as_deref(),
            Some("crosspoint_faults=2,retry_budget=1")
        );

        assert!(parse(&argv("chaos --scenarios 0")).is_err());
        assert!(parse(&argv("chaos --scenario")).is_err());
    }

    #[test]
    fn overload_flags() {
        let (cmd, o) = parse(&argv("overload --n 8 --points 4")).unwrap();
        assert_eq!(cmd, "overload");
        assert_eq!(o.voq_cap, 16);
        assert_eq!(o.input_cap, 64);
        let (_, o) = parse(&argv(
            "overload --voq-cap 4 --input-cap 32 --json loss.json",
        ))
        .unwrap();
        assert_eq!(o.voq_cap, 4);
        assert_eq!(o.input_cap, 32);
        assert_eq!(o.json_out.as_deref(), Some("loss.json"));
        assert!(parse(&argv("overload --voq-cap 0")).is_err());
        assert!(parse(&argv("overload --input-cap 0")).is_err());
    }

    #[test]
    fn telemetry_flags() {
        let (cmd, o) = parse(&argv(
            "sweep --timeseries-out ts.jsonl --snapshot-out snap.json \
             --prom-out metrics.prom --window 200",
        ))
        .unwrap();
        assert_eq!(cmd, "sweep");
        assert_eq!(o.timeseries_out.as_deref(), Some("ts.jsonl"));
        assert_eq!(o.snapshot_out.as_deref(), Some("snap.json"));
        assert_eq!(o.prom_out.as_deref(), Some("metrics.prom"));
        assert_eq!(o.window, 200);
        assert!(parse(&argv("sweep --window 0")).is_err());

        let (_, o) = parse(&argv("chaos --smoke --snapshot-out s.json")).unwrap();
        assert_eq!(o.snapshot_out.as_deref(), Some("s.json"));
        assert_eq!(o.window, 1_000, "window defaults to 1000 slots");
    }

    #[test]
    fn top_takes_a_positional_snapshot() {
        let (cmd, o) = parse(&argv("top snap.json")).unwrap();
        assert_eq!(cmd, "top");
        assert_eq!(o.input.as_deref(), Some("snap.json"));
        assert!(!o.once);
        assert_eq!(o.interval_ms, 500);

        let (_, o) = parse(&argv("top snap.json --once --timeseries ts.jsonl")).unwrap();
        assert!(o.once);
        assert_eq!(o.timeseries.as_deref(), Some("ts.jsonl"));

        let (_, o) = parse(&argv("top snap.json --interval-ms 100")).unwrap();
        assert_eq!(o.interval_ms, 100);

        assert!(parse(&argv("top")).is_err(), "top needs a snapshot path");
        assert!(parse(&argv("top a.json --interval-ms 0")).is_err());
    }

    #[test]
    fn check_bench_ledger_flags() {
        let (cmd, o) = parse(&argv(
            "check-bench --ledger results/bench_ledger.jsonl --ledger-note abc123",
        ))
        .unwrap();
        assert_eq!(cmd, "check-bench");
        assert_eq!(o.ledger.as_deref(), Some("results/bench_ledger.jsonl"));
        assert_eq!(o.ledger_note.as_deref(), Some("abc123"));
        assert!(parse(&argv("check-bench --ledger")).is_err());
    }

    #[test]
    fn lint_flags() {
        let (cmd, o) = parse(&argv("lint --explain R7")).unwrap();
        assert_eq!(cmd, "lint");
        assert_eq!(o.explain.as_deref(), Some("R7"));
        assert!(!o.stats);

        let (_, o) = parse(&argv("lint --stats --ledger results/l.jsonl")).unwrap();
        assert!(o.stats);
        assert_eq!(o.ledger.as_deref(), Some("results/l.jsonl"));

        assert!(parse(&argv("lint --explain")).is_err());
    }

    #[test]
    fn resume_implies_journal() {
        let (_, o) = parse(&argv("sweep --resume /tmp/j.txt")).unwrap();
        assert_eq!(o.journal.as_deref(), Some("/tmp/j.txt"));
        assert!(o.resume);
    }
}
