//! The `chaos` subcommand: seeded egress-fault campaigns with automatic
//! reproducer shrinking.
//!
//! A campaign runs [`campaign_scenarios`] plus the finite-buffer
//! [`buffer_pressure_scenarios`] through the armoured stack
//! (`CheckedSwitch` outside `FaultyFabric` outside the FIFOMS switch),
//! prints one table row per scenario with its recovery metrics, and —
//! when a scenario fails — delta-debugs it with [`shrink_scenario`] down
//! to a minimal `--scenario` spec printed as a ready-to-run reproducer.
//! Every cell runs under a wall-clock watchdog ([`run_guarded`]) so a
//! livelocked buffer-pressure cell times out and fails the campaign
//! instead of hanging CI; `--cell-timeout` overrides the limit. The
//! process exits nonzero if any scenario fails or times out, which is
//! what the CI smoke stage keys on.

use fifoms_sim::{
    buffer_pressure_scenarios, campaign_scenarios, run_corruption_campaign, run_guarded,
    run_scenario, run_scenario_observed, shrink_scenario_guarded, ChaosOutcome, ChaosScenario,
    CheckpointFault, CorruptionOutcome,
};
use fifoms_types::SimError;

use crate::args::Options;
use crate::topcmd;

/// Entry point for `fifoms-repro chaos`.
pub fn chaos(opts: &Options) -> Result<(), SimError> {
    let scenarios = match &opts.scenario {
        Some(spec) => vec![ChaosScenario::parse(spec)?],
        None => {
            let mut list = campaign_scenarios(opts.seed, opts.scenarios, opts.smoke);
            list.extend(buffer_pressure_scenarios(
                opts.seed,
                (opts.scenarios / 2).max(3),
                opts.smoke,
            ));
            list
        }
    };
    let label = if opts.scenario.is_some() {
        "scenario"
    } else if opts.smoke {
        "smoke campaign"
    } else {
        "campaign"
    };
    // Wall-clock budget per cell: generous defaults (a healthy cell
    // finishes in well under a second) so only a genuine wedge trips it.
    let limit_millis = opts
        .cell_timeout
        .map_or(if opts.smoke { 60_000 } else { 600_000 }, |s| s * 1_000);
    println!(
        "chaos {label}: {} scenario(s), seed {}, cell watchdog {}s",
        scenarios.len(),
        opts.seed,
        limit_millis / 1_000
    );
    println!();
    print_header();

    // Live telemetry, when requested: every scenario streams windowed
    // counters under its own `chaos#k` scope (the spec is Arc-based, so
    // the per-cell clones share one sink and one snapshot bus). Shrink
    // probes below stay unobserved — reproducers must not depend on the
    // observer being attached.
    let telemetry = topcmd::telemetry_spec(opts)?;
    let mut outcomes: Vec<ChaosOutcome> = Vec::with_capacity(scenarios.len());
    let mut timeouts: Vec<ChaosScenario> = Vec::new();
    for (k, sc) in scenarios.iter().enumerate() {
        let cell = *sc;
        let cell_telemetry = telemetry.clone();
        let scope = format!("chaos#{k}");
        match run_guarded(limit_millis, move || {
            run_scenario_observed(&cell, cell_telemetry.as_ref(), &scope)
        }) {
            Ok(out) => {
                print_row(k, &out);
                outcomes.push(out);
            }
            Err(ms) => {
                print_timeout_row(k, sc, ms);
                timeouts.push(*sc);
            }
        }
    }
    println!();
    print_recovery_summary(&outcomes);
    topcmd::report_telemetry_outputs(opts);

    // Checkpoint-corruption campaign (skipped in single-`--scenario`
    // reproducer mode): crash a checkpointed run between checkpoints,
    // damage the newest checkpoint file one fault mode at a time, and
    // prove recovery falls back to the previous valid checkpoint and
    // still reproduces the uninterrupted run bit-for-bit.
    let mut corruption_failures = 0usize;
    if opts.scenario.is_none() {
        println!();
        println!(
            "checkpoint-corruption campaign: {} fault mode(s), seed {}",
            CheckpointFault::ALL.len(),
            opts.seed
        );
        let dir = std::env::temp_dir().join(format!(
            "fifoms-chaos-corruption-{}",
            std::process::id()
        ));
        let cells = run_corruption_campaign(opts.seed, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        for cell in &cells {
            print_corruption_row(cell);
            if !cell.ok() {
                corruption_failures += 1;
            }
        }
    }

    let failures: Vec<&ChaosOutcome> = outcomes.iter().filter(|o| o.failed()).collect();
    if failures.is_empty() && timeouts.is_empty() && corruption_failures == 0 {
        println!();
        println!(
            "all {} scenario(s) ok: zero invariant violations, zero unreconciled fanout counters",
            outcomes.len()
        );
        return Ok(());
    }

    for out in &failures {
        shrink_and_report(out, limit_millis);
    }
    for sc in &timeouts {
        shrink_and_report_timeout(sc, limit_millis);
    }
    Err(SimError::Usage(format!(
        "chaos {label} FAILED: {}/{} scenario(s) bad ({} timed out), \
         {corruption_failures} corruption cell(s) bad",
        failures.len() + timeouts.len(),
        scenarios.len(),
        timeouts.len()
    )))
}

fn print_header() {
    println!(
        "{:>3}  {:<12}  {:>9} {:>9} {:>7} {:>7}  {:>6} {:>6} {:>5}  {:>7} {:>6} {:>6}  {:>7}  spec",
        "#",
        "status",
        "admitted",
        "delivered",
        "drops",
        "shed", // admission drops (finite buffers)
        "killed",
        "recov",
        "lost",
        "ttr", // mean time-to-recover
        "sb-p", // scoreboard precision
        "sb-r", // scoreboard recall
        "slots",
    );
}

fn print_row(k: usize, out: &ChaosOutcome) {
    let r = &out.recovery;
    let spec = out.scenario.cli_spec();
    println!(
        "{:>3}  {:<12}  {:>9} {:>9} {:>7} {:>7}  {:>6} {:>6} {:>5}  {:>7.1} {:>6.2} {:>6.2}  {:>7}  {}",
        k,
        out.status(),
        out.admitted_copies,
        out.delivered_copies,
        out.reconciled_drops,
        out.admission_drops,
        r.copies_killed,
        r.copies_recovered,
        r.copies_lost,
        r.mean_time_to_recover,
        r.scoreboard_precision,
        r.scoreboard_recall,
        out.slots_run,
        if spec.is_empty() { "(defaults)" } else { &spec },
    );
}

fn print_timeout_row(k: usize, sc: &ChaosScenario, limit_millis: u64) {
    let spec = sc.cli_spec();
    println!(
        "{:>3}  {:<12}  watchdog fired after {}ms — cell abandoned  {}",
        k,
        "TIMEOUT",
        limit_millis,
        if spec.is_empty() { "(defaults)" } else { &spec },
    );
}

fn print_corruption_row(cell: &CorruptionOutcome) {
    let verdict = if cell.ok() { "ok" } else { "FAILED" };
    let resumed = cell
        .resumed_seq
        .map_or_else(|| "-".to_string(), |s| s.to_string());
    let detail = cell
        .detail
        .as_deref()
        .map(|d| format!(" — {d}"))
        .unwrap_or_default();
    println!(
        "  {:<12} {:<8} resumed from checkpoint seq {} (expected {}){}",
        cell.fault.name(),
        verdict,
        resumed,
        cell.expected_seq,
        detail,
    );
}

/// Campaign-wide recovery aggregates (copy counts sum; latency and
/// scoreboard figures average over the scenarios that measured them).
fn print_recovery_summary(outcomes: &[ChaosOutcome]) {
    let killed: u64 = outcomes.iter().map(|o| o.recovery.copies_killed).sum();
    let recovered: u64 = outcomes.iter().map(|o| o.recovery.copies_recovered).sum();
    let lost: u64 = outcomes.iter().map(|o| o.recovery.copies_lost).sum();
    let shed: u64 = outcomes.iter().map(|o| o.admission_drops).sum();
    let max_ttr = outcomes
        .iter()
        .map(|o| o.recovery.max_time_to_recover)
        .max()
        .unwrap_or(0);
    let with_recovery: Vec<&ChaosOutcome> = outcomes
        .iter()
        .filter(|o| o.recovery.copies_recovered > 0)
        .collect();
    let mean_ttr = if with_recovery.is_empty() {
        0.0
    } else {
        with_recovery
            .iter()
            .map(|o| o.recovery.mean_time_to_recover)
            .sum::<f64>()
            / with_recovery.len() as f64
    };
    println!(
        "recovery: {killed} copies killed, {recovered} recovered \
         (mean ttr {mean_ttr:.1} slots, max {max_ttr}), {lost} escalated to drops, \
         {shed} copies shed at admission"
    );
}

/// Shrink one failing scenario and print the minimal reproducer.
///
/// The oracle runs under the same `--cell-timeout` watchdog as the
/// campaign cells, re-armed on every shrink step: a shrink candidate of
/// a *failing* scenario can still wedge (stripping the fault that broke
/// a livelock), and an unguarded probe would hang the whole report.
fn shrink_and_report(out: &ChaosOutcome, limit_millis: u64) {
    println!();
    println!(
        "scenario FAILED [{}]: {}",
        out.status(),
        out.violation.as_deref().unwrap_or("(no invariant message)")
    );
    println!("  shrinking (guarded probes) ...");
    let (min, runs) = shrink_scenario_guarded(&out.scenario, limit_millis, run_scenario);
    print_reproducer(&min, runs);
}

/// Shrink a timed-out scenario — same guarded oracle; a probe that
/// times out again counts as a reproduction of the hang.
fn shrink_and_report_timeout(sc: &ChaosScenario, limit_millis: u64) {
    println!();
    println!("scenario TIMED OUT: watchdog fired after {limit_millis}ms");
    println!("  shrinking (guarded probes) ...");
    let (min, runs) = shrink_scenario_guarded(sc, limit_millis, run_scenario);
    print_reproducer(&min, runs);
}

fn print_reproducer(min: &ChaosScenario, runs: usize) {
    let spec = min.cli_spec();
    println!(
        "  minimal reproducer after {runs} probe run(s), {} non-default parameter(s):",
        min.non_default_params().len()
    );
    if spec.is_empty() {
        println!("    fifoms-repro chaos --scenario \"\"   # default scenario already fails");
    } else {
        println!("    fifoms-repro chaos --scenario {spec}");
    }
}
