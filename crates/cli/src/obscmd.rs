//! Observability commands: the self-profiling harness (`profile`) and
//! benchmark-artifact validation (`check-bench`).

use fifoms_obs::{schema, Json};
use fifoms_sim::{profile_run, RunConfig, SwitchKind, TrafficKind};
use fifoms_types::SimError;

use crate::args::Options;

fn io_err(path: &str, e: impl std::fmt::Display) -> SimError {
    SimError::Usage(format!("{path}: {e}"))
}

/// `fifoms-repro profile`: run the paper's reference workload (FIFOMS,
/// Bernoulli b=0.2 at load 0.6) once, timing the engine's four phases on
/// every `--sample-every`-th slot, and write the breakdown as
/// `BENCH_profile.json` (override with `--out`). The profiled run takes
/// the ordinary engine path, so the measurement itself is representative.
pub fn profile(opts: &Options) -> Result<(), SimError> {
    let out = opts.out.as_deref().unwrap_or("BENCH_profile.json");
    let (load, b) = (0.6, 0.2);
    let mut sw = SwitchKind::Fifoms.build(opts.n, opts.seed);
    let mut tr =
        TrafficKind::bernoulli_at_load(load, b, opts.n).try_build(opts.n, opts.seed ^ 0xBEEF)?;
    let cfg = RunConfig::paper(opts.slots);
    let report = profile_run(sw.as_mut(), tr.as_mut(), &cfg, opts.sample_every)?;

    let doc = report.to_json();
    std::fs::write(out, format!("{doc}\n")).map_err(|e| io_err(out, e))?;

    println!(
        "profile: {} under {} ({} slots, phases sampled every {} slots)",
        report.result.switch_name, report.result.traffic_name, report.result.slots_run,
        report.sample_every
    );
    println!(
        "  wall time {:.3} s | {:.0} slots/s | throughput {:.4}",
        report.total_ns as f64 / 1e9,
        report.slots_per_sec(),
        report.result.throughput
    );
    let mut table = fifoms_sim::report::Table::new(vec![
        "phase".to_string(),
        "calls".to_string(),
        "exclusive-ms".to_string(),
        "share".to_string(),
    ]);
    let total_excl: u64 = report.profiler.phases().map(|(_, s)| s.exclusive_ns).sum();
    for (phase, s) in report.profiler.phases() {
        let share = if total_excl > 0 {
            100.0 * s.exclusive_ns as f64 / total_excl as f64
        } else {
            0.0
        };
        table.push_row(vec![
            phase.to_string(),
            format!("{}", s.calls),
            format!("{:.3}", s.exclusive_ns as f64 / 1e6),
            format!("{share:.1}%"),
        ]);
    }
    print!("{}", table.render());
    println!("wrote {out}");
    Ok(())
}

/// `fifoms-repro check-bench`: validate whichever benchmark artifacts
/// exist in the working directory against their checked-in schemas.
/// Fails if an artifact is malformed — or if none exist at all.
///
/// With `--baseline PATH` it instead runs the throughput regression
/// gate: the current core-bench artifact (`--current`, default
/// `BENCH_core.json`) is compared row-by-row against the baseline, and
/// the command fails if any `(switch, load)` cell lost more than
/// `--tolerance` (default 15%) of its slots/sec.
pub fn check_bench(opts: &Options) -> Result<(), SimError> {
    if let Some(baseline) = opts.baseline.as_deref() {
        let current = opts.current.as_deref().unwrap_or("BENCH_core.json");
        return regression_gate(baseline, current, opts.tolerance);
    }
    let core_path = opts.current.as_deref().unwrap_or("BENCH_core.json");
    let pairs = [
        ("BENCH_profile.json", "schemas/bench_profile.schema.json"),
        (core_path, "schemas/bench_core.schema.json"),
    ];
    let mut checked = 0;
    for (doc_path, schema_path) in pairs {
        if !std::path::Path::new(doc_path).exists() {
            println!("check-bench: {doc_path} absent, skipped");
            continue;
        }
        let doc = read_json(doc_path)?;
        let schema_doc = read_json(schema_path)?;
        schema::validate(&doc, &schema_doc)
            .map_err(|e| SimError::Usage(format!("{doc_path} violates {schema_path}: {e}")))?;
        println!("check-bench: {doc_path} conforms to {schema_path}");
        checked += 1;
    }
    if checked == 0 {
        return Err(SimError::Usage(
            "check-bench: no BENCH_*.json artifacts found (run `fifoms-repro profile` \
             and `cargo bench -p fifoms-bench --bench core` first)"
                .into(),
        ));
    }
    Ok(())
}

/// One `(switch, load) -> slots/sec` row of a core-bench artifact.
fn bench_rows(path: &str) -> Result<Vec<(String, f64, f64)>, SimError> {
    let doc = read_json(path)?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| SimError::Usage(format!("{path}: missing rows array")))?;
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let get_num = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| SimError::Usage(format!("{path}: row {i} missing {key}")))
        };
        let switch = row
            .get("switch")
            .and_then(Json::as_str)
            .ok_or_else(|| SimError::Usage(format!("{path}: row {i} missing switch")))?;
        out.push((switch.to_string(), get_num("load")?, get_num("slots_per_sec")?));
    }
    Ok(out)
}

/// The `--baseline` regression gate: fail if any cell's slots/sec fell
/// more than `tolerance` (fractional) below the baseline. Cells present
/// on only one side are reported but do not fail the gate — the bench
/// matrix may legitimately grow.
fn regression_gate(baseline: &str, current: &str, tolerance: f64) -> Result<(), SimError> {
    let base = bench_rows(baseline)?;
    let cur = bench_rows(current)?;
    let key = |sw: &str, load: f64| format!("{sw}@{load:.4}");
    let base_idx: std::collections::BTreeMap<String, f64> = base
        .iter()
        .map(|(sw, load, sps)| (key(sw, *load), *sps))
        .collect();

    let mut table = fifoms_sim::report::Table::new(vec![
        "cell".to_string(),
        "baseline".to_string(),
        "current".to_string(),
        "delta".to_string(),
    ]);
    let mut worst: Option<(String, f64)> = None;
    let mut matched = 0usize;
    for (sw, load, cur_sps) in &cur {
        let cell = key(sw, *load);
        let Some(&base_sps) = base_idx.get(&cell) else {
            println!("check-bench: {cell} not in baseline, skipped");
            continue;
        };
        matched += 1;
        // Positive drop = regression; negative = speedup.
        let drop = (base_sps - cur_sps) / base_sps.max(f64::MIN_POSITIVE);
        table.push_row(vec![
            cell.clone(),
            format!("{base_sps:.0}"),
            format!("{cur_sps:.0}"),
            format!("{:+.1}%", -drop * 100.0),
        ]);
        if worst.as_ref().is_none_or(|(_, w)| drop > *w) {
            worst = Some((cell, drop));
        }
    }
    print!("{}", table.render());
    let Some((worst_cell, worst_drop)) = worst else {
        return Err(SimError::Usage(format!(
            "check-bench: no (switch, load) cells of {current} match {baseline}"
        )));
    };
    if worst_drop > tolerance {
        return Err(SimError::Usage(format!(
            "check-bench: {worst_cell} regressed {:.1}% in slots/sec \
             (tolerance {:.1}%, baseline {baseline})",
            worst_drop * 100.0,
            tolerance * 100.0
        )));
    }
    println!(
        "check-bench: {matched} cells within {:.1}% of {baseline} (worst: {worst_cell} {:+.1}%)",
        tolerance * 100.0,
        -worst_drop * 100.0
    );
    Ok(())
}

fn read_json(path: &str) -> Result<Json, SimError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    Json::parse(&text).map_err(|e| io_err(path, e))
}
