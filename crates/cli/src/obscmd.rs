//! Observability commands: the self-profiling harness (`profile`) and
//! benchmark-artifact validation (`check-bench`).

use fifoms_obs::{schema, Json};
use fifoms_sim::{profile_run, RunConfig, SwitchKind, TrafficKind};
use fifoms_types::SimError;

use crate::args::Options;

fn io_err(path: &str, e: impl std::fmt::Display) -> SimError {
    SimError::Usage(format!("{path}: {e}"))
}

/// `fifoms-repro profile`: run the paper's reference workload (FIFOMS,
/// Bernoulli b=0.2 at load 0.6) once, timing the engine's four phases on
/// every `--sample-every`-th slot, and write the breakdown as
/// `BENCH_profile.json` (override with `--out`). The profiled run takes
/// the ordinary engine path, so the measurement itself is representative.
pub fn profile(opts: &Options) -> Result<(), SimError> {
    let out = opts.out.as_deref().unwrap_or("BENCH_profile.json");
    let (load, b) = (0.6, 0.2);
    let mut sw = SwitchKind::Fifoms.build(opts.n, opts.seed);
    let mut tr =
        TrafficKind::bernoulli_at_load(load, b, opts.n).try_build(opts.n, opts.seed ^ 0xBEEF)?;
    let cfg = RunConfig::paper(opts.slots);
    let report = profile_run(sw.as_mut(), tr.as_mut(), &cfg, opts.sample_every)?;

    let doc = report.to_json();
    std::fs::write(out, format!("{doc}\n")).map_err(|e| io_err(out, e))?;

    println!(
        "profile: {} under {} ({} slots, phases sampled every {} slots)",
        report.result.switch_name, report.result.traffic_name, report.result.slots_run,
        report.sample_every
    );
    println!(
        "  wall time {:.3} s | {:.0} slots/s | throughput {:.4}",
        report.total_ns as f64 / 1e9,
        report.slots_per_sec(),
        report.result.throughput
    );
    let mut table = fifoms_sim::report::Table::new(vec![
        "phase".to_string(),
        "calls".to_string(),
        "exclusive-ms".to_string(),
        "share".to_string(),
    ]);
    let total_excl: u64 = report.profiler.phases().map(|(_, s)| s.exclusive_ns).sum();
    for (phase, s) in report.profiler.phases() {
        let share = if total_excl > 0 {
            100.0 * s.exclusive_ns as f64 / total_excl as f64
        } else {
            0.0
        };
        table.push_row(vec![
            phase.to_string(),
            format!("{}", s.calls),
            format!("{:.3}", s.exclusive_ns as f64 / 1e6),
            format!("{share:.1}%"),
        ]);
    }
    print!("{}", table.render());
    println!("wrote {out}");
    Ok(())
}

/// `fifoms-repro check-bench`: validate whichever benchmark artifacts
/// exist in the working directory against their checked-in schemas.
/// Fails if an artifact is malformed — or if none exist at all.
pub fn check_bench(_opts: &Options) -> Result<(), SimError> {
    let pairs = [
        ("BENCH_profile.json", "schemas/bench_profile.schema.json"),
        ("BENCH_core.json", "schemas/bench_core.schema.json"),
    ];
    let mut checked = 0;
    for (doc_path, schema_path) in pairs {
        if !std::path::Path::new(doc_path).exists() {
            println!("check-bench: {doc_path} absent, skipped");
            continue;
        }
        let doc = read_json(doc_path)?;
        let schema_doc = read_json(schema_path)?;
        schema::validate(&doc, &schema_doc)
            .map_err(|e| SimError::Usage(format!("{doc_path} violates {schema_path}: {e}")))?;
        println!("check-bench: {doc_path} conforms to {schema_path}");
        checked += 1;
    }
    if checked == 0 {
        return Err(SimError::Usage(
            "check-bench: no BENCH_*.json artifacts found (run `fifoms-repro profile` \
             and `cargo bench -p fifoms-bench --bench core` first)"
                .into(),
        ));
    }
    Ok(())
}

fn read_json(path: &str) -> Result<Json, SimError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    Json::parse(&text).map_err(|e| io_err(path, e))
}
