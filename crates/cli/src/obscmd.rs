//! Observability commands: the self-profiling harness (`profile`),
//! benchmark-artifact validation and regression gating (`check-bench`)
//! and per-phase regression attribution (`perf-diff`).

use std::collections::BTreeMap;

use fifoms_obs::{schema, Json};
use fifoms_sim::{profile_run, RunConfig, SwitchKind, TrafficKind};
use fifoms_types::SimError;

use crate::args::Options;

fn io_err(path: &str, e: impl std::fmt::Display) -> SimError {
    SimError::Usage(format!("{path}: {e}"))
}

/// `fifoms-repro profile`: run the paper's reference workload (FIFOMS,
/// Bernoulli b=0.2 at load 0.6) once, timing the engine's four phases on
/// every `--sample-every`-th slot, and write the breakdown as
/// `BENCH_profile.json` (override with `--out`). The profiled run takes
/// the ordinary engine path, so the measurement itself is representative.
pub fn profile(opts: &Options) -> Result<(), SimError> {
    let out = opts.out.as_deref().unwrap_or("BENCH_profile.json");
    let (load, b) = (0.6, 0.2);
    let mut sw = SwitchKind::Fifoms.build(opts.n, opts.seed);
    let mut tr =
        TrafficKind::bernoulli_at_load(load, b, opts.n).try_build(opts.n, opts.seed ^ 0xBEEF)?;
    let cfg = RunConfig::paper(opts.slots);
    let report = profile_run(sw.as_mut(), tr.as_mut(), &cfg, opts.sample_every)?;

    let doc = report.to_json();
    std::fs::write(out, format!("{doc}\n")).map_err(|e| io_err(out, e))?;

    println!(
        "profile: {} under {} ({} slots, phases sampled every {} slots)",
        report.result.switch_name, report.result.traffic_name, report.result.slots_run,
        report.sample_every
    );
    println!(
        "  wall time {:.3} s | {:.0} slots/s | throughput {:.4}",
        report.total_ns as f64 / 1e9,
        report.slots_per_sec(),
        report.result.throughput
    );
    let mut table = fifoms_sim::report::Table::new(vec![
        "phase".to_string(),
        "calls".to_string(),
        "exclusive-ms".to_string(),
        "share".to_string(),
    ]);
    let total_excl: u64 = report.profiler.phases().map(|(_, s)| s.exclusive_ns).sum();
    for (phase, s) in report.profiler.phases() {
        let share = if total_excl > 0 {
            100.0 * s.exclusive_ns as f64 / total_excl as f64
        } else {
            0.0
        };
        table.push_row(vec![
            phase.to_string(),
            format!("{}", s.calls),
            format!("{:.3}", s.exclusive_ns as f64 / 1e6),
            format!("{share:.1}%"),
        ]);
    }
    print!("{}", table.render());
    println!("wrote {out}");
    Ok(())
}

/// `fifoms-repro check-bench`: validate whichever benchmark artifacts
/// exist in the working directory against their checked-in schemas.
/// Fails if an artifact is malformed — or if none exist at all.
///
/// With `--baseline PATH` it instead runs the throughput regression
/// gate: the current core-bench artifact (`--current`, default
/// `BENCH_core.json`) is compared row-by-row against the baseline, and
/// the command fails if any `(switch, load)` cell lost more than
/// `--tolerance` (default 15%) of its slots/sec.
pub fn check_bench(opts: &Options) -> Result<(), SimError> {
    if let Some(baseline) = opts.baseline.as_deref() {
        let current = opts.current.as_deref().unwrap_or("BENCH_core.json");
        regression_gate(baseline, current, opts.tolerance)?;
        if let Some(ledger) = opts.ledger.as_deref() {
            append_ledger(ledger, current, opts.ledger_note.as_deref())?;
        }
        return Ok(());
    }
    let core_path = opts.current.as_deref().unwrap_or("BENCH_core.json");
    let pairs = [
        ("BENCH_profile.json", "schemas/bench_profile.schema.json"),
        (core_path, "schemas/bench_core.schema.json"),
    ];
    let mut checked = 0;
    for (doc_path, schema_path) in pairs {
        if !std::path::Path::new(doc_path).exists() {
            println!("check-bench: {doc_path} absent, skipped");
            continue;
        }
        let doc = read_json(doc_path)?;
        let schema_doc = read_json(schema_path)?;
        schema::validate(&doc, &schema_doc)
            .map_err(|e| SimError::Usage(format!("{doc_path} violates {schema_path}: {e}")))?;
        println!("check-bench: {doc_path} conforms to {schema_path}");
        checked += 1;
    }
    if checked == 0 {
        return Err(SimError::Usage(
            "check-bench: no BENCH_*.json artifacts found (run `fifoms-repro profile` \
             and `cargo bench -p fifoms-bench --bench core` first)"
                .into(),
        ));
    }
    if let Some(ledger) = opts.ledger.as_deref() {
        append_ledger(ledger, core_path, opts.ledger_note.as_deref())?;
    }
    Ok(())
}

/// Append one `fifoms-bench-ledger-v1` record to the JSONL ledger: the
/// current core-bench artifact's `(cell -> slots/sec)` table plus a
/// free-form note (`scripts/bench.sh` stores the commit id there), so
/// throughput history accumulates across runs without a database.
fn append_ledger(ledger: &str, source: &str, note: Option<&str>) -> Result<(), SimError> {
    let cells = bench_rows(source)?;
    let mut doc = Json::object();
    doc.set("schema", "fifoms-bench-ledger-v1");
    doc.set("source", source);
    if let Some(note) = note {
        doc.set("note", note);
    }
    let rows: Vec<Json> = cells
        .iter()
        .map(|(key, sps)| {
            let mut row = Json::object();
            row.set("key", key.as_str());
            row.set("slots_per_sec", *sps);
            row
        })
        .collect();
    doc.set("rows", Json::Arr(rows));
    append_jsonl(ledger, &doc)?;
    println!(
        "check-bench: appended {} cell(s) from {source} to {ledger}",
        cells.len()
    );
    Ok(())
}

/// Append one JSON document as a line to a JSONL ledger, creating parent
/// directories as needed. Shared by the bench ledger (`check-bench
/// --ledger`) and the lint rule-hit ledger (`lint --stats`) so every
/// history file in `results/` is written the same way.
pub(crate) fn append_jsonl(path: &str, doc: &Json) -> Result<(), SimError> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| io_err(path, e))?;
        }
    }
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    writeln!(f, "{doc}").map_err(|e| io_err(path, e))?;
    Ok(())
}

/// One `(cell key) -> slots/sec` row of a core-bench artifact. The key is
/// `switch@load@nN`; rows without their own `n` (v1 artifacts) inherit
/// the document-level `n`, so old and new artifacts stay comparable.
fn bench_rows(path: &str) -> Result<Vec<(String, f64)>, SimError> {
    let doc = read_json(path)?;
    let doc_n = doc.get("n").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| SimError::Usage(format!("{path}: missing rows array")))?;
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let get_num = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| SimError::Usage(format!("{path}: row {i} missing {key}")))
        };
        let switch = row
            .get("switch")
            .and_then(Json::as_str)
            .ok_or_else(|| SimError::Usage(format!("{path}: row {i} missing switch")))?;
        let n = row.get("n").and_then(Json::as_f64).map_or(doc_n, |v| v as u64);
        let load = get_num("load")?;
        out.push((format!("{switch}@{load:.4}@n{n}"), get_num("slots_per_sec")?));
    }
    Ok(out)
}

/// The `--baseline` regression gate: fail if any cell's slots/sec fell
/// more than `tolerance` (fractional) below the baseline. Cells present
/// on only one side are reported but do not fail the gate — the bench
/// matrix may legitimately grow.
///
/// Profile artifacts (documents with a `phases` array instead of `rows`)
/// are routed to the per-phase budget gate of [`perf_diff`], so
/// `check-bench --baseline old_profile.json --current new_profile.json`
/// gates phase budgets the same way the dedicated command does.
fn regression_gate(baseline: &str, current: &str, tolerance: f64) -> Result<(), SimError> {
    if read_json(baseline)?.get("phases").is_some() {
        return perf_diff_gate(baseline, current, tolerance);
    }
    let base = bench_rows(baseline)?;
    let cur = bench_rows(current)?;
    let base_idx: BTreeMap<String, f64> = base.into_iter().collect();

    let mut table = fifoms_sim::report::Table::new(vec![
        "cell".to_string(),
        "baseline".to_string(),
        "current".to_string(),
        "delta".to_string(),
    ]);
    let mut worst: Option<(String, f64)> = None;
    let mut matched = 0usize;
    for (cell, cur_sps) in &cur {
        let Some(&base_sps) = base_idx.get(cell) else {
            println!("check-bench: {cell} not in baseline, skipped");
            continue;
        };
        let cell = cell.clone();
        matched += 1;
        // Positive drop = regression; negative = speedup.
        let drop = (base_sps - cur_sps) / base_sps.max(f64::MIN_POSITIVE);
        table.push_row(vec![
            cell.clone(),
            format!("{base_sps:.0}"),
            format!("{cur_sps:.0}"),
            format!("{:+.1}%", -drop * 100.0),
        ]);
        if worst.as_ref().is_none_or(|(_, w)| drop > *w) {
            worst = Some((cell, drop));
        }
    }
    print!("{}", table.render());
    let Some((worst_cell, worst_drop)) = worst else {
        return Err(SimError::Usage(format!(
            "check-bench: no (switch, load) cells of {current} match {baseline}"
        )));
    };
    if worst_drop > tolerance {
        return Err(SimError::Usage(format!(
            "check-bench: {worst_cell} regressed {:.1}% in slots/sec \
             (tolerance {:.1}%, baseline {baseline})",
            worst_drop * 100.0,
            tolerance * 100.0
        )));
    }
    println!(
        "check-bench: {matched} cells within {:.1}% of {baseline} (worst: {worst_cell} {:+.1}%)",
        tolerance * 100.0,
        -worst_drop * 100.0
    );
    Ok(())
}

/// `fifoms-repro perf-diff <baseline.json> <current.json>`: attribute a
/// slots/sec delta between two profile artifacts to named spans.
pub fn perf_diff(opts: &Options) -> Result<(), SimError> {
    let baseline = opts.baseline.as_deref().expect("parse guaranteed baseline");
    let current = opts.current.as_deref().expect("parse guaranteed current");
    perf_diff_gate(baseline, current, opts.tolerance)
}

/// `path -> (exclusive_ns, calls)` span table of one profile artifact.
type SpanTable = BTreeMap<String, (u64, u64)>;

/// Per-span exclusive time of one profile artifact, keyed by tree path
/// (`schedule/grant`), plus the artifact's end-to-end slots/sec. v1 flat
/// artifacts have no `path` field and key by phase name — the attribution
/// then simply has no nested rows to name.
fn profile_spans(path: &str) -> Result<(f64, SpanTable), SimError> {
    let doc = read_json(path)?;
    let slots_per_sec = doc
        .get("slots_per_sec")
        .and_then(Json::as_f64)
        .ok_or_else(|| SimError::Usage(format!("{path}: missing slots_per_sec")))?;
    let phases = doc
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or_else(|| {
            SimError::Usage(format!("{path}: missing phases array (not a profile artifact?)"))
        })?;
    let mut spans = BTreeMap::new();
    for (i, row) in phases.iter().enumerate() {
        let name = row
            .get("path")
            .or_else(|| row.get("phase"))
            .and_then(Json::as_str)
            .ok_or_else(|| SimError::Usage(format!("{path}: phase row {i} missing name")))?;
        let get_u64 = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| SimError::Usage(format!("{path}: phase row {i} missing {key}")))
        };
        spans.insert(name.to_string(), (get_u64("exclusive_ns")?, get_u64("calls")?));
    }
    Ok((slots_per_sec, spans))
}

/// The per-phase regression gate behind `perf-diff` (and `check-bench
/// --baseline` on profile artifacts). Prints every span's exclusive
/// ns/call on both sides; fails when end-to-end slots/sec regressed past
/// `tolerance`, naming the span whose per-call cost grew the most — the
/// prime suspect the attribution exists to identify.
fn perf_diff_gate(baseline: &str, current: &str, tolerance: f64) -> Result<(), SimError> {
    let (base_sps, base_spans) = profile_spans(baseline)?;
    let (cur_sps, cur_spans) = profile_spans(current)?;

    let mut table = fifoms_sim::report::Table::new(vec![
        "span".to_string(),
        "base ns/call".to_string(),
        "cur ns/call".to_string(),
        "delta".to_string(),
    ]);
    let per_call = |(ns, calls): (u64, u64)| ns as f64 / (calls.max(1)) as f64;
    // Largest per-call growth among spans present on both sides; ties to
    // the worst absolute growth so tiny noisy spans don't win the blame.
    let mut suspect: Option<(String, f64)> = None;
    for (span, &cur_cost) in &cur_spans {
        let Some(&base_cost) = base_spans.get(span) else {
            println!("perf-diff: span {span} not in baseline, skipped");
            continue;
        };
        let (base_npc, cur_npc) = (per_call(base_cost), per_call(cur_cost));
        let grew_ns = cur_npc - base_npc;
        table.push_row(vec![
            span.clone(),
            format!("{base_npc:.0}"),
            format!("{cur_npc:.0}"),
            format!("{grew_ns:+.0} ns"),
        ]);
        if suspect.as_ref().is_none_or(|(_, w)| grew_ns > *w) {
            suspect = Some((span.clone(), grew_ns));
        }
    }
    for span in base_spans.keys() {
        if !cur_spans.contains_key(span) {
            println!("perf-diff: span {span} vanished from current, skipped");
        }
    }
    print!("{}", table.render());

    let drop = (base_sps - cur_sps) / base_sps.max(f64::MIN_POSITIVE);
    println!(
        "perf-diff: {base_sps:.0} -> {cur_sps:.0} slots/s ({:+.1}%)",
        -drop * 100.0
    );
    if drop > tolerance {
        let blame = match &suspect {
            Some((span, grew_ns)) if *grew_ns > 0.0 => {
                format!("; prime suspect: {span} ({grew_ns:+.0} ns/call)")
            }
            _ => "; no span grew — suspect unprofiled time".to_string(),
        };
        return Err(SimError::Usage(format!(
            "perf-diff: slots/sec regressed {:.1}% (tolerance {:.1}%){blame}",
            drop * 100.0,
            tolerance * 100.0
        )));
    }
    println!(
        "perf-diff: within tolerance {:.1}% of {baseline}",
        tolerance * 100.0
    );
    Ok(())
}

fn read_json(path: &str) -> Result<Json, SimError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    Json::parse(&text).map_err(|e| io_err(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_appends_one_validated_row_per_invocation() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let source = dir.join(format!("fifoms-ledger-src-{pid}.json"));
        let ledger = dir.join(format!("fifoms-ledger-{pid}.jsonl"));
        std::fs::remove_file(&ledger).ok();
        std::fs::write(
            &source,
            "{\"n\":8,\"rows\":[\
             {\"switch\":\"fifoms\",\"load\":0.6,\"slots_per_sec\":123456.0},\
             {\"switch\":\"islip\",\"load\":0.6,\"slots_per_sec\":98765.0}]}\n",
        )
        .unwrap();

        for note in ["first", "second"] {
            append_ledger(
                ledger.to_str().unwrap(),
                source.to_str().unwrap(),
                Some(note),
            )
            .expect("ledger append succeeds");
        }

        let text = std::fs::read_to_string(&ledger).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one JSONL record per invocation");
        for (i, line) in lines.iter().enumerate() {
            let doc = Json::parse(line).expect("ledger line parses");
            assert_eq!(
                doc.get("schema").and_then(Json::as_str),
                Some("fifoms-bench-ledger-v1")
            );
            assert_eq!(
                doc.get("note").and_then(Json::as_str),
                Some(["first", "second"][i])
            );
            let rows = doc.get("rows").and_then(Json::as_arr).expect("rows array");
            assert_eq!(rows.len(), 2);
            assert_eq!(
                rows[0].get("key").and_then(Json::as_str),
                Some("fifoms@0.6000@n8")
            );
            assert_eq!(
                rows[0].get("slots_per_sec").and_then(Json::as_f64),
                Some(123456.0)
            );
        }
        std::fs::remove_file(&source).ok();
        std::fs::remove_file(&ledger).ok();
    }
}
