//! The `serve` subcommand: a supervised, checkpointed long-running run.
//!
//! Runs FIFOMS under Bernoulli multicast traffic with periodic
//! crash-safe checkpoints in `--state-dir`, supervised by the restart
//! loop in [`fifoms_sim::serve`]: a crashed, panicking or wedged worker
//! is restarted from the newest valid checkpoint (corrupt checkpoint
//! files are skipped, falling back to the previous one) with
//! exponential backoff, until the restart budget is exhausted and the
//! supervisor escalates with a structured error. Killing the process
//! and re-running the same command line resumes from the state
//! directory and produces the same final statistics as an uninterrupted
//! run — bit-identical, per the recovery invariant.
//!
//! `--die-at-slot <T>` arms the deliberate-crash hook on the first
//! worker attempt, which makes a single command demonstrate the whole
//! kill-and-recover cycle (the CI smoke stage uses exactly this).
//! `--out <PATH>` streams the supervisor's `recovery_started` /
//! `recovery_completed` events as JSONL.

use std::sync::Arc;

use fifoms_obs::{EventSink, JsonlSink};
use fifoms_sim::{serve, CheckpointConfig, RunConfig, ServeConfig, SwitchKind, TrafficKind};
use fifoms_types::SimError;

use crate::args::Options;

/// Fixed per-output destination probability of the serve workload (the
/// paper's §V-A Bernoulli default).
const SERVE_B: f64 = 0.25;

/// Entry point for `fifoms-repro serve`.
pub fn serve_cmd(opts: &Options) -> Result<(), SimError> {
    let state_dir = opts
        .state_dir
        .clone()
        .ok_or_else(|| SimError::Usage("serve requires --state-dir <DIR>".to_string()))?;
    let mut cfg = ServeConfig::new(
        RunConfig::paper(opts.slots),
        CheckpointConfig {
            dir: state_dir.clone().into(),
            every: opts.checkpoint_every,
        },
    );
    cfg.max_restarts = opts.max_restarts;
    cfg.die_at = opts.die_at;
    if let Some(secs) = opts.cell_timeout {
        cfg.worker_timeout_millis = secs.saturating_mul(1_000);
    }

    let sink: Option<Arc<dyn EventSink>> = match &opts.out {
        Some(path) => {
            if let Some(parent) = std::path::Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).map_err(|e| SimError::Journal {
                        path: path.clone(),
                        message: format!("create supervisor log dir: {e}"),
                    })?;
                }
            }
            let file = std::fs::File::create(path).map_err(|e| SimError::Journal {
                path: path.clone(),
                message: format!("create supervisor log: {e}"),
            })?;
            Some(Arc::new(JsonlSink::new(file)))
        }
        None => None,
    };

    println!(
        "serve: FIFOMS n={}, bernoulli p={:.2} b={SERVE_B:.2}, {} slots, seed {}",
        opts.n, opts.load, opts.slots, opts.seed
    );
    println!(
        "  state dir {state_dir}, checkpoint every {} slots, restart budget {}, \
         worker watchdog {}s{}",
        cfg.checkpoint.every,
        cfg.max_restarts,
        cfg.worker_timeout_millis / 1_000,
        cfg.die_at
            .map(|t| format!(", deliberate crash at slot {t}"))
            .unwrap_or_default(),
    );

    let (n, seed, p) = (opts.n, opts.seed, opts.load);
    let build_switch = move || SwitchKind::Fifoms.build(n, seed);
    let build_traffic = move || TrafficKind::Bernoulli { p, b: SERVE_B }.try_build(n, seed ^ 0x5a5a);
    let report = serve(&cfg, build_switch, build_traffic, sink)?;

    match report.resumed_from {
        Some(info) => println!(
            "session complete after {} attempt(s), {} restart(s): resumed from \
             checkpoint seq {} at slot {} ({} WAL slot(s) replayed, {} corrupt \
             checkpoint file(s) skipped)",
            report.attempts, report.restarts, info.seq, info.slot, report.replayed, info.rejected
        ),
        None => println!(
            "session complete after {} attempt(s), {} restart(s): ran uninterrupted",
            report.attempts, report.restarts
        ),
    }
    let r = &report.result;
    println!(
        "  admitted {} packets, delivered {} copies over {} slots; throughput {:.4}, \
         mean output-oriented delay {:.2}, mean occupancy {:.2}",
        r.packets_admitted,
        r.copies_delivered,
        r.slots_run,
        r.throughput,
        r.delay.mean_output_oriented,
        r.occupancy.mean,
    );
    Ok(())
}
