//! `fifoms-repro analyze`: trace forensics over a `--trace-out` JSONL
//! file — per-copy delay decomposition, the Theorem 1 starvation audit,
//! convergence-round histograms and fanout-split tables, with an
//! optional `--compare` diff against a second trace (typically iSLIP vs
//! FIFOMS over the same workload) and an optional `--json` report.

use fifoms_obs::analysis::{
    analyze_trace, compare_scopes, ScopeAnalysis, ScopeComparison, TraceAnalysis,
};
use fifoms_obs::{schema, Json};
use fifoms_sim::report::Table;
use fifoms_types::SimError;

use crate::args::Options;

fn load_analysis(path: &str) -> Result<TraceAnalysis, SimError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SimError::Usage(format!("{path}: {e}")))?;
    analyze_trace(&text).map_err(|e| SimError::Usage(format!("{path}: {e}")))
}

/// Entry point for the `analyze` command.
pub fn analyze(opts: &Options) -> Result<(), SimError> {
    let Some(input) = opts.input.as_deref() else {
        return Err(SimError::Usage(
            "analyze requires a trace file: fifoms-repro analyze <trace.jsonl>".into(),
        ));
    };
    let analysis = load_analysis(input)?;
    if analysis.scopes.is_empty() {
        return Err(SimError::Usage(format!("{input}: trace holds no events")));
    }

    println!("analyze: {input} ({} scope(s))", analysis.scopes.len());
    for scope in &analysis.scopes {
        print_scope(scope);
    }

    let mut compared: Vec<ScopeComparison> = Vec::new();
    if let Some(other_path) = opts.compare.as_deref() {
        let other = load_analysis(other_path)?;
        compared = pair_scopes(&analysis, &other);
        if compared.is_empty() {
            return Err(SimError::Usage(format!(
                "--compare {other_path}: no scopes pair with {input} \
                 (matched by their @load suffix)"
            )));
        }
        println!("\ncompare: {input} (left) vs {other_path} (right)");
        for cmp in &compared {
            print_comparison(cmp);
        }
    }

    if let Some(out) = opts.json_out.as_deref() {
        let mut doc = analysis.to_json();
        if !compared.is_empty() {
            doc.set(
                "compare",
                Json::Arr(compared.iter().map(ScopeComparison::to_json).collect()),
            );
        }
        // Self-check against the pinned schema when it is reachable
        // (running from the repo root); skip quietly elsewhere.
        let schema_path = "schemas/analysis.schema.json";
        if std::path::Path::new(schema_path).exists() {
            let text = std::fs::read_to_string(schema_path)
                .map_err(|e| SimError::Usage(format!("{schema_path}: {e}")))?;
            let schema_doc = Json::parse(&text)
                .map_err(|e| SimError::Usage(format!("{schema_path}: {e}")))?;
            schema::validate(&doc, &schema_doc).map_err(|e| {
                SimError::Usage(format!("analysis report violates {schema_path}: {e}"))
            })?;
        }
        std::fs::write(out, format!("{doc}\n"))
            .map_err(|e| SimError::Usage(format!("{out}: {e}")))?;
        println!("\nwrote {out}");
    }
    Ok(())
}

/// Pair scopes across two traces for `--compare`: first by identical
/// `@load` suffix (`FIFOMS@0.60` pairs with `iSLIP@0.60`), falling back
/// to positional order when the labels carry no load.
fn pair_scopes(left: &TraceAnalysis, right: &TraceAnalysis) -> Vec<ScopeComparison> {
    let suffix = |s: &str| s.rsplit_once('@').map(|(_, load)| load.to_string());
    let mut out = Vec::new();
    let mut used = vec![false; right.scopes.len()];
    for l in &left.scopes {
        let want = suffix(&l.scope);
        let matched = right.scopes.iter().enumerate().find(|(i, r)| {
            !used[*i] && want.is_some() && suffix(&r.scope) == want
        });
        if let Some((i, r)) = matched {
            used[i] = true;
            out.push(compare_scopes(l, r));
        }
    }
    if out.is_empty() {
        for (l, r) in left.scopes.iter().zip(&right.scopes) {
            out.push(compare_scopes(l, r));
        }
    }
    out
}

fn print_scope(s: &ScopeAnalysis) {
    println!("\nscope {} ({} under {})", s.scope, s.switch, s.traffic);
    match &s.recorder {
        Some((mode, param)) if param > &0 => println!("  recorder: {mode} ({param})"),
        Some((mode, _)) => println!("  recorder: {mode}"),
        None => println!("  recorder: none (slot-level trace only)"),
    }
    if !s.complete {
        println!("  note: sampled/partial lifecycles - per-packet stats cover kept packets only");
    }
    match (s.slots_run, s.utilisation) {
        (Some(slots), Some(u)) => println!(
            "  slots: {slots} run, {} busy (utilisation {:.1}%)",
            s.busy_slots,
            u * 100.0
        ),
        _ => println!("  slots: {} busy (no run_end marker - utilisation unknown)", s.busy_slots),
    }
    println!(
        "  packets: {} arrived, {} completed, {} split | copies: {} over {} transmissions",
        s.packets_arrived, s.packets_completed, s.split_packets, s.copies_sent, s.transmissions
    );
    if s.faults_masked > 0 || s.invariant_violations > 0 {
        println!(
            "  faults masked: {} | invariant violations: {}",
            s.faults_masked, s.invariant_violations
        );
    }
    if s.order_anomalies > 0 {
        println!("  warning: {} non-FIFO VOQ service anomalies", s.order_anomalies);
    }

    if !s.copies.is_empty() {
        let (total, hol, contention, split) = s.mean_delays();
        let mut t = Table::new(vec![
            "delay component".to_string(),
            "mean slots".to_string(),
            "share".to_string(),
        ]);
        let share = |x: f64| {
            if total > 0.0 {
                format!("{:.1}%", 100.0 * x / total)
            } else {
                "-".into()
            }
        };
        t.push_row(vec!["HOL wait".into(), format!("{hol:.3}"), share(hol)]);
        t.push_row(vec![
            "output contention".into(),
            format!("{contention:.3}"),
            share(contention),
        ]);
        t.push_row(vec![
            "split residue".into(),
            format!("{split:.3}"),
            share(split),
        ]);
        t.push_row(vec!["total".into(), format!("{total:.3}"), "100.0%".into()]);
        print!("{}", t.render());
        if let Some((p50, p99, p999)) = s.delay_percentiles() {
            println!(
                "  delay tail (slots, log2-bucket lower bounds): p50 {p50} | p99 {p99} | p999 {p999}"
            );
        }
    }

    if !s.rounds.histogram.is_empty() {
        let reference = s
            .rounds
            .log2_n
            .map_or_else(|| "?".into(), |x| format!("{x:.2}"));
        println!(
            "  convergence: mean {:.3} rounds, max {} (log2 N = {reference})",
            s.rounds.mean, s.rounds.max
        );
        let matched: u64 = s.rounds.histogram.values().sum();
        for (rounds, slots) in &s.rounds.histogram {
            let pct = 100.0 * *slots as f64 / matched.max(1) as f64;
            println!("    {rounds} round(s): {slots} slots ({pct:.1}%)");
        }
    }

    let fanout = s.fanout_table();
    if !fanout.is_empty() {
        let mut t = Table::new(vec![
            "fanout".to_string(),
            "packets".to_string(),
            "split".to_string(),
            "mean-life".to_string(),
            "max-life".to_string(),
            "mean-delay".to_string(),
        ]);
        for row in fanout {
            t.push_row(vec![
                format!("{}", row.fanout),
                format!("{}", row.packets),
                format!("{}", row.split_packets),
                format!("{:.3}", row.mean_lifetime),
                format!("{}", row.max_lifetime),
                format!("{:.3}", row.mean_copy_delay),
            ]);
        }
        print!("{}", t.render());
    }

    if s.audit.checked {
        println!(
            "  starvation audit: {} backlogged slots, {} inversions, {} blocked{}",
            s.audit.backlogged_slots,
            s.audit.inversions,
            s.audit.blocked_slots,
            if s.audit.inversions == 0 && s.audit.blocked_slots == 0 {
                " - Theorem 1 holds"
            } else {
                ""
            }
        );
        if s.audit.inversions > 0 {
            println!(
                "    max inversion {} slots, first at slot {}",
                s.audit.max_inversion,
                s.audit.first_inversion_slot.unwrap_or(0)
            );
        }
    } else {
        println!("  starvation audit: skipped (requires --packet-trace all)");
    }
}

fn print_comparison(cmp: &ScopeComparison) {
    println!("\n  {} vs {}", cmp.left, cmp.right);
    println!(
        "    copies delivered: {} vs {} | transmissions: {} vs {}",
        cmp.copies.0, cmp.copies.1, cmp.transmissions.0, cmp.transmissions.1
    );
    if cmp.transmissions.1 > cmp.transmissions.0 {
        println!(
            "    multicast saved {} transmissions (fanout splitting vs unicast expansion)",
            cmp.transmissions.1 - cmp.transmissions.0
        );
    }
    println!(
        "    mean copy delay: {:.3} vs {:.3} | mean rounds: {:.3} vs {:.3}",
        cmp.mean_delay.0, cmp.mean_delay.1, cmp.mean_rounds.0, cmp.mean_rounds.1
    );
    if !cmp.fanout_delay.is_empty() {
        let mut t = Table::new(vec![
            "fanout".to_string(),
            "left-delay".to_string(),
            "right-delay".to_string(),
            "delta".to_string(),
        ]);
        for (fanout, l, r, d) in &cmp.fanout_delay {
            t.push_row(vec![
                format!("{fanout}"),
                format!("{l:.3}"),
                format!("{r:.3}"),
                format!("{d:+.3}"),
            ]);
        }
        print!("{}", t.render());
    }
}
