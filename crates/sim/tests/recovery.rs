//! Kill-and-recover property tests (DESIGN.md §15).
//!
//! The recovery invariant under test: a checkpointed run killed at ANY
//! slot and resumed from its state directory produces a byte-for-byte
//! identical event trace, an identical write-ahead arrival log, and a
//! bit-identical [`RunResult`] compared to the same run left
//! uninterrupted. The first test drives that invariant over 100 random
//! `(seed, kill-slot, checkpoint-interval)` triples, including the edge
//! geometries (kill before the first checkpoint, kill exactly on a
//! checkpoint slot, kill during warmup, kill on the last slot).
//!
//! The second half is the corruption corpus: random mutations of valid
//! checkpoint envelopes and whole checkpoint files must be rejected
//! *structurally* — a typed error from the codec, a silent fallback to
//! the previous valid checkpoint from the store — and must never panic.

use std::fs;
use std::path::{Path, PathBuf};

use fifoms_obs::{CountingWriter, JsonlSink};
use fifoms_sim::{
    truncate_file, try_simulate_recoverable, CheckpointConfig, Observer, RecoveryRuntime,
    RunConfig, RunResult, SwitchKind, TrafficKind,
};
use fifoms_types::{frame_state, unframe_state, SimError};

/// xorshift64* — deterministic, dependency-free pseudo-randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

fn test_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fifoms-recovery-prop-{tag}-{}", std::process::id()))
}

/// One recoverable run against the public API: FIFOMS at n=8 under
/// Bernoulli multicast, trace streamed through a byte-counting JSONL
/// sink so checkpoints can record (and recovery can restore) the exact
/// trace offset.
fn recoverable_run(
    dir: &Path,
    trace: &Path,
    cfg: &RunConfig,
    every: u64,
    seed: u64,
    kill: Option<u64>,
    resume: bool,
) -> Result<RunResult, SimError> {
    let mut switch = SwitchKind::Fifoms.build(8, seed);
    let mut traffic = TrafficKind::Bernoulli { p: 0.35, b: 0.25 }.try_build(8, seed ^ 0x5a5a)?;
    let ck = CheckpointConfig {
        dir: dir.to_path_buf(),
        every,
    };
    let mut rec = if resume {
        RecoveryRuntime::open(&ck)?
    } else {
        RecoveryRuntime::fresh(&ck)?
    };
    if let Some(slot) = kill {
        rec.kill_at(slot);
    }
    let file = if resume {
        // A resume that found no checkpoint restarts at slot 0: the
        // trace truncates to offset 0 and is rewritten from scratch.
        truncate_file(trace, rec.trace_resume_offset().unwrap_or(0))?;
        fs::OpenOptions::new()
            .append(true)
            .open(trace)
            .expect("reopen trace")
    } else {
        fs::File::create(trace).expect("create trace")
    };
    let (writer, offset) = CountingWriter::new(file);
    rec.attach_trace(offset);
    let sink = JsonlSink::new(writer);
    let mut obs = Observer {
        sink: Some((&sink, "recovery-prop")),
        profiler: None,
        telemetry: None,
    };
    try_simulate_recoverable(switch.as_mut(), traffic.as_mut(), cfg, &mut obs, &mut rec)
}

/// Kill-and-recover one random geometry; panics with the triple in the
/// message on any divergence so a failure pinpoints its inputs.
fn check_triple(base: &Path, case: usize, seed: u64, slots: u64, every: u64, kill: u64) {
    let label = format!("case {case}: seed={seed} slots={slots} every={every} kill={kill}");
    let cfg = RunConfig {
        slots,
        warmup: slots / 4,
        backlog_cap: 100_000,
        sample_every: 25,
    };

    let ref_dir = base.join(format!("ref-{case}"));
    let ref_trace = ref_dir.join("trace.jsonl");
    let reference = recoverable_run(&ref_dir, &ref_trace, &cfg, every, seed, None, false)
        .unwrap_or_else(|e| panic!("{label}: reference run failed: {e}"));

    let dir = base.join(format!("kill-{case}"));
    let trace = dir.join("trace.jsonl");
    match recoverable_run(&dir, &trace, &cfg, every, seed, Some(kill), false) {
        Err(SimError::Killed { slot }) => assert_eq!(slot, kill, "{label}"),
        other => panic!("{label}: expected Killed, got {other:?}"),
    }
    let recovered = recoverable_run(&dir, &trace, &cfg, every, seed, None, true)
        .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));

    // Debug formatting of f64 is shortest-roundtrip, so string equality
    // here is bit equality over every field of the result.
    assert_eq!(
        format!("{reference:?}"),
        format!("{recovered:?}"),
        "{label}: RunResult diverged"
    );
    let ref_bytes = fs::read(&ref_trace).expect("read reference trace");
    let got_bytes = fs::read(&trace).expect("read recovered trace");
    assert_eq!(ref_bytes, got_bytes, "{label}: trace bytes diverged");
    let ref_wal = fs::read(ref_dir.join("arrivals.wal")).expect("read reference wal");
    let got_wal = fs::read(dir.join("arrivals.wal")).expect("read recovered wal");
    assert_eq!(ref_wal, got_wal, "{label}: WAL bytes diverged");

    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn killed_runs_recover_bit_identically_across_100_random_geometries() {
    let base = test_dir("triples");
    let _ = fs::remove_dir_all(&base);
    let mut rng = Rng(0x5eed_f1f0_u64);
    // Four pinned edge geometries, then random triples up to 100.
    // slots=600: kill before the first checkpoint (fresh restart), kill
    // exactly on a checkpoint slot, kill during warmup, kill on the
    // last slot.
    let pinned: [(u64, u64, u64, u64); 4] = [
        (11, 600, 200, 150),
        (12, 600, 200, 400),
        (13, 600, 200, 100),
        (14, 600, 200, 599),
    ];
    for (case, &(seed, slots, every, kill)) in pinned.iter().enumerate() {
        check_triple(&base, case, seed, slots, every, kill);
    }
    for case in pinned.len()..100 {
        let seed = rng.next();
        let slots = rng.range(300, 900);
        let every = rng.range(40, slots / 2);
        let kill = rng.range(1, slots - 1);
        check_triple(&base, case, seed, slots, every, kill);
    }
    let _ = fs::remove_dir_all(&base);
}

/// Random mutations of a valid framed state envelope must come back as
/// typed codec errors — never a panic, and never a bogus `Ok`.
#[test]
fn mutated_state_envelopes_are_rejected_structurally() {
    let payload: Vec<u8> = (0..257u32).map(|i| (i % 251) as u8).collect();
    let blob = frame_state("corpus-kind", 1, &payload);
    assert!(unframe_state(&blob, "corpus-kind").is_ok());

    // Every truncation length.
    for len in 0..blob.len() {
        assert!(
            unframe_state(&blob[..len], "corpus-kind").is_err(),
            "truncation to {len} bytes accepted"
        );
    }
    // Single-byte flips at every offset: CRC (or magic/kind parsing)
    // must catch all of them.
    for at in 0..blob.len() {
        let mut bad = blob.clone();
        bad[at] ^= 0x41;
        assert!(
            unframe_state(&bad, "corpus-kind").is_err(),
            "bit flip at {at} accepted"
        );
    }
    // Random garbage of random lengths.
    let mut rng = Rng(0xdead_c0de);
    for _ in 0..200 {
        let len = (rng.next() % 512) as usize;
        let junk: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        // Must not panic, and a random blob cannot carry a valid
        // CRC-guarded frame with this kind string:
        if let Ok((version, body)) = unframe_state(&junk, "corpus-kind") {
            panic!("random junk accepted as version {version} with {} bytes", body.len());
        }
    }
    // Wrong kind on an otherwise valid frame.
    assert!(unframe_state(&blob, "other-kind").is_err());
}

/// Whole-file corruption: damage the newest checkpoint file in a real
/// state directory in random ways; opening the directory must fall back
/// to the previous valid checkpoint (or start fresh when both rotation
/// files are destroyed) and never panic or fail.
#[test]
fn corrupt_checkpoint_files_fall_back_never_panic() {
    let base = test_dir("files");
    let _ = fs::remove_dir_all(&base);
    let pristine = base.join("pristine");
    let trace = pristine.join("trace.jsonl");
    let cfg = RunConfig {
        slots: 400,
        warmup: 100,
        backlog_cap: 100_000,
        sample_every: 25,
    };
    // Kill at 250 with checkpoints every 100: seq 1 (odd -> b) and
    // seq 2 (even -> a) are on disk at the crash.
    match recoverable_run(&pristine, &trace, &cfg, 100, 21, Some(250), false) {
        Err(SimError::Killed { slot }) => assert_eq!(slot, 250),
        other => panic!("expected Killed, got {other:?}"),
    }

    let mut rng = Rng(0xfa11_bacc);
    for round in 0..30 {
        let dir = base.join(format!("round-{round}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("round dir");
        for name in ["checkpoint-a.bin", "checkpoint-b.bin", "arrivals.wal"] {
            fs::copy(pristine.join(name), dir.join(name)).expect("copy state");
        }
        // Corrupt the newest checkpoint (seq 2 in checkpoint-a.bin); on
        // some rounds destroy the fallback too.
        let newest = dir.join("checkpoint-a.bin");
        let bytes = fs::read(&newest).expect("read newest");
        let mutated = match rng.next() % 4 {
            0 => bytes[..(rng.next() as usize) % bytes.len()].to_vec(),
            1 => {
                let mut b = bytes.clone();
                let at = (rng.next() as usize) % b.len();
                b[at] ^= 1 << (rng.next() % 8);
                b
            }
            2 => Vec::new(),
            _ => (0..bytes.len()).map(|_| rng.next() as u8).collect(),
        };
        fs::write(&newest, &mutated).expect("write corrupted");
        let both_destroyed = round % 5 == 4;
        if both_destroyed {
            fs::write(dir.join("checkpoint-b.bin"), b"also gone").expect("destroy fallback");
        }

        let ck = CheckpointConfig { dir: dir.clone(), every: 100 };
        let rec = RecoveryRuntime::open(&ck)
            .unwrap_or_else(|e| panic!("round {round}: open failed structurally: {e}"));
        match rec.resume_info() {
            Some(info) => {
                assert!(!both_destroyed, "round {round}: resumed from destroyed state");
                // The corrupted seq-2 file must have been skipped; only
                // the intact seq-1 fallback is acceptable (a mutation
                // cannot produce a valid frame, CRC-guarded).
                assert_eq!(info.seq, 1, "round {round}: resumed from corrupted checkpoint");
                assert_eq!(info.slot, 100, "round {round}");
                assert_eq!(info.rejected, 1, "round {round}: rejected count");
            }
            None => assert!(
                both_destroyed,
                "round {round}: fallback checkpoint not used"
            ),
        }
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&base);
}
