//! Slotted-time simulation engine, experiment specifications and report
//! generation for the FIFOMS study.
//!
//! This crate reproduces the paper's simulation methodology (§V):
//!
//! * synchronous slots, fixed-size cells;
//! * a warmup period (half the run by default) excluded from statistics;
//! * runs of 10^6 slots "unless the switch becomes unstable", which we
//!   detect with a backlog cap plus a growth-trend test
//!   ([`fifoms_stats::SaturationDetector`]);
//! * the four §V statistics (input/output-oriented delay, average and
//!   maximum queue size) plus the Fig. 5 convergence-round average.
//!
//! The pieces:
//!
//! * [`simulate`] drives one `(switch, traffic)` pair under a
//!   [`RunConfig`] and yields a [`RunResult`];
//! * [`SwitchKind`] / [`TrafficKind`] are buildable specifications of
//!   every scheduler and workload in the workspace (the experiment
//!   harness and benches construct sweeps from these);
//! * [`Sweep`] runs a grid of (scheduler × load point) simulations,
//!   optionally across threads, producing [`SweepRow`]s — with a
//!   fault-isolated mode ([`Sweep::run_robust`]) where panicking, hung or
//!   invalid cells become structured [`CellOutcome::Failed`] rows, and a
//!   checkpointed mode ([`Sweep::run_checkpointed`]) that journals every
//!   finished cell so a killed sweep resumes where it stopped;
//! * [`CheckpointJournal`] is that journal — human-readable, append-only,
//!   crash-tolerant, keyed to the exact sweep it belongs to;
//! * [`report`] renders aligned ASCII tables and CSV files;
//! * observability rides along opt-in: [`try_simulate_observed`] streams
//!   per-slot events into an [`EventSink`](fifoms_obs::EventSink) and/or
//!   samples phase timings, [`SweepObserver`] threads a shared sink and a
//!   progress meter through the sweep runners, and [`profile_run`] is the
//!   self-profiling harness behind `fifoms-repro profile`. The disabled
//!   paths are the plain functions themselves, so unobserved results are
//!   bit-identical by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod chaos;
mod checkpoint;
mod engine;
mod overload;
pub mod plot;
mod profile;
mod recover;
pub mod report;
mod serve;
mod spec;
mod sweep;

pub use audit::{alloc_audit, AllocAuditReport};
pub use chaos::{
    buffer_pressure_scenarios, campaign_scenarios, run_corruption_campaign, run_guarded,
    run_scenario, run_scenario_observed, run_scenario_on, shrink_scenario,
    shrink_scenario_guarded, ChaosOutcome, ChaosScenario, CheckpointFault, CorruptionOutcome,
};
pub use checkpoint::CheckpointJournal;
pub use engine::{
    simulate, try_simulate, try_simulate_controlled, try_simulate_observed,
    try_simulate_recoverable, Observer, RunConfig, RunResult, TelemetryChannel, TelemetrySpec,
};
pub use overload::{
    loss_sweep, loss_sweep_observed, LossPoint, LossSweepConfig, OverloadControls,
    OverloadGovernor,
};
// Re-exported so sweep policies can be configured without a direct
// dependency on the fabric crate.
pub use fifoms_fabric::{
    CheckedSwitch, FaultConfig, FaultStats, FaultyFabric, InstrumentedSwitch, PacketTraceMode,
};
pub use profile::{profile_run, ProfileReport};
pub use recover::{
    read_wal, truncate_file, CheckpointConfig, CheckpointStore, RecoveryRuntime, ResumeInfo,
    RunSnapshot, WalWriter,
};
pub use serve::{serve, ServeConfig, ServeReport, SERVE_SCOPE};
pub use spec::{SwitchKind, TrafficKind};
pub use sweep::{
    CellFailureReason, CellOutcome, CellPolicy, FailedCell, Sweep, SweepObserver, SweepRow,
};
