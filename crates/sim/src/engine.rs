//! The per-run simulation loop.

use fifoms_fabric::Switch;
use fifoms_obs::{EventSink, PhaseProfiler, SnapshotBus, Telemetry};
use std::sync::Arc;
use fifoms_stats::{
    DelayStats, DelaySummary, OccupancySummary, OccupancyTracker, RunningStat,
    SaturationDetector, SaturationVerdict,
};
use fifoms_traffic::TrafficModel;
use fifoms_types::{
    ObsEvent, Packet, PacketId, PortId, PortSet, SimError, Slot, SpanSample, SpanTimer,
};

use crate::overload::OverloadControls;
use crate::recover::{RecoveryRuntime, RunSnapshot};

/// Parameters of one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Total slots to simulate (the paper uses 10^6).
    pub slots: u64,
    /// Slots excluded from statistics at the start (the paper uses half
    /// the run).
    pub warmup: u64,
    /// Hard cap on total queued copies; exceeding it aborts the run with
    /// [`SaturationVerdict::CapExceeded`].
    pub backlog_cap: usize,
    /// How often (in slots) to sample the backlog for the trend test.
    pub sample_every: u64,
}

impl RunConfig {
    /// The paper's configuration scaled to `slots` total slots: warmup is
    /// half the run, the backlog cap is 200k copies, backlog sampled every
    /// 100 slots.
    pub fn paper(slots: u64) -> RunConfig {
        RunConfig {
            slots,
            warmup: slots / 2,
            backlog_cap: 200_000,
            sample_every: 100,
        }
    }

    /// A quick configuration for tests and smoke benches.
    pub fn quick(slots: u64) -> RunConfig {
        RunConfig {
            slots,
            warmup: slots / 4,
            backlog_cap: 100_000,
            sample_every: 50,
        }
    }
}

/// Everything measured in one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Scheduler name as reported by the switch.
    pub switch_name: String,
    /// Workload name as reported by the traffic model.
    pub traffic_name: String,
    /// Analytic effective load of the workload, if known.
    pub offered_load: Option<f64>,
    /// The workload's defining parameters as `(name, value)` pairs (from
    /// [`TrafficModel::params`]). Makes a row self-describing even when
    /// `offered_load` is `None` — the provenance survives into checkpoint
    /// journals, metrics exports and traces.
    pub workload: Vec<(String, f64)>,
    /// Delay metrics (§V: input- and output-oriented averages).
    pub delay: DelaySummary,
    /// Queue-size metrics (§V: average and maximum queue size).
    pub occupancy: OccupancySummary,
    /// Mean convergence rounds over slots with at least one match (Fig. 5).
    pub mean_rounds: f64,
    /// Stability verdict; delay/queue numbers of saturated points are
    /// censored by the run length and flagged in reports.
    pub verdict: SaturationVerdict,
    /// Slots actually executed (less than requested if the cap aborted).
    pub slots_run: u64,
    /// Packets admitted over the whole run.
    pub packets_admitted: u64,
    /// Copies delivered after warmup.
    pub copies_delivered: u64,
    /// Delivered copies per output per post-warmup slot (throughput, in
    /// units of effective load).
    pub throughput: f64,
}

impl RunResult {
    /// Whether the operating point was sustainable.
    pub fn is_stable(&self) -> bool {
        !self.verdict.is_saturated()
    }
}

/// Run one `(switch, traffic)` pair to completion.
///
/// Per slot: generate arrivals, [`Switch::admit`] each (preprocessing is
/// overlapped with scheduling, §IV-C), [`Switch::run_slot`], then record
/// post-warmup statistics and sample the backlog for saturation detection.
///
/// # Panics
///
/// Panics if `cfg.warmup >= cfg.slots` or the traffic model's port count
/// differs from the switch's. Use [`try_simulate`] on user-facing paths
/// where these should surface as diagnostics instead.
pub fn simulate(
    switch: &mut dyn Switch,
    traffic: &mut dyn TrafficModel,
    cfg: &RunConfig,
) -> RunResult {
    match try_simulate(switch, traffic, cfg) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`simulate`]: precondition failures become
/// [`SimError`] values rather than panics.
pub fn try_simulate(
    switch: &mut dyn Switch,
    traffic: &mut dyn TrafficModel,
    cfg: &RunConfig,
) -> Result<RunResult, SimError> {
    try_simulate_observed(switch, traffic, cfg, &mut Observer::none())
}

/// Observation attachments for one run. Both channels default to off;
/// a disabled observer makes [`try_simulate_observed`] take the same code
/// path as [`try_simulate`] (which is implemented as exactly that), so
/// observation can never perturb an unobserved result.
pub struct Observer<'a> {
    /// Event destination plus the scope label events are tagged with.
    /// When set, the engine emits one [`ObsEvent::RunMeta`] before slot 0
    /// and drains the switch stack's buffered events every slot.
    pub sink: Option<(&'a dyn EventSink, &'a str)>,
    /// Phase profiler plus its sampling stride `k`: every `k`-th slot has
    /// its four engine phases (`traffic`, `admit`, `schedule`, `stats`)
    /// timed. Sampling keeps clock reads off most slots so the profiled
    /// run stays representative.
    pub profiler: Option<(&'a mut PhaseProfiler, u64)>,
    /// Live telemetry channel (DESIGN.md §14). When set, the engine
    /// drains the switch stack's events every slot (feeding the windowed
    /// accumulator even with no `sink` attached), times each slot and its
    /// schedule phase, and closes a window every stride slots — emitting
    /// the summary to the channel's series sink and publishing a
    /// snapshot through its bus. Telemetry is read-only over the run's
    /// own counters, so results stay bit-identical when it is attached.
    pub telemetry: Option<TelemetryChannel<'a>>,
}

impl Observer<'_> {
    /// A fully disabled observer.
    pub fn none() -> Observer<'static> {
        Observer {
            sink: None,
            profiler: None,
            telemetry: None,
        }
    }
}

/// One run's wiring of the live telemetry layer: the windowed
/// accumulator plus where its outputs go. Both destinations are
/// optional — a caller may want only the JSONL time-series, only the
/// snapshot bus, or (in tests) just the filled [`Telemetry`].
pub struct TelemetryChannel<'a> {
    /// The windowed accumulator the engine feeds.
    pub telemetry: &'a mut Telemetry,
    /// Destination for `window_meta` / `window_summary` events plus the
    /// scope label they are tagged with (the `fifoms-timeseries-v1`
    /// stream). Kept separate from [`Observer::sink`]: the time-series
    /// is a different artifact from the event trace.
    pub series: Option<(&'a dyn EventSink, &'a str)>,
    /// Snapshot bus (plus this run's scope) publishing the whole-campaign
    /// live view on every window close.
    pub bus: Option<(&'a SnapshotBus, &'a str)>,
}

/// Shareable telemetry configuration for campaign runners (sweep, chaos,
/// overload): the owning side of [`TelemetryChannel`]. Cloned freely
/// across worker threads; each cell builds its own [`Telemetry`] and
/// borrows a per-run channel with [`TelemetrySpec::channel`].
#[derive(Clone, Default)]
pub struct TelemetrySpec {
    /// Shared sink for the `fifoms-timeseries-v1` JSONL stream.
    pub series: Option<Arc<dyn EventSink>>,
    /// Shared snapshot publisher.
    pub bus: Option<Arc<SnapshotBus>>,
    /// Slots per telemetry window.
    pub window: u64,
}

impl TelemetrySpec {
    /// A spec with the given window stride and no destinations (useful
    /// as a base for builder-style wiring).
    pub fn new(window: u64) -> TelemetrySpec {
        TelemetrySpec {
            series: None,
            bus: None,
            window,
        }
    }

    /// A fresh per-run accumulator sized for an `N`-port switch.
    pub fn new_telemetry(&self, ports: usize) -> Telemetry {
        Telemetry::new(ports, self.window)
    }

    /// Borrow a per-run channel feeding `telemetry`, tagging output with
    /// `scope`.
    pub fn channel<'a>(
        &'a self,
        telemetry: &'a mut Telemetry,
        scope: &'a str,
    ) -> TelemetryChannel<'a> {
        TelemetryChannel {
            telemetry,
            series: self.series.as_deref().map(|s| (s, scope)),
            bus: self.bus.as_deref().map(|b| (b, scope)),
        }
    }
}

/// [`try_simulate`] with observation attached: events stream to the
/// observer's sink and engine phases are sampled into its profiler.
pub fn try_simulate_observed(
    switch: &mut dyn Switch,
    traffic: &mut dyn TrafficModel,
    cfg: &RunConfig,
    obs: &mut Observer<'_>,
) -> Result<RunResult, SimError> {
    simulate_inner(switch, traffic, cfg, obs, None, None)
}

/// [`try_simulate_observed`] with overload protection attached: the
/// engine consults `controls` each slot for backpressure-driven arrival
/// deferral and the graceful-degradation ladder (DESIGN.md §12). Inert
/// controls ([`OverloadControls::new`]) leave the run bit-identical to
/// [`try_simulate_observed`].
pub fn try_simulate_controlled(
    switch: &mut dyn Switch,
    traffic: &mut dyn TrafficModel,
    cfg: &RunConfig,
    obs: &mut Observer<'_>,
    controls: &mut OverloadControls,
) -> Result<RunResult, SimError> {
    simulate_inner(switch, traffic, cfg, obs, Some(controls), None)
}

/// [`try_simulate_observed`] with crash-safe checkpointing attached
/// (DESIGN.md §15): the engine writes a checkpoint at the top of every
/// `recovery.every()`-th slot, logs each slot's arrivals to the WAL, and
/// — when `recovery` was opened over an existing checkpoint — restores
/// the full run state and resumes at the checkpointed slot, verifying
/// regenerated arrivals against the WAL across the replay gap. A resumed
/// run is bit-identical (trace, metrics, [`RunResult`]) to the
/// uninterrupted one.
pub fn try_simulate_recoverable(
    switch: &mut dyn Switch,
    traffic: &mut dyn TrafficModel,
    cfg: &RunConfig,
    obs: &mut Observer<'_>,
    recovery: &mut RecoveryRuntime,
) -> Result<RunResult, SimError> {
    simulate_inner(switch, traffic, cfg, obs, None, Some(recovery))
}

fn simulate_inner(
    switch: &mut dyn Switch,
    traffic: &mut dyn TrafficModel,
    cfg: &RunConfig,
    obs: &mut Observer<'_>,
    mut controls: Option<&mut OverloadControls>,
    mut recovery: Option<&mut RecoveryRuntime>,
) -> Result<RunResult, SimError> {
    if cfg.warmup >= cfg.slots {
        return Err(SimError::WarmupTooLong {
            warmup: cfg.warmup,
            slots: cfg.slots,
        });
    }
    if switch.ports() != traffic.ports() {
        return Err(SimError::SizeMismatch {
            switch_ports: switch.ports(),
            traffic_ports: traffic.ports(),
        });
    }
    let n = switch.ports();
    let mut delay = DelayStats::new();
    let mut occupancy = OccupancyTracker::new(n);
    let mut rounds = RunningStat::new();
    let mut detector = SaturationDetector::new(cfg.backlog_cap);
    let mut arrivals: Vec<Option<_>> = Vec::with_capacity(n);
    let mut queue_buf: Vec<usize> = Vec::with_capacity(n);
    let mut next_packet = 0u64;
    let mut copies_delivered = 0u64;
    let mut slots_run = 0u64;
    let mut event_buf: Vec<ObsEvent> = Vec::new();
    let mut span_buf: Vec<SpanSample> = Vec::new();
    // Pre-sized quarantine poll buffer: window closes must not allocate
    // (the N×N worst case is every path quarantined).
    let mut quarantine_buf: Vec<(PortId, PortId)> = Vec::new();
    if obs.telemetry.is_some() {
        quarantine_buf.reserve(n * n);
    }

    // A pending resume overwrites every engine local the checkpoint
    // captured, then the loop restarts at the checkpointed slot. Resumed
    // runs skip the run_meta/window_meta preamble — the truncated trace
    // already carries it.
    let mut start_slot = 0u64;
    if let Some(rec) = recovery.as_deref_mut() {
        let tele = obs.telemetry.as_mut().map(|tc| &mut *tc.telemetry);
        if let Some(applied) = rec.apply_resume(switch, traffic, tele)? {
            if applied.occupancy.raw().0.len() != n {
                return Err(SimError::Recovery {
                    message: format!(
                        "checkpoint tracks {} ports, run has {n}",
                        applied.occupancy.raw().0.len()
                    ),
                });
            }
            start_slot = applied.slot;
            next_packet = applied.next_packet;
            copies_delivered = applied.copies_delivered;
            slots_run = applied.slots_run;
            delay = applied.delay;
            occupancy = applied.occupancy;
            rounds = applied.rounds;
            detector.restore_raw(applied.detector_samples, applied.detector_cap_hit);
        }
    }

    if start_slot == 0 {
        if let Some((sink, scope)) = obs.sink {
            sink.emit(
                scope,
                &ObsEvent::RunMeta {
                    switch: switch.name(),
                    traffic: traffic.name(),
                    ports: n as u32,
                    params: traffic
                        .params()
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect(),
                },
            );
        }
        if let Some(tc) = obs.telemetry.as_mut() {
            if let Some((sink, scope)) = tc.series {
                sink.emit(scope, &tc.telemetry.meta_event());
            }
        }
    }

    // Open/close a profiler span only on sampled slots.
    fn span(obs: &mut Observer<'_>, timed: bool, name: &'static str, enter: bool) {
        if !timed {
            return;
        }
        if let Some((p, _)) = obs.profiler.as_mut() {
            if enter {
                p.enter(name);
            } else {
                p.exit(name);
            }
        }
    }

    for t in start_slot..cfg.slots {
        let now = Slot(t);
        if let Some(rec) = recovery.as_deref_mut() {
            // Checkpoint at the top of the slot, *before* the traffic
            // draw, so a restart at `t` regenerates the slot in full.
            // The trace offset is captured before the checkpoint_written
            // event is emitted: on resume the due checkpoint re-fires,
            // idempotently rewriting the same file and re-emitting the
            // identical event, so the trace stays byte-for-byte equal to
            // the uninterrupted run's.
            if rec.checkpoint_due(t) {
                if let Some((sink, _)) = obs.sink {
                    sink.flush();
                }
                let snap = RunSnapshot {
                    slot: t,
                    next_packet,
                    copies_delivered,
                    slots_run,
                    trace_offset: rec.trace_offset_now(),
                    delay: &delay,
                    occupancy: &occupancy,
                    rounds: &rounds,
                    detector: &detector,
                };
                let telemetry = obs.telemetry.as_ref().map(|tc| &*tc.telemetry);
                let (seq, bytes) = rec.write_checkpoint(&snap, switch, traffic, telemetry)?;
                let event = ObsEvent::CheckpointWritten {
                    slot: now,
                    seq,
                    bytes,
                };
                if let Some(tc) = obs.telemetry.as_mut() {
                    tc.telemetry.observe_event(&event);
                }
                if let Some((sink, scope)) = obs.sink {
                    sink.emit(scope, &event);
                }
            }
            // The deliberate crash hook fires after any due checkpoint —
            // exactly what a real crash between two checkpoints looks
            // like to the recovery path.
            if rec.kill_due(t) {
                if let Some((sink, _)) = obs.sink {
                    sink.flush();
                }
                return Err(SimError::Killed { slot: t });
            }
        }
        let timed = match &obs.profiler {
            Some((_, every)) => t % every.max(&1) == 0,
            None => false,
        };
        // Wall-clock for the whole slot, feeding the tail histogram.
        let slot_timer = timed.then(SpanTimer::start);
        // Telemetry times every slot (one clock read; its wall time
        // feeds windowed slots/sec and the live tail histogram). Both
        // timers exist only when their consumer is attached, so the
        // plain path never reads a clock.
        let tele_active = obs.telemetry.is_some();
        let tele_timer = tele_active.then(SpanTimer::start);
        span(obs, timed, "traffic", true);
        traffic.next_slot(now, &mut arrivals);
        span(obs, timed, "traffic", false);
        if let Some(rec) = recovery.as_deref_mut() {
            // Write-ahead log the raw arrivals; across a resume's replay
            // gap this also verifies the restored traffic model is
            // regenerating the logged pre-crash arrivals.
            rec.record_arrivals(t, &arrivals)?;
        }
        // Overload protection, when attached: walk the degradation
        // ladder against this slot's pre-admission backlog, pause
        // backpressured inputs (deferring their arrivals), re-offer
        // deferred arrivals oldest-first where the signal is clear, and
        // at ladder level 3 trim fresh fanouts to their first
        // destination. `controls == None` skips all of it.
        let level = match controls.as_deref_mut() {
            Some(ctl) => {
                if let Some(g) = ctl.governor.as_mut() {
                    if let Some(event) = g.observe(now, switch.backlog().copies as u64) {
                        if let Some((sink, scope)) = obs.sink {
                            sink.emit(scope, &event);
                        }
                    }
                }
                let level = ctl.level();
                for (input, slot_arrival) in arrivals.iter_mut().enumerate() {
                    let input_id = PortId::new(input);
                    let fresh = slot_arrival.take();
                    if ctl.pause_on_backpressure && switch.backpressure(input_id) {
                        if let Some(dests) = fresh {
                            ctl.deferrals.push(input_id, dests);
                        }
                        continue;
                    }
                    *slot_arrival = match ctl.deferrals.pop_ready(input_id) {
                        Some(held) => {
                            // One admission per input per slot: a fresh
                            // arrival queues behind the resumed one.
                            if let Some(dests) = fresh {
                                ctl.deferrals.push(input_id, dests);
                            }
                            Some(held)
                        }
                        None => fresh,
                    };
                    if level >= 3 {
                        if let Some(dests) = slot_arrival.as_mut() {
                            if dests.len() > 1 {
                                let first = dests.iter().next().expect("non-empty fanout");
                                ctl.fanout_copies_trimmed += (dests.len() - 1) as u64;
                                *dests = PortSet::singleton(first);
                            }
                        }
                    }
                }
                level
            }
            None => 0,
        };
        let admitted_before = next_packet;
        span(obs, timed, "admit", true);
        for (input, dests) in arrivals.iter_mut().enumerate() {
            if let Some(dests) = dests.take() {
                next_packet += 1;
                switch.admit(Packet::new(
                    PacketId(next_packet),
                    now,
                    PortId::new(input),
                    dests,
                ));
            }
        }
        span(obs, timed, "admit", false);
        if timed {
            switch.set_span_recording(true);
        }
        span(obs, timed, "schedule", true);
        let sched_timer = tele_active.then(SpanTimer::start);
        let outcome = switch.run_slot(now);
        let sched_ns = sched_timer.map_or(0, |tm| tm.elapsed_ns());
        span(obs, timed, "schedule", false);
        if timed {
            // Attach the switch's self-measured sub-phases (VOQ scan,
            // request build, grant arbitration, commit) as children of the
            // just-closed `schedule` span. Switches without sub-phase
            // instrumentation report nothing and the span stays flat.
            switch.set_span_recording(false);
            span_buf.clear();
            switch.drain_spans(&mut span_buf);
            if let Some((p, _)) = obs.profiler.as_mut() {
                for s in &span_buf {
                    p.record_child("schedule", s.name, s.ns);
                }
            }
        }
        slots_run = t + 1;

        if obs.sink.is_some() || tele_active {
            switch.drain_events(&mut event_buf);
            for e in event_buf.drain(..) {
                // Telemetry sees every event before the ladder sheds any:
                // the windowed counters must sum to the run's aggregates
                // regardless of degradation level.
                if let Some(tc) = obs.telemetry.as_mut() {
                    tc.telemetry.observe_event(&e);
                }
                let Some((sink, scope)) = obs.sink else {
                    continue;
                };
                // Ladder level 1: shed packet-scoped tracing first.
                // Admission drops, invariant reports and scheduler
                // summaries always get through — forensics on the
                // overloaded run depend on them.
                if level >= 1
                    && matches!(
                        e,
                        ObsEvent::PacketArrived { .. }
                            | ObsEvent::CopySent { .. }
                            | ObsEvent::PacketCompleted { .. }
                    )
                {
                    if let Some(ctl) = controls.as_deref_mut() {
                        ctl.events_shed += 1;
                    }
                    continue;
                }
                sink.emit(scope, &e);
            }
        }

        span(obs, timed, "stats", true);
        if t >= cfg.warmup {
            for d in &outcome.departures {
                delay.record_copy(d.delay(now), d.last_copy);
            }
            copies_delivered += outcome.departures.len() as u64;
            if !outcome.departures.is_empty() {
                rounds.push_u64(outcome.rounds as u64);
            }
            // Ladder level 2: thin the per-slot queue scan to every
            // fourth slot. Delay and throughput tallies stay exact.
            if level < 2 || t % 4 == 0 {
                switch.queue_sizes(&mut queue_buf);
                occupancy.sample(&queue_buf);
            } else if let Some(ctl) = controls.as_deref_mut() {
                ctl.samples_skipped += 1;
            }
        }
        let capped = t % cfg.sample_every == 0 && detector.observe(switch.backlog().copies);
        span(obs, timed, "stats", false);
        if let (Some(timer), Some((p, _))) = (slot_timer, obs.profiler.as_mut()) {
            p.record_slot_ns(timer.elapsed_ns());
        }
        // Live telemetry: fold this slot into the current window and
        // close the window on a full stride. All counter updates are
        // integer field writes; the only heap work is the opted-in
        // snapshot publication on a window close.
        if let Some(tc) = obs.telemetry.as_mut() {
            let delivered_now = outcome.departures.len() as u64;
            let completed_now = outcome.departures.iter().filter(|d| d.last_copy).count() as u64;
            let wall_ns = tele_timer.map_or(0, |tm| tm.elapsed_ns());
            tc.telemetry.record_slot(
                next_packet - admitted_before,
                delivered_now,
                completed_now,
                sched_ns,
                wall_ns,
            );
            if tc.telemetry.window_full() {
                quarantine_buf.clear();
                switch.quarantined_paths(now, &mut quarantine_buf);
                tc.telemetry.set_path_state(&quarantine_buf);
                let summary = tc.telemetry.close_window(switch.backlog().copies as u64);
                if let Some((sink, scope)) = tc.series {
                    sink.emit(scope, &summary);
                }
                if let Some((bus, scope)) = tc.bus {
                    bus.publish(scope, tc.telemetry, false);
                }
            }
        }
        // Hand the outcome's heap buffers back for the next slot. Runs on
        // every path (observed or not): recycling is memory reuse only,
        // so it cannot perturb results.
        switch.recycle(outcome);
        if capped {
            break; // backlog cap exceeded: the point is hopeless
        }
    }

    if obs.sink.is_some() || obs.telemetry.is_some() {
        // Let buffering wrappers (the ring-buffer flight recorder) move
        // retained events into the drain path, then a final drain catches
        // everything buffered during the last slot's teardown (e.g. a
        // violation recorded on the aborting slot). This block only runs
        // with observation attached, so unobserved runs stay bit-identical.
        switch.end_of_run();
        switch.drain_events(&mut event_buf);
        for e in event_buf.drain(..) {
            if let Some(tc) = obs.telemetry.as_mut() {
                tc.telemetry.observe_event(&e);
            }
            if let Some((sink, scope)) = obs.sink {
                sink.emit(scope, &e);
            }
        }
    }
    if let Some((sink, scope)) = obs.sink {
        // With a profiler also attached, surface its totals in the trace:
        // one PhaseTimed per phase name (aggregated over the span tree)
        // and the per-slot wall-time tail summary. Run-scoped, so they sit
        // with the other teardown records just before RunEnd.
        if let Some((p, _)) = obs.profiler.as_mut() {
            for (phase, stats) in p.phases() {
                sink.emit(
                    scope,
                    &ObsEvent::PhaseTimed {
                        phase: phase.to_string(),
                        calls: stats.calls,
                        inclusive_ns: stats.inclusive_ns,
                        exclusive_ns: stats.exclusive_ns,
                    },
                );
            }
            let slot_times = p.slot_times();
            if !slot_times.is_empty() {
                sink.emit(
                    scope,
                    &ObsEvent::SlotTimeSummary {
                        samples: slot_times.count(),
                        p50_ns: slot_times.quantile(0.5),
                        p99_ns: slot_times.quantile(0.99),
                        p999_ns: slot_times.quantile(0.999),
                        max_ns: slot_times.max(),
                    },
                );
            }
        }
        // Terminate the scope's stream: slots in [0, slots_run) with no
        // slot_sched record are idle, not missing — `analyze` relies on
        // this to compute utilisation without guessing.
        sink.emit(scope, &ObsEvent::RunEnd { slots_run });
        sink.flush();
    }
    if let Some(tc) = obs.telemetry.as_mut() {
        // Close the partial final window (if any), flush the series
        // stream, and publish the completion-marked snapshot so `top`
        // can tell a finished scope from a stalled one.
        quarantine_buf.clear();
        switch.quarantined_paths(Slot(slots_run.saturating_sub(1)), &mut quarantine_buf);
        tc.telemetry.set_path_state(&quarantine_buf);
        if let Some(summary) = tc.telemetry.finish(switch.backlog().copies as u64) {
            if let Some((sink, scope)) = tc.series {
                sink.emit(scope, &summary);
            }
        }
        if let Some((sink, _)) = tc.series {
            sink.flush();
        }
        if let Some((bus, scope)) = tc.bus {
            bus.publish(scope, tc.telemetry, true);
        }
    }

    let measured_slots = slots_run.saturating_sub(cfg.warmup).max(1);
    Ok(RunResult {
        switch_name: switch.name(),
        traffic_name: traffic.name(),
        offered_load: traffic.effective_load(),
        workload: traffic
            .params()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        delay: delay.summary(),
        occupancy: occupancy.summary(),
        mean_rounds: rounds.mean(),
        verdict: detector.verdict(),
        slots_run,
        packets_admitted: next_packet,
        copies_delivered,
        throughput: copies_delivered as f64 / (measured_slots * n as u64) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fifoms_baselines::OqFifoSwitch;
    use fifoms_core::MulticastVoqSwitch;
    use fifoms_traffic::{BernoulliMulticast, UniformUnicast};

    #[test]
    fn idle_traffic_produces_empty_result() {
        let mut sw = MulticastVoqSwitch::new(4, 0);
        let mut tr = UniformUnicast::new(4, 0.0, 0).unwrap();
        let r = simulate(&mut sw, &mut tr, &RunConfig::quick(1000));
        assert_eq!(r.packets_admitted, 0);
        assert_eq!(r.copies_delivered, 0);
        assert_eq!(r.delay.delivered_copies, 0);
        assert_eq!(r.throughput, 0.0);
        assert!(r.is_stable());
        assert_eq!(r.slots_run, 1000);
    }

    #[test]
    fn light_load_fifoms_near_zero_delay() {
        let mut sw = MulticastVoqSwitch::new(8, 1);
        let mut tr = BernoulliMulticast::new(8, 0.05, 0.25, 2).unwrap();
        let r = simulate(&mut sw, &mut tr, &RunConfig::quick(20_000));
        assert!(r.is_stable());
        assert!(
            r.delay.mean_output_oriented < 1.0,
            "light-load delay {}",
            r.delay.mean_output_oriented
        );
        assert!(r.occupancy.mean < 1.0);
        assert!(r.delay.delivered_copies > 0);
    }

    #[test]
    fn throughput_matches_offered_load_when_stable() {
        let mut sw = OqFifoSwitch::new(8);
        let mut tr = BernoulliMulticast::new(8, 0.3, 0.25, 3).unwrap();
        let r = simulate(&mut sw, &mut tr, &RunConfig::quick(40_000));
        assert!(r.is_stable());
        // Empty-fanout resampling biases the true load above the nominal
        // p·b·N by 1/(1-(1-b)^N); compare against the corrected value.
        let corrected = r.offered_load.unwrap() / (1.0 - 0.75f64.powi(8));
        assert!(
            (r.throughput - corrected).abs() / corrected < 0.03,
            "throughput {} vs corrected offered {}",
            r.throughput,
            corrected
        );
    }

    #[test]
    fn overload_detected_as_saturated() {
        // Offered load 2.0 — no scheduler can sustain it.
        let mut sw = MulticastVoqSwitch::new(8, 1);
        let mut tr = BernoulliMulticast::new(8, 1.0, 0.25, 4).unwrap();
        let r = simulate(&mut sw, &mut tr, &RunConfig::quick(20_000));
        assert!(r.verdict.is_saturated());
        // throughput is capped near 1.0 per output
        assert!(r.throughput <= 1.01);
    }

    #[test]
    fn backlog_cap_aborts_early() {
        let mut sw = MulticastVoqSwitch::new(8, 1);
        let mut tr = BernoulliMulticast::new(8, 1.0, 0.5, 5).unwrap();
        let cfg = RunConfig {
            slots: 100_000,
            warmup: 50_000,
            backlog_cap: 2_000,
            sample_every: 10,
        };
        let r = simulate(&mut sw, &mut tr, &cfg);
        assert_eq!(r.verdict, SaturationVerdict::CapExceeded);
        assert!(r.slots_run < 100_000, "run should abort early");
    }

    #[test]
    fn try_simulate_surfaces_precondition_errors() {
        let mut sw = MulticastVoqSwitch::new(4, 0);
        let mut tr = UniformUnicast::new(4, 0.1, 0).unwrap();
        let cfg = RunConfig {
            slots: 10,
            warmup: 10,
            backlog_cap: 100,
            sample_every: 1,
        };
        let e = try_simulate(&mut sw, &mut tr, &cfg).unwrap_err();
        assert_eq!(
            e,
            SimError::WarmupTooLong {
                warmup: 10,
                slots: 10
            }
        );
        let mut tr8 = UniformUnicast::new(8, 0.1, 0).unwrap();
        let e = try_simulate(&mut sw, &mut tr8, &RunConfig::quick(100)).unwrap_err();
        assert_eq!(
            e,
            SimError::SizeMismatch {
                switch_ports: 4,
                traffic_ports: 8
            }
        );
    }

    #[test]
    #[should_panic(expected = "warmup must be shorter")]
    fn bad_warmup_rejected() {
        let mut sw = MulticastVoqSwitch::new(4, 0);
        let mut tr = UniformUnicast::new(4, 0.1, 0).unwrap();
        let cfg = RunConfig {
            slots: 10,
            warmup: 10,
            backlog_cap: 100,
            sample_every: 1,
        };
        simulate(&mut sw, &mut tr, &cfg);
    }

    #[test]
    #[should_panic(expected = "sized differently")]
    fn size_mismatch_rejected() {
        let mut sw = MulticastVoqSwitch::new(4, 0);
        let mut tr = UniformUnicast::new(8, 0.1, 0).unwrap();
        simulate(&mut sw, &mut tr, &RunConfig::quick(100));
    }

    #[test]
    fn inert_controls_are_bit_identical_to_plain_simulation() {
        use crate::overload::OverloadControls;
        let cfg = RunConfig::quick(10_000);
        let mut sw = MulticastVoqSwitch::new(8, 3);
        let mut tr = BernoulliMulticast::new(8, 0.3, 0.25, 9).unwrap();
        let plain = try_simulate(&mut sw, &mut tr, &cfg).unwrap();
        let mut sw = MulticastVoqSwitch::new(8, 3);
        let mut tr = BernoulliMulticast::new(8, 0.3, 0.25, 9).unwrap();
        let mut controls = OverloadControls::new(8);
        let controlled = try_simulate_controlled(
            &mut sw,
            &mut tr,
            &cfg,
            &mut Observer::none(),
            &mut controls,
        )
        .unwrap();
        assert_eq!(plain.packets_admitted, controlled.packets_admitted);
        assert_eq!(plain.copies_delivered, controlled.copies_delivered);
        assert_eq!(plain.delay.mean_output_oriented, controlled.delay.mean_output_oriented);
        assert_eq!(plain.occupancy.mean, controlled.occupancy.mean);
        assert_eq!(controls.deferrals.total_deferred(), 0);
        assert_eq!(controls.events_shed, 0);
        assert_eq!(controls.fanout_copies_trimmed, 0);
    }

    #[test]
    fn backpressure_pause_defers_instead_of_dropping() {
        use crate::overload::OverloadControls;
        use fifoms_core::BufferConfig;
        // Tiny aggregate budget under heavy load: without pausing, the
        // switch sheds at admission; with pausing, offered packets wait
        // in the deferral queue instead.
        let buffers = BufferConfig::bounded(16, 32);
        let mut sw = MulticastVoqSwitch::new(8, 3).with_buffers(buffers);
        let mut tr = BernoulliMulticast::new(8, 0.9, 0.25, 11).unwrap();
        let mut controls = OverloadControls::new(8).with_backpressure();
        let r = try_simulate_controlled(
            &mut sw,
            &mut tr,
            &RunConfig::quick(4_000),
            &mut Observer::none(),
            &mut controls,
        )
        .unwrap();
        assert!(r.packets_admitted > 0);
        assert!(
            controls.deferrals.total_deferred() > 0,
            "inadmissible load against a tiny buffer must trigger pauses"
        );
        assert!(
            controls.deferrals.total_resumed() > 0,
            "cleared signal must re-offer deferred arrivals"
        );
    }

    #[test]
    fn degradation_ladder_engages_under_inadmissible_load() {
        use crate::overload::{OverloadControls, OverloadGovernor};
        use fifoms_core::BufferConfig;
        let buffers = BufferConfig::bounded(64, 256);
        let capacity = buffers.max_copies(8).unwrap();
        let mut sw = MulticastVoqSwitch::new(8, 3).with_buffers(buffers);
        // Offered load 2.0: the backlog climbs straight through every
        // ladder threshold.
        let mut tr = BernoulliMulticast::new(8, 1.0, 0.25, 13).unwrap();
        let mut controls =
            OverloadControls::new(8).with_governor(OverloadGovernor::new(capacity));
        let r = try_simulate_controlled(
            &mut sw,
            &mut tr,
            &RunConfig::quick(6_000),
            &mut Observer::none(),
            &mut controls,
        )
        .unwrap();
        assert_eq!(controls.level(), 3, "ladder must reach fanout shedding");
        assert!(controls.fanout_copies_trimmed > 0, "level 3 trims fanout");
        assert!(controls.samples_skipped > 0, "level 2 thins metric sampling");
        assert!(r.slots_run == 6_000, "finite buffers never hit the cap");
    }

    #[test]
    fn oq_delay_lower_bounds_fifoms() {
        // At a moderate multicast load the OQ switch (speedup N) can only
        // be better (or equal) on output-oriented delay.
        let cfg = RunConfig::quick(30_000);
        let mut oq = OqFifoSwitch::new(8);
        let mut tr = BernoulliMulticast::new(8, 0.35, 0.25, 7).unwrap();
        let r_oq = simulate(&mut oq, &mut tr, &cfg);
        let mut fs = MulticastVoqSwitch::new(8, 7);
        let mut tr = BernoulliMulticast::new(8, 0.35, 0.25, 7).unwrap();
        let r_fs = simulate(&mut fs, &mut tr, &cfg);
        assert!(r_oq.is_stable() && r_fs.is_stable());
        assert!(
            r_oq.delay.mean_output_oriented <= r_fs.delay.mean_output_oriented + 0.05,
            "OQ {} vs FIFOMS {}",
            r_oq.delay.mean_output_oriented,
            r_fs.delay.mean_output_oriented
        );
    }
}
