//! Chaos campaign harness for the egress fault runtime.
//!
//! A campaign sweeps seeded [`ChaosScenario`]s — each one an egress-mode
//! fault schedule plus a workload — through the fully armoured stack
//! `CheckedSwitch<FaultyFabric<MulticastVoqSwitch>>` (the checker is
//! *outside* the fault layer, so every invariant is enforced on the
//! post-fault view the rest of the system actually sees). Each run
//! records recovery metrics (time-to-recover, loss counts, scoreboard
//! accuracy) into a [`RecoveryRecorder`] from the `copy_killed` /
//! `copy_recovered` observability events, and verifies the egress
//! conservation law
//!
//! ```text
//! admitted copies == delivered + reconciled drops + backlog
//! ```
//!
//! When a scenario fails — an invariant violation, unreconciled
//! `fanoutCounter`s, or a switch that never drains — [`shrink_scenario`]
//! delta-debugs it against the default scenario, one parameter at a
//! time, down to a minimal reproducer that prints as a ready-to-run
//! `fifoms-repro chaos --scenario ...` invocation.

use fifoms_core::{AdmissionPolicy, BufferConfig, MulticastVoqSwitch};
use fifoms_fabric::{CheckedSwitch, FaultConfig, FaultMode, FaultStats, FaultyFabric, Switch};
use fifoms_stats::{RecoveryRecorder, RecoverySummary};
use fifoms_types::{
    AdmissionDrop, DroppedCopy, ObsEvent, Packet, PacketId, PortId, SimError, Slot, SpanTimer,
};

use crate::engine::TelemetrySpec;
use crate::spec::TrafficKind;

/// Slots between scoreboard-vs-ground-truth audits during a run.
const AUDIT_EVERY: u64 = 64;

/// Per-output destination probability of the campaign workload.
const CHAOS_B: f64 = 0.25;

/// One seeded fault scenario: everything that determines a chaos run.
///
/// Every field has a default (see [`ChaosScenario::default`]); a
/// scenario's identity for reporting and shrinking is its set of
/// *non-default* parameters, rendered as `name=value,...` by
/// [`ChaosScenario::cli_spec`] and parsed back by
/// [`ChaosScenario::parse`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ChaosScenario {
    /// Switch size.
    pub n: usize,
    /// Seed for the switch, workload and fault schedule.
    pub seed: u64,
    /// Loaded slots before the drain phase begins.
    pub slots: u64,
    /// Effective Bernoulli-multicast load during the loaded phase.
    pub load: f64,
    /// Output flap period in slots (`0` disables flaps).
    pub flap_period: u64,
    /// Slots an output stays down within each flap period.
    pub flap_duration: u64,
    /// Number of crosspoints killed at `crosspoint_at` (`0` disables).
    pub crosspoint_faults: usize,
    /// Slot the crosspoint faults strike.
    pub crosspoint_at: u64,
    /// Slots until a failed crosspoint recovers (`u64::MAX` never).
    pub crosspoint_duration: u64,
    /// Kills one copy survives before its structured drop.
    pub retry_budget: u32,
    /// Scoreboard quarantine window in slots.
    pub quarantine: u64,
    /// Per-VOQ address-cell cap (`0` = unbounded, the default).
    pub voq_cap: usize,
    /// Per-input aggregate copy cap (`0` = unbounded, the default).
    pub input_cap: usize,
    /// Admission policy applied when a cap is finite (inert otherwise).
    pub admission: AdmissionPolicy,
}

impl Default for ChaosScenario {
    fn default() -> ChaosScenario {
        ChaosScenario {
            n: 8,
            seed: 1,
            slots: 2_000,
            load: 0.6,
            flap_period: 0,
            flap_duration: 0,
            crosspoint_faults: 0,
            crosspoint_at: 0,
            crosspoint_duration: 0,
            retry_budget: 3,
            quarantine: 200,
            voq_cap: 0,
            input_cap: 0,
            admission: AdmissionPolicy::DropTail,
        }
    }
}

/// Field names in shrink order (fault knobs first: zeroing them disables
/// whole fault dimensions, which is the biggest single-step reduction).
const FIELDS: &[&str] = &[
    "flap_period",
    "flap_duration",
    "crosspoint_faults",
    "crosspoint_at",
    "crosspoint_duration",
    "voq_cap",
    "input_cap",
    "admission",
    "retry_budget",
    "quarantine",
    "load",
    "slots",
    "n",
    "seed",
];

impl ChaosScenario {
    /// The value of one named field, rendered as its spec string.
    fn get(&self, name: &str) -> String {
        match name {
            "n" => self.n.to_string(),
            "seed" => self.seed.to_string(),
            "slots" => self.slots.to_string(),
            "load" => self.load.to_string(),
            "flap_period" => self.flap_period.to_string(),
            "flap_duration" => self.flap_duration.to_string(),
            "crosspoint_faults" => self.crosspoint_faults.to_string(),
            "crosspoint_at" => self.crosspoint_at.to_string(),
            "crosspoint_duration" => self.crosspoint_duration.to_string(),
            "retry_budget" => self.retry_budget.to_string(),
            "quarantine" => self.quarantine.to_string(),
            "voq_cap" => self.voq_cap.to_string(),
            "input_cap" => self.input_cap.to_string(),
            "admission" => self.admission.as_str().to_string(),
            other => unreachable!("unknown scenario field {other}"),
        }
    }

    /// Set one named field from its spec string.
    fn set(&mut self, name: &str, value: &str) -> Result<(), String> {
        fn num<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("bad value {value} for {name}"))
        }
        match name {
            "n" => self.n = num(name, value)?,
            "seed" => self.seed = num(name, value)?,
            "slots" => self.slots = num(name, value)?,
            "load" => self.load = num(name, value)?,
            "flap_period" => self.flap_period = num(name, value)?,
            "flap_duration" => self.flap_duration = num(name, value)?,
            "crosspoint_faults" => self.crosspoint_faults = num(name, value)?,
            "crosspoint_at" => self.crosspoint_at = num(name, value)?,
            "crosspoint_duration" => {
                self.crosspoint_duration = if value == "never" {
                    u64::MAX
                } else {
                    num(name, value)?
                }
            }
            "retry_budget" => self.retry_budget = num(name, value)?,
            "quarantine" => self.quarantine = num(name, value)?,
            "voq_cap" => self.voq_cap = num(name, value)?,
            "input_cap" => self.input_cap = num(name, value)?,
            "admission" => {
                self.admission = match value {
                    "drop_tail" => AdmissionPolicy::DropTail,
                    "pushout" => AdmissionPolicy::Pushout,
                    "fair_shed" => AdmissionPolicy::FairShed,
                    other => return Err(format!("unknown admission policy {other}")),
                }
            }
            other => return Err(format!("unknown scenario field {other}")),
        }
        Ok(())
    }

    /// Parse a `name=value,...` spec over the default scenario.
    pub fn parse(spec: &str) -> Result<ChaosScenario, SimError> {
        let mut sc = ChaosScenario::default();
        let err = |m: String| SimError::Usage(format!("--scenario {spec}: {m}"));
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (name, value) = pair
                .split_once('=')
                .ok_or_else(|| err(format!("expected name=value, got {pair}")))?;
            sc.set(name.trim(), value.trim()).map_err(err)?;
        }
        sc.validate().map_err(err)?;
        Ok(sc)
    }

    /// Reject scenarios the runner cannot execute meaningfully.
    fn validate(&self) -> Result<(), String> {
        if !(2..=64).contains(&self.n) {
            return Err(format!("n={} outside 2..=64", self.n));
        }
        if self.slots == 0 || self.slots > 10_000_000 {
            return Err(format!("slots={} outside 1..=10^7", self.slots));
        }
        // p = load/(b·n) must stay a probability. Infinite buffers also
        // require an admissible load (<= 1.0) or the drain phase never
        // ends; finite buffers bound the backlog by construction, so
        // buffer-pressure campaigns may offer inadmissible loads.
        let load_cap = if self.buffer_config().is_bounded() {
            (CHAOS_B * self.n as f64).min(2.0)
        } else {
            (CHAOS_B * self.n as f64).min(1.0)
        };
        if !(self.load > 0.0 && self.load <= load_cap) {
            return Err(format!("load={} not in (0, {load_cap}]", self.load));
        }
        if self.flap_period > 0 && self.flap_duration >= self.flap_period {
            return Err("flap_duration must be < flap_period".into());
        }
        Ok(())
    }

    /// The non-default parameters, in [`FIELDS`] order.
    pub fn non_default_params(&self) -> Vec<(&'static str, String)> {
        let base = ChaosScenario::default();
        FIELDS
            .iter()
            .filter(|f| self.get(f) != base.get(f))
            .map(|f| {
                let v = match (*f, self.crosspoint_duration) {
                    ("crosspoint_duration", u64::MAX) => "never".to_string(),
                    _ => self.get(f),
                };
                (*f, v)
            })
            .collect()
    }

    /// The `--scenario` spec reproducing this scenario (empty string for
    /// the all-defaults scenario).
    pub fn cli_spec(&self) -> String {
        self.non_default_params()
            .into_iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The buffer limits this scenario runs under (`unbounded` when both
    /// caps are 0, which is the default and keeps legacy scenarios
    /// bit-identical).
    pub fn buffer_config(&self) -> BufferConfig {
        BufferConfig::bounded(self.voq_cap, self.input_cap).with_policy(self.admission)
    }

    /// The egress-mode fault schedule this scenario injects.
    pub fn fault_config(&self) -> FaultConfig {
        FaultConfig {
            seed: self.seed ^ 0xC0DE,
            flap_period: self.flap_period,
            flap_duration: self.flap_duration,
            crosspoint_faults: self.crosspoint_faults,
            crosspoint_at: self.crosspoint_at,
            crosspoint_duration: self.crosspoint_duration,
            mode: FaultMode::Egress,
            retry_budget: self.retry_budget,
        }
    }
}

/// Everything measured and checked in one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The scenario that was run.
    pub scenario: ChaosScenario,
    /// First invariant violation, rendered (`None` when clean).
    pub violation: Option<String>,
    /// Whether the backlog fully drained within the drain budget (a
    /// `false` here is the campaign's deadlock detector).
    pub drained: bool,
    /// `admitted − delivered − reconciled − backlog` at end of run: the
    /// egress conservation residue. Nonzero means a `fanoutCounter` was
    /// lost or double-counted.
    pub unreconciled: i64,
    /// Copies admitted through the checker.
    pub admitted_copies: u64,
    /// Copies delivered through the checker.
    pub delivered_copies: u64,
    /// Structured drops reconciled against admissions.
    pub reconciled_drops: u64,
    /// Copies refused or pushed out at admission (nonzero only when the
    /// scenario runs with finite buffers).
    pub admission_drops: u64,
    /// Recovery metrics distilled from the observability events.
    pub recovery: RecoverySummary,
    /// The fault layer's own accounting.
    pub fault_stats: FaultStats,
    /// Slots executed including the drain phase.
    pub slots_run: u64,
}

impl ChaosOutcome {
    /// Whether this run must fail the campaign.
    pub fn failed(&self) -> bool {
        self.violation.is_some() || !self.drained || self.unreconciled != 0
    }

    /// One status word for tables.
    pub fn status(&self) -> &'static str {
        if self.violation.is_some() {
            "VIOLATION"
        } else if !self.drained {
            "DEADLOCK"
        } else if self.unreconciled != 0 {
            "UNRECONCILED"
        } else {
            "ok"
        }
    }
}

/// Run one scenario on the real stack:
/// `CheckedSwitch<FaultyFabric<MulticastVoqSwitch>>`, scoreboard audits
/// enabled.
pub fn run_scenario(sc: &ChaosScenario) -> ChaosOutcome {
    run_scenario_observed(sc, None, "chaos")
}

/// [`run_scenario`] with live telemetry attached under `scope`: windowed
/// counters stream to the spec's series sink and snapshot bus while the
/// scenario runs. Telemetry is read-only, so the returned outcome is
/// bit-identical to [`run_scenario`]'s.
pub fn run_scenario_observed(
    sc: &ChaosScenario,
    telemetry: Option<&TelemetrySpec>,
    scope: &str,
) -> ChaosOutcome {
    let core = MulticastVoqSwitch::new(sc.n, sc.seed)
        .with_buffers(sc.buffer_config())
        .with_quarantine_slots(sc.quarantine);
    let audit = |sw: &MulticastVoqSwitch, i: PortId, o: PortId, now: Slot| {
        sw.scoreboard().is_quarantined(i, o, now)
    };
    drive(sc, core, Some(&audit), telemetry.map(|t| (t, scope)))
}

/// Run one scenario with a caller-supplied core switch (test fixtures
/// seed deliberate bugs this way); scoreboard audits are skipped because
/// a generic [`Switch`] exposes none.
pub fn run_scenario_on<S: Switch>(sc: &ChaosScenario, core: S) -> ChaosOutcome {
    drive::<S>(sc, core, None, None)
}

#[allow(clippy::type_complexity)]
fn drive<S: Switch>(
    sc: &ChaosScenario,
    core: S,
    audit: Option<&dyn Fn(&S, PortId, PortId, Slot) -> bool>,
    telemetry: Option<(&TelemetrySpec, &str)>,
) -> ChaosOutcome {
    debug_assert!(sc.validate().is_ok(), "unvalidated scenario: {sc:?}");
    let fabric = FaultyFabric::new(core, sc.fault_config()).with_event_recording();
    let mut checked = CheckedSwitch::new(fabric);
    if let Some(capacity) = sc.buffer_config().max_copies(sc.n) {
        checked = checked.with_capacity(capacity);
    }
    let mut traffic = TrafficKind::bernoulli_at_load(sc.load, CHAOS_B, sc.n)
        .build(sc.n, sc.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));

    // Telemetry rides along exactly like the engine's: one window
    // accumulator, a pre-sized path buffer so window closes never
    // allocate, and the meta record announcing the stream's shape.
    let mut tele = telemetry.map(|(spec, _)| spec.new_telemetry(sc.n));
    let tele_active = tele.is_some();
    let mut quarantine_buf: Vec<(PortId, PortId)> = Vec::new();
    if tele_active {
        quarantine_buf.reserve(sc.n * sc.n);
    }
    if let (Some((spec, scope)), Some(t)) = (telemetry, tele.as_ref()) {
        if let Some(series) = spec.series.as_deref() {
            series.emit(scope, &t.meta_event());
        }
    }

    let mut recorder = RecoveryRecorder::new();
    let mut arrivals: Vec<Option<_>> = Vec::with_capacity(sc.n);
    let mut events: Vec<ObsEvent> = Vec::new();
    let mut drops: Vec<DroppedCopy> = Vec::new();
    let mut adrops: Vec<AdmissionDrop> = Vec::new();
    let mut next_packet = 0u64;
    let mut reconciled_drops = 0u64;
    let mut slots_run = 0u64;
    // Deadlock detection for the drain phase. The backlog is
    // non-increasing once admissions stop (a requeued copy stays in the
    // count), so "no decrease across a full stall window" means no copy
    // will ever move again. The window covers everything that can
    // legitimately stall progress: a dead path gates each of its
    // retry-budget+1 kill cycles behind a quarantine window before the
    // re-probe, a flapped output is down for up to a period, and a
    // transient crosspoint outage lasts `crosspoint_duration`. A
    // deadline that resets on every backlog decrease lets a permanent
    // fault serialize a deep VOQ through its kill/requeue cycles
    // however long that takes, while a genuinely wedged switch is
    // flagged after one quiet window.
    let transient_outage = if sc.crosspoint_duration == u64::MAX {
        0
    } else {
        sc.crosspoint_duration
    };
    let stall_window = (u64::from(sc.retry_budget) + 2) * sc.quarantine.max(1)
        + sc.flap_period
        + transient_outage
        + 1_000;
    let mut best_backlog = u64::MAX;
    let mut deadline = sc.slots + stall_window;

    let mut t = 0u64;
    loop {
        let now = Slot(t);
        // Clocks are read only when telemetry is attached, so the plain
        // chaos path stays untouched.
        let tele_timer = tele_active.then(SpanTimer::start);
        let admitted_before = next_packet;
        if t < sc.slots {
            traffic.next_slot(now, &mut arrivals);
            for (input, dests) in arrivals.iter_mut().enumerate() {
                if let Some(dests) = dests.take() {
                    next_packet += 1;
                    checked.admit(Packet::new(
                        PacketId(next_packet),
                        now,
                        PortId::new(input),
                        dests,
                    ));
                }
            }
        } else {
            let copies = checked.backlog().copies as u64;
            if copies == 0 {
                break; // fully drained
            }
            if copies < best_backlog {
                best_backlog = copies;
                deadline = t + stall_window;
            }
            if t >= deadline {
                break; // a full stall window without progress: deadlock
            }
        }
        let sched_timer = tele_active.then(SpanTimer::start);
        let outcome = checked.run_slot(now);
        let sched_ns = sched_timer.map_or(0, |tm| tm.elapsed_ns());
        slots_run = t + 1;

        checked.drain_events(&mut events);
        for e in events.drain(..) {
            if let Some(tele) = tele.as_mut() {
                tele.observe_event(&e);
            }
            match e {
                ObsEvent::CopyKilled { requeued, .. } => recorder.record_kill(requeued),
                ObsEvent::CopyRecovered { kills, latency, .. } => {
                    recorder.record_recovery(kills, latency)
                }
                _ => {}
            }
        }
        checked.drain_reconciled_drops(&mut drops);
        for _ in drops.drain(..) {
            recorder.record_loss();
            reconciled_drops += 1;
        }
        // Admission drops are per-copy records; draining every slot
        // keeps the core's ledger bounded over long campaigns.
        checked.drain_admission_drops(&mut adrops);
        adrops.clear();

        if let Some(audit) = audit {
            if t % AUDIT_EVERY == AUDIT_EVERY - 1 {
                let (mut hits, mut false_alarms, mut misses) = (0u64, 0u64, 0u64);
                let fabric = checked.inner();
                let core = fabric.inner();
                for i in 0..sc.n {
                    for o in 0..sc.n {
                        let (i, o) = (PortId::new(i), PortId::new(o));
                        let truth = fabric.path_down(i, o, now);
                        let marked = audit(core, i, o, now);
                        match (truth, marked) {
                            (true, true) => hits += 1,
                            (false, true) => false_alarms += 1,
                            (true, false) => misses += 1,
                            (false, false) => {}
                        }
                    }
                }
                recorder.record_scoreboard_audit(hits, false_alarms, misses);
            }
        }

        // Fold this slot into the live window; a full stride closes it
        // and publishes the scope's snapshot, mirroring the engine.
        if let Some(tele) = tele.as_mut() {
            let delivered_now = outcome.departures.len() as u64;
            let completed_now = outcome.departures.iter().filter(|d| d.last_copy).count() as u64;
            let wall_ns = tele_timer.map_or(0, |tm| tm.elapsed_ns());
            tele.record_slot(
                next_packet - admitted_before,
                delivered_now,
                completed_now,
                sched_ns,
                wall_ns,
            );
            if tele.window_full() {
                quarantine_buf.clear();
                checked.quarantined_paths(now, &mut quarantine_buf);
                tele.set_path_state(&quarantine_buf);
                let summary = tele.close_window(checked.backlog().copies as u64);
                if let Some((spec, scope)) = telemetry {
                    if let Some(series) = spec.series.as_deref() {
                        series.emit(scope, &summary);
                    }
                    if let Some(bus) = spec.bus.as_deref() {
                        bus.publish(scope, tele, false);
                    }
                }
            }
        }

        if checked.violation().is_some() {
            break; // first violation ends the run; the scenario failed
        }
        t += 1;
    }

    // Telemetry teardown: close the partial final window, flush the
    // series stream, and publish the completion-marked snapshot.
    if let (Some((spec, scope)), Some(tele)) = (telemetry, tele.as_mut()) {
        quarantine_buf.clear();
        checked.quarantined_paths(Slot(slots_run.saturating_sub(1)), &mut quarantine_buf);
        tele.set_path_state(&quarantine_buf);
        if let Some(summary) = tele.finish(checked.backlog().copies as u64) {
            if let Some(series) = spec.series.as_deref() {
                series.emit(scope, &summary);
            }
        }
        if let Some(series) = spec.series.as_deref() {
            series.flush();
        }
        if let Some(bus) = spec.bus.as_deref() {
            bus.publish(scope, tele, true);
        }
    }

    let backlog = checked.backlog();
    let admitted = checked.admitted_copies();
    let delivered = checked.delivered_copies();
    let reconciled = checked.reconciled_copies();
    let admission_drops = checked.admission_dropped_copies();
    ChaosOutcome {
        scenario: *sc,
        violation: checked.violation().map(|v| v.to_string()),
        drained: backlog.is_empty(),
        unreconciled: admitted as i64
            - delivered as i64
            - reconciled as i64
            - admission_drops as i64
            - backlog.copies as i64,
        admitted_copies: admitted,
        delivered_copies: delivered,
        reconciled_drops,
        admission_drops,
        recovery: recorder.summary(),
        fault_stats: checked.inner().stats(),
        slots_run,
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic scenario list of a campaign: `count` scenarios
/// derived from `seed`, cycling through crosspoint-only, flap-only and
/// combined fault flavours with varied budgets, windows and loads.
/// `smoke` shortens the loaded phase so a CI campaign stays in seconds.
pub fn campaign_scenarios(seed: u64, count: usize, smoke: bool) -> Vec<ChaosScenario> {
    let mut state = seed ^ 0xCAFE_F00D;
    (0..count)
        .map(|k| {
            let r = splitmix64(&mut state);
            let mut sc = ChaosScenario {
                seed: seed.wrapping_add(k as u64).wrapping_mul(2).wrapping_add(1),
                slots: if smoke { 1_200 } else { 4_000 },
                // Integer hundredths so the spec renders as `0.4`, not
                // an accumulated-error float like `0.39999999999999997`.
                load: (35 + 5 * (r % 8)) as f64 / 100.0,
                retry_budget: ((r >> 8) % 5) as u32,
                quarantine: [50, 100, 200][(r >> 16) as usize % 3],
                ..ChaosScenario::default()
            };
            match (r >> 32) % 3 {
                0 | 2 => {
                    sc.crosspoint_faults = 1 + (r >> 40) as usize % 3;
                    sc.crosspoint_at = sc.slots / 8 + (r >> 48) % (sc.slots / 4);
                    sc.crosspoint_duration = if (r >> 56).is_multiple_of(4) {
                        u64::MAX // permanent: exercises the drop path
                    } else {
                        50 + (r >> 57) % 350
                    };
                }
                _ => {}
            }
            if (r >> 32) % 3 >= 1 {
                sc.flap_period = 200 + (r >> 44) % 800;
                sc.flap_duration = 10 + (r >> 52) % 70;
            }
            sc
        })
        .collect()
}

/// The deterministic buffer-pressure campaign: `count` scenarios of
/// bursty *inadmissible* load (1.1–1.6 offered) against tiny finite
/// buffers, cycling admission policies and layering egress faults on
/// top — the worst-case mix for admission accounting. Finite buffers
/// bound every backlog, so these scenarios drain and terminate like any
/// other; what they stress is the extended conservation law
/// (`admitted == delivered + reconciled + admission drops + backlog`).
pub fn buffer_pressure_scenarios(seed: u64, count: usize, smoke: bool) -> Vec<ChaosScenario> {
    let mut state = seed ^ 0xBEEF_CAFE;
    let policies = [
        AdmissionPolicy::DropTail,
        AdmissionPolicy::Pushout,
        AdmissionPolicy::FairShed,
    ];
    (0..count)
        .map(|k| {
            let r = splitmix64(&mut state);
            let mut sc = ChaosScenario {
                seed: seed.wrapping_add(k as u64).wrapping_mul(2).wrapping_add(1),
                slots: if smoke { 800 } else { 3_000 },
                // Inadmissible by construction: 1.1 .. 1.6 in integer
                // hundredths so specs render cleanly.
                load: (110 + 10 * (r % 6)) as f64 / 100.0,
                voq_cap: [2, 4, 8][(r >> 8) as usize % 3],
                input_cap: [8, 16, 32][(r >> 12) as usize % 3],
                admission: policies[k % policies.len()],
                retry_budget: ((r >> 16) % 3) as u32,
                quarantine: [40, 80][(r >> 20) as usize % 2],
                ..ChaosScenario::default()
            };
            // Every other scenario also takes egress faults, so pushout
            // and requeue interleave with admission sheds.
            if k % 2 == 1 {
                sc.crosspoint_faults = 1 + (r >> 24) as usize % 2;
                sc.crosspoint_at = sc.slots / 4;
                sc.crosspoint_duration = 60 + (r >> 28) % 200;
            }
            sc
        })
        .collect()
}

/// Run one chaos cell under a wall-clock watchdog.
///
/// Buffer-pressure scenarios combine livelock-prone ingredients (full
/// buffers, retries, faults); a cell that wedges must fail the campaign
/// in bounded time rather than hang CI. The cell runs on its own named
/// thread; if it does not report within `limit_millis`, `Err(limit)` is
/// returned and the stuck thread is abandoned (the process exits with
/// the campaign verdict anyway). Mirrors the sweep runner's cell guard.
pub fn run_guarded<T: Send + 'static>(
    limit_millis: u64,
    run: impl FnOnce() -> T + Send + 'static,
) -> Result<T, u64> {
    let (tx, rx) = std::sync::mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name("fifoms-chaos-cell".into())
        .spawn(move || {
            // The receiver may be gone already (timeout): ignore the error.
            let _ = tx.send(run());
        });
    if spawned.is_err() {
        return Err(0);
    }
    match rx.recv_timeout(std::time::Duration::from_millis(limit_millis)) {
        Ok(out) => Ok(out),
        Err(_) => Err(limit_millis),
    }
}

/// Shrink a failing scenario to a minimal reproducer.
///
/// Greedy delta-debugging against [`ChaosScenario::default`]: for each
/// parameter (fault knobs first) try resetting it to its default; keep
/// the reset whenever `still_fails` says the reduced scenario still
/// reproduces the failure. Passes repeat until a full pass changes
/// nothing. Returns the reduced scenario and how many oracle runs the
/// shrink spent.
pub fn shrink_scenario(
    start: &ChaosScenario,
    still_fails: impl Fn(&ChaosScenario) -> bool,
) -> (ChaosScenario, usize) {
    let base = ChaosScenario::default();
    let mut current = *start;
    let mut runs = 0usize;
    loop {
        let mut changed = false;
        for field in FIELDS {
            if current.get(field) == base.get(field) {
                continue;
            }
            let mut candidate = current;
            candidate
                .set(field, &base.get(field))
                .expect("default value round-trips");
            if candidate.validate().is_err() {
                continue;
            }
            runs += 1;
            if still_fails(&candidate) {
                current = candidate;
                changed = true;
            }
        }
        if !changed {
            return (current, runs);
        }
    }
}

/// [`shrink_scenario`] with a watchdog re-armed around *every* probe.
///
/// Shrink candidates of a wedged scenario are themselves livelock-prone
/// — often more so, since the shrink strips the faults that eventually
/// broke the livelock. Each probe therefore runs under its own
/// [`run_guarded`] window of `limit_millis`; a probe that fails to
/// report in time counts as "still fails" (the reproducer of a hang is
/// a hang) and its thread is abandoned. The unguarded
/// [`shrink_scenario`] with a raw `run_scenario` oracle must only be
/// used where the probes are known to terminate.
pub fn shrink_scenario_guarded<F>(
    start: &ChaosScenario,
    limit_millis: u64,
    probe: F,
) -> (ChaosScenario, usize)
where
    F: Fn(&ChaosScenario) -> ChaosOutcome + Clone + Send + 'static,
{
    shrink_scenario(start, move |candidate| {
        let cell = *candidate;
        let probe = probe.clone();
        run_guarded(limit_millis, move || probe(&cell))
            .map(|out| out.failed())
            .unwrap_or(true)
    })
}

/// Checkpoint-file fault modes the corruption campaign injects between a
/// simulated crash and its recovery (DESIGN.md §15).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckpointFault {
    /// The newest checkpoint file is cut mid-payload (a torn write that
    /// somehow bypassed the atomic temp+rename, e.g. filesystem loss).
    TornWrite,
    /// One byte of the newest checkpoint is flipped (media corruption).
    BitFlip,
    /// The newest checkpoint is truncated to a few header bytes.
    Truncation,
    /// A stale `.tmp` from a crashed atomic write litters the directory
    /// (the checkpoints themselves stay valid; startup must sweep it).
    StaleTmp,
}

impl CheckpointFault {
    /// Every mode, in campaign order.
    pub const ALL: [CheckpointFault; 4] = [
        CheckpointFault::TornWrite,
        CheckpointFault::BitFlip,
        CheckpointFault::Truncation,
        CheckpointFault::StaleTmp,
    ];

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CheckpointFault::TornWrite => "torn-write",
            CheckpointFault::BitFlip => "bit-flip",
            CheckpointFault::Truncation => "truncation",
            CheckpointFault::StaleTmp => "stale-tmp",
        }
    }
}

/// Verdict of one corruption-campaign cell.
#[derive(Clone, Debug)]
pub struct CorruptionOutcome {
    /// The fault injected.
    pub fault: CheckpointFault,
    /// Checkpoint sequence the recovery actually restored from.
    pub resumed_seq: Option<u64>,
    /// Sequence it *should* restore from (the previous valid checkpoint
    /// for corrupting faults; the newest for the stale-tmp fault).
    pub expected_seq: u64,
    /// Whether the resumed run completed without error.
    pub recovered: bool,
    /// Whether the resumed run's results are bit-identical to the
    /// uninterrupted reference run.
    pub bit_identical: bool,
    /// Failure detail, when any check failed.
    pub detail: Option<String>,
}

impl CorruptionOutcome {
    /// Whether the cell proved the fallback it was meant to prove.
    pub fn ok(&self) -> bool {
        self.recovered && self.bit_identical && self.resumed_seq == Some(self.expected_seq)
    }
}

/// Workload + kill geometry of every corruption cell: 1 200 slots with a
/// checkpoint every 300, killed at slot 1 000 — so checkpoints seq 1–3
/// exist at the crash and seq 3 (the newest) is the corruption target,
/// leaving seq 2 in the *other* rotation file as the fallback.
const CORRUPTION_SLOTS: u64 = 1_200;
const CORRUPTION_EVERY: u64 = 300;
const CORRUPTION_KILL: u64 = 1_000;

fn corruption_run(
    seed: u64,
    dir: &std::path::Path,
    kill: Option<u64>,
    resume: bool,
) -> Result<crate::engine::RunResult, SimError> {
    let cfg = crate::engine::RunConfig {
        slots: CORRUPTION_SLOTS,
        warmup: CORRUPTION_SLOTS / 4,
        backlog_cap: 100_000,
        sample_every: 50,
    };
    let ck = crate::recover::CheckpointConfig {
        dir: dir.to_path_buf(),
        every: CORRUPTION_EVERY,
    };
    let mut rec = if resume {
        crate::recover::RecoveryRuntime::open(&ck)?
    } else {
        crate::recover::RecoveryRuntime::fresh(&ck)?
    };
    if let Some(slot) = kill {
        rec.kill_at(slot);
    }
    let mut switch = MulticastVoqSwitch::new(8, seed);
    let mut traffic = TrafficKind::Bernoulli { p: 0.3, b: CHAOS_B }.try_build(8, seed ^ 0x5a5a)?;
    crate::engine::try_simulate_recoverable(
        &mut switch,
        traffic.as_mut(),
        &cfg,
        &mut crate::engine::Observer::none(),
        &mut rec,
    )
}

fn inject_checkpoint_fault(dir: &std::path::Path, fault: CheckpointFault) -> std::io::Result<()> {
    // Seq 3 (newest, odd) lives in checkpoint-b.bin.
    let newest = dir.join("checkpoint-b.bin");
    match fault {
        CheckpointFault::TornWrite => {
            let bytes = std::fs::read(&newest)?;
            std::fs::write(&newest, &bytes[..bytes.len() / 2])
        }
        CheckpointFault::BitFlip => {
            let mut bytes = std::fs::read(&newest)?;
            let mid = bytes.len() / 2;
            if let Some(b) = bytes.get_mut(mid) {
                *b ^= 0x20;
            }
            std::fs::write(&newest, &bytes)
        }
        CheckpointFault::Truncation => {
            let bytes = std::fs::read(&newest)?;
            std::fs::write(&newest, &bytes[..bytes.len().min(10)])
        }
        CheckpointFault::StaleTmp => {
            std::fs::write(dir.join("checkpoint-b.bin.tmp"), b"half-written garbage")
        }
    }
}

/// Run the checkpoint-corruption campaign: for each [`CheckpointFault`],
/// crash a checkpointed run between checkpoints, inject the fault, and
/// verify recovery falls back to the expected checkpoint and reproduces
/// the uninterrupted run bit-for-bit.
pub fn run_corruption_campaign(seed: u64, base_dir: &std::path::Path) -> Vec<CorruptionOutcome> {
    let mut outcomes = Vec::with_capacity(CheckpointFault::ALL.len());
    // One uninterrupted reference run shared by every cell.
    let ref_dir = base_dir.join("reference");
    let _ = std::fs::remove_dir_all(&ref_dir);
    let reference = corruption_run(seed, &ref_dir, None, false);
    for fault in CheckpointFault::ALL {
        outcomes.push(run_corruption_cell(seed, base_dir, fault, reference.as_ref()));
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
    outcomes
}

fn run_corruption_cell(
    seed: u64,
    base_dir: &std::path::Path,
    fault: CheckpointFault,
    reference: Result<&crate::engine::RunResult, &SimError>,
) -> CorruptionOutcome {
    let expected_seq = match fault {
        // Corrupting faults lose the newest checkpoint (seq 3); the
        // fallback is the previous valid one in the other rotation file.
        CheckpointFault::TornWrite | CheckpointFault::BitFlip | CheckpointFault::Truncation => 2,
        // A stale tmp file must not cost any checkpoint.
        CheckpointFault::StaleTmp => 3,
    };
    let mut out = CorruptionOutcome {
        fault,
        resumed_seq: None,
        expected_seq,
        recovered: false,
        bit_identical: false,
        detail: None,
    };
    let reference = match reference {
        Ok(r) => r,
        Err(e) => {
            out.detail = Some(format!("reference run failed: {e}"));
            return out;
        }
    };
    let dir = base_dir.join(fault.name());
    let _ = std::fs::remove_dir_all(&dir);
    match corruption_run(seed, &dir, Some(CORRUPTION_KILL), false) {
        Err(SimError::Killed { .. }) => {}
        Err(e) => {
            out.detail = Some(format!("crash phase failed unexpectedly: {e}"));
            return out;
        }
        Ok(_) => {
            out.detail = Some("crash phase completed instead of dying".to_string());
            return out;
        }
    }
    if let Err(e) = inject_checkpoint_fault(&dir, fault) {
        out.detail = Some(format!("fault injection failed: {e}"));
        return out;
    }
    // Peek at what the resume will find, then run it for real.
    let ck = crate::recover::CheckpointConfig {
        dir: dir.clone(),
        every: CORRUPTION_EVERY,
    };
    match crate::recover::RecoveryRuntime::open(&ck) {
        Ok(rec) => out.resumed_seq = rec.resume_info().map(|i| i.seq),
        Err(e) => {
            out.detail = Some(format!("recovery open failed: {e}"));
            return out;
        }
    }
    match corruption_run(seed, &dir, None, true) {
        Ok(result) => {
            out.recovered = true;
            out.bit_identical = result.packets_admitted == reference.packets_admitted
                && result.copies_delivered == reference.copies_delivered
                && result.slots_run == reference.slots_run
                && result.throughput.to_bits() == reference.throughput.to_bits()
                && result.delay.mean_output_oriented.to_bits()
                    == reference.delay.mean_output_oriented.to_bits()
                && result.occupancy.mean.to_bits() == reference.occupancy.mean.to_bits();
            if !out.bit_identical {
                out.detail = Some("recovered results diverge from reference".to_string());
            }
        }
        Err(e) => {
            out.detail = Some(format!("recovery run failed: {e}"));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fifoms_fabric::Backlog;
    use fifoms_types::SlotOutcome;

    #[test]
    fn scenario_spec_roundtrips() {
        let sc = ChaosScenario {
            crosspoint_faults: 2,
            crosspoint_duration: u64::MAX,
            retry_budget: 1,
            ..ChaosScenario::default()
        };
        let spec = sc.cli_spec();
        assert_eq!(
            spec,
            "crosspoint_faults=2,crosspoint_duration=never,retry_budget=1"
        );
        assert_eq!(ChaosScenario::parse(&spec).unwrap(), sc);
        assert_eq!(ChaosScenario::parse("").unwrap(), ChaosScenario::default());
    }

    #[test]
    fn scenario_parse_rejects_nonsense() {
        for bad in [
            "n=1",
            "load=0",
            "load=1.5",
            "slots=0",
            "wibble=3",
            "n",
            "flap_period=10,flap_duration=10",
        ] {
            assert!(ChaosScenario::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn campaign_is_deterministic_and_varied() {
        let a = campaign_scenarios(7, 8, true);
        let b = campaign_scenarios(7, 8, true);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().any(|s| s.crosspoint_faults > 0));
        assert!(a.iter().any(|s| s.flap_period > 0));
        let c = campaign_scenarios(8, 8, true);
        assert_ne!(a, c, "different seeds must give different campaigns");
        for sc in a.iter().chain(&c) {
            sc.validate().expect("generated scenario invalid");
        }
    }

    #[test]
    fn default_scenario_runs_clean_without_faults() {
        let out = run_scenario(&ChaosScenario {
            slots: 400,
            ..ChaosScenario::default()
        });
        assert!(!out.failed(), "{out:?}");
        assert_eq!(out.fault_stats.copies_killed, 0);
        assert_eq!(out.recovery.copies_killed, 0);
        assert_eq!(out.unreconciled, 0);
        assert_eq!(out.delivered_copies, out.admitted_copies);
    }

    #[test]
    fn transient_crosspoint_fault_recovers_without_loss() {
        let out = run_scenario(
            &ChaosScenario::parse("slots=600,crosspoint_faults=2,crosspoint_at=100,crosspoint_duration=80,quarantine=50")
                .unwrap(),
        );
        assert!(!out.failed(), "{out:?}");
        assert!(out.fault_stats.copies_killed > 0, "fault never fired");
        assert!(out.recovery.copies_recovered > 0, "nothing recovered");
        assert_eq!(out.unreconciled, 0);
    }

    #[test]
    fn permanent_fault_escalates_to_reconciled_drops() {
        let out = run_scenario(
            &ChaosScenario::parse(
                "slots=600,crosspoint_faults=2,crosspoint_at=50,crosspoint_duration=never,retry_budget=1,quarantine=40",
            )
            .unwrap(),
        );
        assert!(!out.failed(), "{out:?}");
        assert!(out.reconciled_drops > 0, "no drops despite permanent fault");
        assert_eq!(
            out.admitted_copies,
            out.delivered_copies + out.reconciled_drops,
            "conservation with drops"
        );
        assert!(out.recovery.copies_lost > 0);
    }

    #[test]
    fn smoke_campaign_is_clean_on_the_real_stack() {
        for sc in campaign_scenarios(42, 4, true) {
            let out = run_scenario(&sc);
            assert!(!out.failed(), "scenario {} failed: {out:?}", sc.cli_spec());
        }
    }

    /// A core switch with a deliberately seeded invariant bug: once
    /// crosspoint kills start requeueing copies, it "helpfully" serves
    /// the requeued copy a second time (duplicate delivery), which the
    /// outside checker must flag as a fanout overrun.
    struct DoubleRetry {
        inner: MulticastVoqSwitch,
        dup: Option<fifoms_types::Departure>,
    }

    impl Switch for DoubleRetry {
        fn name(&self) -> String {
            "double-retry".into()
        }
        fn ports(&self) -> usize {
            self.inner.ports()
        }
        fn admit(&mut self, packet: Packet) {
            self.inner.admit(packet);
        }
        fn run_slot(&mut self, now: Slot) -> SlotOutcome {
            let mut out = self.inner.run_slot(now);
            if let Some(d) = self.dup.take() {
                out.departures.push(d);
                out.connections += 1;
            }
            out
        }
        fn queue_sizes(&self, out: &mut Vec<usize>) {
            self.inner.queue_sizes(out);
        }
        fn backlog(&self) -> Backlog {
            self.inner.backlog()
        }
        fn copy_failed(
            &mut self,
            d: &fifoms_types::Departure,
            now: Slot,
            requeue: bool,
        ) -> fifoms_types::RetryDisposition {
            self.dup = Some(*d); // the bug: replay the killed copy
            self.inner.copy_failed(d, now, requeue)
        }
    }

    #[test]
    fn buffer_pressure_campaign_is_deterministic_and_inadmissible() {
        let a = buffer_pressure_scenarios(3, 6, true);
        assert_eq!(a, buffer_pressure_scenarios(3, 6, true));
        assert_eq!(a.len(), 6);
        for sc in &a {
            sc.validate().expect("generated scenario invalid");
            assert!(sc.load > 1.0, "pressure scenarios must be inadmissible");
            assert!(sc.buffer_config().is_bounded());
        }
        assert!(a.iter().any(|s| s.admission == AdmissionPolicy::Pushout));
        assert!(a.iter().any(|s| s.crosspoint_faults > 0));
    }

    #[test]
    fn buffer_pressure_cells_prove_the_extended_law() {
        for sc in buffer_pressure_scenarios(11, 3, true) {
            let out = run_scenario(&sc);
            assert!(!out.failed(), "scenario {} failed: {out:?}", sc.cli_spec());
            assert!(
                out.admission_drops > 0,
                "inadmissible load on tiny buffers must shed: {}",
                sc.cli_spec()
            );
            assert_eq!(
                out.admitted_copies,
                out.delivered_copies + out.reconciled_drops + out.admission_drops,
                "drained run must balance exactly: {out:?}"
            );
        }
    }

    #[test]
    fn bounded_scenarios_may_offer_inadmissible_load() {
        assert!(ChaosScenario::parse("load=1.4").is_err(), "unbounded stays <= 1");
        let sc = ChaosScenario::parse("load=1.4,voq_cap=4,admission=pushout").unwrap();
        assert_eq!(sc.admission, AdmissionPolicy::Pushout);
        let spec = sc.cli_spec();
        assert_eq!(spec, "voq_cap=4,admission=pushout,load=1.4");
        assert_eq!(ChaosScenario::parse(&spec).unwrap(), sc);
        assert!(
            ChaosScenario::parse("voq_cap=4,load=2.5").is_err(),
            "even bounded loads stop at min(2, b*n)"
        );
        assert!(ChaosScenario::parse("admission=sometimes").is_err());
    }

    #[test]
    fn watchdog_flags_a_hung_cell_and_passes_a_healthy_one() {
        let hung = run_guarded(40, || {
            std::thread::sleep(std::time::Duration::from_millis(3_000));
            run_scenario(&ChaosScenario {
                slots: 10,
                ..ChaosScenario::default()
            })
        });
        assert_eq!(hung.err(), Some(40), "a wedged cell must time out, not hang");
        let healthy = run_guarded(60_000, || {
            run_scenario(&ChaosScenario {
                slots: 200,
                ..ChaosScenario::default()
            })
        });
        assert!(!healthy.expect("healthy cell finished").failed());
    }

    #[test]
    fn guarded_shrink_rearms_the_watchdog_on_every_probe() {
        // Regression: the shrink oracle used to call run_scenario
        // unguarded, so a shrink candidate that wedged hung the whole
        // delta-debug loop even though the original cell had a watchdog.
        // Here *every* probe wedges far longer than the limit; the shrink
        // must still terminate in bounded time, counting each timed-out
        // probe as "still fails" and reducing all the way to the default.
        let start = ChaosScenario {
            crosspoint_faults: 1,
            crosspoint_at: 500,
            crosspoint_duration: 100,
            retry_budget: 2,
            ..ChaosScenario::default()
        };
        let began = std::time::Instant::now();
        let (min, runs) = shrink_scenario_guarded(&start, 40, |_| {
            std::thread::sleep(std::time::Duration::from_millis(5_000));
            run_scenario(&ChaosScenario {
                slots: 10,
                ..ChaosScenario::default()
            })
        });
        assert!(runs > 0);
        assert_eq!(min, ChaosScenario::default());
        assert!(
            began.elapsed() < std::time::Duration::from_millis(4_000),
            "shrink blocked on a wedged probe: {:?}",
            began.elapsed()
        );
    }

    #[test]
    fn corruption_campaign_proves_checkpoint_fallback() {
        let dir = std::env::temp_dir().join(format!(
            "fifoms-corruption-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let outcomes = run_corruption_campaign(11, &dir);
        assert_eq!(outcomes.len(), CheckpointFault::ALL.len());
        for out in &outcomes {
            assert!(
                out.ok(),
                "{} cell failed: resumed from {:?} (expected {}), {}",
                out.fault.name(),
                out.resumed_seq,
                out.expected_seq,
                out.detail.as_deref().unwrap_or("no detail")
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A stack with a deliberately seeded *accounting* bug: the first
    /// admission-drop record the finite-buffered core produces is
    /// swallowed instead of surfaced, so one shed copy vanishes from
    /// the ledger and the extended conservation law cannot balance.
    struct LeakyAdmission {
        inner: MulticastVoqSwitch,
        leaked: bool,
    }

    impl Switch for LeakyAdmission {
        fn name(&self) -> String {
            "leaky-admission".into()
        }
        fn ports(&self) -> usize {
            self.inner.ports()
        }
        fn admit(&mut self, packet: Packet) {
            self.inner.admit(packet);
        }
        fn run_slot(&mut self, now: Slot) -> SlotOutcome {
            self.inner.run_slot(now)
        }
        fn queue_sizes(&self, out: &mut Vec<usize>) {
            self.inner.queue_sizes(out);
        }
        fn backlog(&self) -> Backlog {
            self.inner.backlog()
        }
        fn copy_failed(
            &mut self,
            d: &fifoms_types::Departure,
            now: Slot,
            requeue: bool,
        ) -> fifoms_types::RetryDisposition {
            self.inner.copy_failed(d, now, requeue)
        }
        fn drain_admission_drops(&mut self, out: &mut Vec<AdmissionDrop>) {
            let before = out.len();
            self.inner.drain_admission_drops(out);
            if !self.leaked && out.len() > before {
                out.remove(before); // the bug: one record vanishes
                self.leaked = true;
            }
        }
    }

    #[test]
    fn leaked_admission_accounting_shrinks_to_a_minimal_reproducer() {
        let fails = |sc: &ChaosScenario| {
            let core = MulticastVoqSwitch::new(sc.n, sc.seed).with_buffers(sc.buffer_config());
            let out = run_scenario_on(
                sc,
                LeakyAdmission {
                    inner: core,
                    leaked: false,
                },
            );
            out.failed()
        };
        // An over-specified buffer-pressure scenario carrying the bug.
        let start = ChaosScenario::parse(
            "seed=9,slots=900,load=1.4,voq_cap=2,input_cap=16,admission=pushout,\
             crosspoint_faults=1,crosspoint_at=100,crosspoint_duration=200,\
             retry_budget=2,quarantine=50,flap_period=400,flap_duration=30",
        )
        .unwrap();
        assert!(fails(&start), "seeded accounting bug did not trigger");
        let (min, runs) = shrink_scenario(&start, fails);
        assert!(fails(&min), "shrunk scenario no longer reproduces");
        let params = min.non_default_params();
        assert!(
            params.len() <= 3,
            "reproducer has {} params ({}), ran {} probes",
            params.len(),
            min.cli_spec(),
            runs
        );
        // The bug needs a finite buffer to shed at all, so a cap
        // survives; the fault knobs are irrelevant and must shrink away.
        assert!(min.voq_cap > 0 || min.input_cap > 0);
        assert_eq!(min.crosspoint_faults, 0);
        assert_eq!(min.flap_period, 0);
    }

    #[test]
    fn seeded_bug_is_caught_and_shrinks_to_three_params() {
        let fails = |sc: &ChaosScenario| {
            let core = MulticastVoqSwitch::new(sc.n, sc.seed);
            let out = run_scenario_on(sc, DoubleRetry { inner: core, dup: None });
            out.failed()
        };
        // A deliberately over-specified failing scenario.
        let start = ChaosScenario::parse(
            "seed=5,slots=800,load=0.5,crosspoint_faults=2,crosspoint_at=100,\
             crosspoint_duration=300,retry_budget=4,quarantine=60,flap_period=500,\
             flap_duration=40",
        )
        .unwrap();
        assert!(fails(&start), "seeded bug did not trigger");
        let (min, runs) = shrink_scenario(&start, fails);
        assert!(fails(&min), "shrunk scenario no longer reproduces");
        let params = min.non_default_params();
        assert!(
            params.len() <= 3,
            "reproducer has {} params ({}), ran {} probes",
            params.len(),
            min.cli_spec(),
            runs
        );
        // The bug needs egress kills, so the crosspoint knobs survive.
        assert!(min.crosspoint_faults > 0);
        assert_eq!(min.flap_period, 0, "irrelevant flap knobs must shrink away");
    }
}
