//! Self-profiling: where does the engine's wall time go?
//!
//! [`profile_run`] executes one `(switch, traffic)` run while sampling the
//! engine's four phases — traffic generation, admission, scheduling
//! (`run_slot`), and statistics — into a
//! [`PhaseProfiler`](fifoms_obs::PhaseProfiler). Only every `sample_every`-th
//! slot is timed, so the clock reads cannot dominate what they measure;
//! the whole-run wall clock and end-to-end slots/sec are exact.
//!
//! The profiled run takes the same engine code path as an unprofiled one
//! (profiling only adds predicted-untaken branches), so the returned
//! [`RunResult`] is bit-identical to [`try_simulate`](crate::try_simulate)
//! on the same inputs — asserted by the observability suite. This is the
//! baseline harness behind `fifoms-repro profile` and `BENCH_profile.json`:
//! future perf PRs are measured against its phase breakdown.

use std::time::Instant;

use fifoms_fabric::Switch;
use fifoms_obs::{Json, PhaseProfiler};
use fifoms_traffic::TrafficModel;
use fifoms_types::SimError;

use crate::engine::{try_simulate_observed, Observer, RunConfig, RunResult};

/// One profiled run: the (unperturbed) measurement plus the phase timings.
#[derive(Debug)]
pub struct ProfileReport {
    /// The run's result — bit-identical to an unprofiled run.
    pub result: RunResult,
    /// Per-phase wall-clock attribution over the sampled slots.
    pub profiler: PhaseProfiler,
    /// The sampling stride that was used (every `k`-th slot timed).
    pub sample_every: u64,
    /// End-to-end wall time of the whole run, in nanoseconds (exact, not
    /// sampled).
    pub total_ns: u64,
}

impl ProfileReport {
    /// End-to-end simulation rate in slots per second.
    pub fn slots_per_sec(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.result.slots_run as f64 / (self.total_ns as f64 / 1e9)
    }

    /// Render as the `BENCH_profile.json` document (validated by
    /// `schemas/bench_profile.schema.json`).
    ///
    /// Emits the `fifoms-bench-profile-v2` shape: `phases` carries the
    /// hierarchical snapshot (each entry has a `path` and `depth`), and a
    /// `slot_time` object summarizes the sampled per-slot wall-time
    /// distribution. The validator still accepts v1 documents.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("schema", "fifoms-bench-profile-v2");
        obj.set("switch", self.result.switch_name.as_str());
        obj.set("traffic", self.result.traffic_name.as_str());
        obj.set("slots_run", self.result.slots_run);
        obj.set("sample_every", self.sample_every);
        obj.set("total_ns", self.total_ns);
        obj.set("slots_per_sec", self.slots_per_sec());
        obj.set("throughput", self.result.throughput);
        obj.set("phases", self.profiler.snapshot());
        let st = self.profiler.slot_times();
        if !st.is_empty() {
            let mut slot_time = Json::object();
            slot_time.set("count", st.count());
            slot_time.set("p50_ns", st.quantile(0.5));
            slot_time.set("p99_ns", st.quantile(0.99));
            slot_time.set("p999_ns", st.quantile(0.999));
            slot_time.set("max_ns", st.max());
            obj.set("slot_time", slot_time);
        }
        obj
    }
}

/// Run one `(switch, traffic)` pair under `cfg`, timing the engine phases
/// on every `sample_every`-th slot (`0` is treated as 1 — every slot).
pub fn profile_run(
    switch: &mut dyn Switch,
    traffic: &mut dyn TrafficModel,
    cfg: &RunConfig,
    sample_every: u64,
) -> Result<ProfileReport, SimError> {
    let sample_every = sample_every.max(1);
    let mut profiler = PhaseProfiler::new();
    let started = Instant::now();
    let result = try_simulate_observed(
        switch,
        traffic,
        cfg,
        &mut Observer {
            sink: None,
            profiler: Some((&mut profiler, sample_every)),
            telemetry: None,
        },
    )?;
    let total_ns = started.elapsed().as_nanos() as u64;
    Ok(ProfileReport {
        result,
        profiler,
        sample_every,
        total_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SwitchKind, TrafficKind};
    use fifoms_obs::schema;

    #[test]
    fn profile_covers_all_four_phases() {
        let mut sw = SwitchKind::Fifoms.build(8, 1);
        let mut tr = TrafficKind::bernoulli_at_load(0.4, 0.25, 8).build(8, 2);
        let report = profile_run(sw.as_mut(), tr.as_mut(), &RunConfig::quick(2_000), 10).unwrap();
        for phase in ["traffic", "admit", "schedule", "stats"] {
            let s = report.profiler.stats(phase).unwrap_or_else(|| {
                panic!("phase {phase} missing from profile");
            });
            assert_eq!(s.calls, 200, "phase {phase}: every 10th of 2000 slots");
        }
        assert!(report.total_ns > 0);
        assert!(report.slots_per_sec() > 0.0);
    }

    #[test]
    fn profiling_does_not_perturb_the_result() {
        let cfg = RunConfig::quick(3_000);
        let mut sw = SwitchKind::Fifoms.build(8, 1);
        let mut tr = TrafficKind::bernoulli_at_load(0.5, 0.25, 8).build(8, 2);
        let plain = crate::try_simulate(sw.as_mut(), tr.as_mut(), &cfg).unwrap();
        let mut sw = SwitchKind::Fifoms.build(8, 1);
        let mut tr = TrafficKind::bernoulli_at_load(0.5, 0.25, 8).build(8, 2);
        let profiled = profile_run(sw.as_mut(), tr.as_mut(), &cfg, 7).unwrap();
        assert_eq!(format!("{plain:?}"), format!("{:?}", profiled.result));
    }

    #[test]
    fn schedule_phase_nests_switch_sub_spans() {
        let mut sw = SwitchKind::Fifoms.build(8, 1);
        let mut tr = TrafficKind::bernoulli_at_load(0.5, 0.25, 8).build(8, 2);
        let report = profile_run(sw.as_mut(), tr.as_mut(), &RunConfig::quick(2_000), 10).unwrap();
        let sched = report.profiler.stats("schedule").expect("schedule phase");
        assert!(
            sched.exclusive_ns < sched.inclusive_ns,
            "schedule should have time attributed to child spans"
        );
        let mut child_incl = 0u64;
        let mut children = 0usize;
        for name in ["voq_scan", "request", "grant", "commit"] {
            let s = report
                .profiler
                .stats(name)
                .unwrap_or_else(|| panic!("sub-span {name} missing"));
            assert!(s.calls > 0, "sub-span {name} never recorded");
            child_incl += s.inclusive_ns;
            children += 1;
        }
        assert!(children >= 3, "need at least 3 nested spans under schedule");
        assert_eq!(
            sched.exclusive_ns + child_incl,
            sched.inclusive_ns,
            "child inclusive times must account exactly for the parent split"
        );
        assert!(!report.profiler.slot_times().is_empty());
    }

    #[test]
    fn json_report_validates_against_checked_in_schema() {
        let mut sw = SwitchKind::Islip(None).build(4, 1);
        let mut tr = TrafficKind::bernoulli_at_load(0.2, 0.5, 4).build(4, 2);
        let report = profile_run(sw.as_mut(), tr.as_mut(), &RunConfig::quick(500), 5).unwrap();
        let doc = report.to_json();
        let schema_text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/bench_profile.schema.json"
        ))
        .expect("schema file present");
        let schema_doc = Json::parse(&schema_text).expect("schema parses");
        schema::validate(&doc, &schema_doc).expect("profile JSON conforms");
    }
}
