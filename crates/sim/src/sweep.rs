//! Grids of simulations: (scheduler × load point), optionally threaded.
//!
//! Beyond the plain serial/parallel runners, this module provides the
//! **fault-isolated** runner used by long sweeps: every grid cell executes
//! behind [`std::panic::catch_unwind`] (and, optionally, a wall-clock
//! watchdog thread with a bounded retry budget), so one crashing or hung
//! scheduler configuration becomes a structured [`CellOutcome::Failed`]
//! row instead of taking the whole grid down. Combined with the
//! [checkpoint journal](crate::checkpoint), a killed sweep resumes from
//! its last finished cell and provably reproduces the identical result
//! set, because every cell is independently and deterministically seeded.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::Duration;

use fifoms_fabric::{
    CheckedSwitch, FaultConfig, FaultyFabric, InstrumentedSwitch, PacketTraceMode, Switch,
};
use fifoms_obs::{EventSink, ProgressMeter};
use fifoms_types::SimError;

use crate::checkpoint::CheckpointJournal;
use crate::engine::{simulate, try_simulate_observed, Observer, RunConfig, RunResult, TelemetrySpec};
use crate::spec::{SwitchKind, TrafficKind};

/// One completed grid cell.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// The scheduler that ran.
    pub switch: SwitchKind,
    /// The nominal load of the point (the x-axis of the paper's figures).
    pub load: f64,
    /// The full measurement.
    pub result: RunResult,
}

/// How the fault-isolated runner treats each grid cell.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellPolicy {
    /// Wall-clock budget per cell attempt. `None` disables the watchdog;
    /// with a budget set, each cell runs on its own worker thread and a
    /// cell that exceeds the budget is abandoned (the stuck thread is
    /// detached and leaked — it cannot be killed safely) and reported as
    /// [`CellFailureReason::Timeout`].
    pub timeout: Option<Duration>,
    /// Extra attempts after a panic or timeout (errors from invalid
    /// parameters are deterministic and never retried).
    pub retries: u32,
    /// Run every cell inside a [`CheckedSwitch`], verifying fabric
    /// invariants each slot and full cell conservation every `k` checked
    /// slots. An invariant violation fails the cell.
    pub check_every: Option<u64>,
    /// Inject fabric faults into every cell (see [`FaultConfig`]). Fault
    /// injection changes results, so it participates in the checkpoint
    /// journal's grid identity; the other fields do not.
    pub faults: Option<FaultConfig>,
}

impl CellPolicy {
    /// Isolation only: catch panics, no watchdog, no checking, no faults.
    pub fn isolated() -> CellPolicy {
        CellPolicy::default()
    }

    /// Isolation plus per-slot invariant checking with conservation
    /// verified every `k` slots.
    pub fn checked(k: u64) -> CellPolicy {
        CellPolicy {
            check_every: Some(k),
            ..CellPolicy::default()
        }
    }
}

/// Why a grid cell failed.
#[derive(Clone, Debug, PartialEq)]
pub enum CellFailureReason {
    /// The cell's scheduler or workload panicked; the payload message.
    Panic(String),
    /// The cell exceeded the policy's wall-clock budget.
    Timeout {
        /// The budget that was exceeded, in milliseconds.
        millis: u64,
    },
    /// The cell reported a structured error (invalid parameters or an
    /// invariant violation), rendered via its `Display`.
    Error(String),
}

impl fmt::Display for CellFailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellFailureReason::Panic(msg) => write!(f, "panicked: {msg}"),
            CellFailureReason::Timeout { millis } => {
                write!(f, "timed out after {millis} ms")
            }
            CellFailureReason::Error(msg) => write!(f, "error: {msg}"),
        }
    }
}

/// A grid cell that did not produce a result.
#[derive(Clone, Debug)]
pub struct FailedCell {
    /// The scheduler of the failed cell.
    pub switch: SwitchKind,
    /// The nominal load of the failed cell.
    pub load: f64,
    /// Attempts made (1 + retries actually used).
    pub attempts: u32,
    /// The last attempt's failure.
    pub reason: CellFailureReason,
}

/// The outcome of one isolated grid cell.
#[derive(Clone, Debug)]
pub enum CellOutcome {
    /// The cell ran to completion.
    Completed(SweepRow),
    /// Every attempt at the cell failed.
    Failed(FailedCell),
}

impl CellOutcome {
    /// The completed row, if any.
    pub fn row(&self) -> Option<&SweepRow> {
        match self {
            CellOutcome::Completed(row) => Some(row),
            CellOutcome::Failed(_) => None,
        }
    }

    /// The failure, if any.
    pub fn failure(&self) -> Option<&FailedCell> {
        match self {
            CellOutcome::Completed(_) => None,
            CellOutcome::Failed(f) => Some(f),
        }
    }
}

/// Everything needed to execute one grid cell, owned and `'static` so a
/// watchdog-guarded cell can run on its own thread.
#[derive(Clone)]
struct CellSpec {
    n: usize,
    sk: SwitchKind,
    tk: TrafficKind,
    load: f64,
    run: RunConfig,
    traffic_seed: u64,
    switch_seed: u64,
    check_every: Option<u64>,
    faults: Option<FaultConfig>,
    /// Shared event sink for tracing; `None` runs the cell unobserved on
    /// the exact same code path (observation is opt-in per sweep).
    trace: Option<Arc<dyn EventSink>>,
    /// Packet-level sampling gate for the flight recorder (only
    /// meaningful when `trace` is set).
    packet_trace: PacketTraceMode,
    /// Live telemetry wiring: each cell builds its own windowed
    /// accumulator from the spec and streams under `scope`.
    telemetry: Option<TelemetrySpec>,
    /// Scope string stamped on every event of this cell (`label@load`).
    scope: String,
}

/// Run one cell, wrapping the switch per policy:
/// `FaultyFabric(CheckedSwitch(switch))` — the checker sits inside the
/// faulty fabric so it only sees traffic that actually entered the
/// switch, keeping conservation meaningful under fault-masking drops.
/// With tracing enabled, an [`InstrumentedSwitch`] sits innermost (so it
/// observes the scheduler itself, not the fault layer) and the fault
/// layer records its maskings as events.
fn exec_cell(spec: &CellSpec) -> Result<SweepRow, SimError> {
    let mut traffic = spec.tk.try_build(spec.n, spec.traffic_seed)?;
    let built = spec.sk.build(spec.n, spec.switch_seed);
    // Telemetry needs the same event-producing stack as tracing: the
    // instrumented wrapper innermost and fault-event recording on.
    let tracing = spec.trace.is_some() || spec.telemetry.is_some();
    let mut telemetry = spec
        .telemetry
        .as_ref()
        .map(|spec_t| spec_t.new_telemetry(spec.n));
    let mut obs = Observer {
        sink: spec
            .trace
            .as_deref()
            .map(|sink| (sink as &dyn EventSink, spec.scope.as_str())),
        profiler: None,
        telemetry: match (&spec.telemetry, telemetry.as_mut()) {
            (Some(spec_t), Some(t)) => Some(spec_t.channel(t, &spec.scope)),
            _ => None,
        },
    };
    let inner: Box<dyn Switch> = if tracing {
        Box::new(InstrumentedSwitch::with_packet_trace(
            built,
            spec.packet_trace,
        ))
    } else {
        built
    };
    let result = match (spec.check_every, spec.faults) {
        (None, None) => {
            let mut sw = inner;
            try_simulate_observed(sw.as_mut(), traffic.as_mut(), &spec.run, &mut obs)?
        }
        (None, Some(fc)) => {
            let mut sw = FaultyFabric::new(inner, fc);
            if tracing {
                sw = sw.with_event_recording();
            }
            try_simulate_observed(&mut sw, traffic.as_mut(), &spec.run, &mut obs)?
        }
        (Some(k), None) => {
            let mut sw = CheckedSwitch::with_check_every(inner, k);
            let r = try_simulate_observed(&mut sw, traffic.as_mut(), &spec.run, &mut obs)?;
            if let Some(v) = sw.violation() {
                return Err(SimError::Invariant(v.clone()));
            }
            r
        }
        (Some(k), Some(fc)) => {
            let mut sw = FaultyFabric::new(CheckedSwitch::with_check_every(inner, k), fc);
            if tracing {
                sw = sw.with_event_recording();
            }
            let r = try_simulate_observed(&mut sw, traffic.as_mut(), &spec.run, &mut obs)?;
            if let Some(v) = sw.inner().violation() {
                return Err(SimError::Invariant(v.clone()));
            }
            r
        }
    };
    Ok(SweepRow {
        switch: spec.sk,
        load: spec.load,
        result,
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

/// One attempt with panic containment.
fn run_cell_protected(spec: &CellSpec) -> Result<SweepRow, CellFailureReason> {
    match catch_unwind(AssertUnwindSafe(|| exec_cell(spec))) {
        Ok(Ok(row)) => Ok(row),
        Ok(Err(e)) => Err(CellFailureReason::Error(e.to_string())),
        Err(payload) => Err(CellFailureReason::Panic(panic_message(payload.as_ref()))),
    }
}

/// One attempt with panic containment and an optional watchdog.
fn run_cell_guarded(
    spec: &CellSpec,
    timeout: Option<Duration>,
) -> Result<SweepRow, CellFailureReason> {
    let Some(limit) = timeout else {
        return run_cell_protected(spec);
    };
    let (tx, rx) = mpsc::channel();
    let owned = spec.clone();
    let spawned = std::thread::Builder::new()
        .name("fifoms-cell".into())
        .spawn(move || {
            // The receiver may be gone already (timeout): ignore the error.
            let _ = tx.send(run_cell_protected(&owned));
        });
    if let Err(e) = spawned {
        return Err(CellFailureReason::Error(format!(
            "failed to spawn cell worker: {e}"
        )));
    }
    match rx.recv_timeout(limit) {
        Ok(res) => res,
        Err(_) => Err(CellFailureReason::Timeout {
            millis: limit.as_millis() as u64,
        }),
    }
}

/// Optional sweep-level observation shared across all grid cells.
///
/// [`SweepObserver::disabled`] carries neither a sink nor a meter, and the
/// observed runners then take exactly the unobserved code path — results
/// are bit-identical by construction, not by measurement.
#[derive(Clone, Default)]
pub struct SweepObserver {
    /// Shared event sink every traced cell writes into (e.g. a
    /// [`JsonlSink`](fifoms_obs::JsonlSink)). Events from concurrent
    /// cells interleave line-by-line; each carries its cell's scope.
    pub trace: Option<Arc<dyn EventSink>>,
    /// Progress meter rendered to stderr as cells finish.
    pub progress: Option<Arc<ProgressMeter>>,
    /// Packet-level flight-recorder gate, applied to every traced cell
    /// (ignored when `trace` is `None`). Defaults to
    /// [`PacketTraceMode::Off`]: slot aggregates only.
    pub packet_trace: PacketTraceMode,
    /// Live telemetry wiring (window stride plus time-series sink and/or
    /// snapshot bus), applied to every cell. `None` disables the
    /// windowed layer entirely.
    pub telemetry: Option<TelemetrySpec>,
}

impl SweepObserver {
    /// No tracing, no progress: observed runners behave like plain ones.
    pub fn disabled() -> SweepObserver {
        SweepObserver::default()
    }
}

/// A sweep specification: one figure's worth of simulations.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Switch size `N` (16 in the paper).
    pub n: usize,
    /// Schedulers to compare.
    pub switches: Vec<SwitchKind>,
    /// `(nominal_load, workload)` points, shared by every scheduler.
    pub points: Vec<(f64, TrafficKind)>,
    /// Per-run configuration.
    pub run: RunConfig,
    /// Base RNG seed; each grid cell derives a distinct deterministic
    /// seed, and the *same* workload seed is used across schedulers at a
    /// point so they face identical arrival processes.
    pub seed: u64,
}

impl Sweep {
    /// Execute every cell on the current thread.
    pub fn run_serial(&self) -> Vec<SweepRow> {
        let mut rows = Vec::with_capacity(self.switches.len() * self.points.len());
        for (si, sk) in self.switches.iter().enumerate() {
            for (pi, (load, tk)) in self.points.iter().enumerate() {
                rows.push(self.run_cell(*sk, si, *load, *tk, pi));
            }
        }
        rows
    }

    /// Execute the grid across `threads` worker threads (work-stealing by
    /// atomic index). Results come back in deterministic grid order and
    /// are identical to [`Sweep::run_serial`] because every cell is
    /// seeded independently.
    ///
    /// Cells run fault-isolated: a panicking cell no longer aborts (or
    /// poisons) the rest of the grid — every other cell still completes,
    /// after which the first failure is re-raised with its cell named.
    /// Callers that want failures as data use [`Sweep::run_robust`].
    ///
    /// # Panics
    ///
    /// Panics after the full grid has run if any cell failed.
    pub fn run_parallel(&self, threads: usize) -> Vec<SweepRow> {
        let outcomes = self.run_robust(threads, &CellPolicy::isolated());
        let mut rows = Vec::with_capacity(outcomes.len());
        let mut first_failure = None;
        for outcome in outcomes {
            match outcome {
                CellOutcome::Completed(row) => rows.push(row),
                CellOutcome::Failed(f) => {
                    first_failure.get_or_insert(f);
                }
            }
        }
        if let Some(f) = first_failure {
            panic!(
                "sweep cell {} at load {} failed after {} attempt(s): {}",
                f.switch.label(),
                f.load,
                f.attempts,
                f.reason
            );
        }
        rows
    }

    /// Execute the grid with fault isolation, returning per-cell
    /// [`CellOutcome`]s in deterministic grid order. Failures are data:
    /// a panicking, hung, or invalid cell yields a structured
    /// [`CellOutcome::Failed`] row while every other cell completes.
    pub fn run_robust(&self, threads: usize, policy: &CellPolicy) -> Vec<CellOutcome> {
        self.run_robust_observed(threads, policy, &SweepObserver::disabled())
    }

    /// [`Sweep::run_robust`] with sweep-level observation: per-slot events
    /// stream into `obs.trace` and cell completions tick `obs.progress`.
    pub fn run_robust_observed(
        &self,
        threads: usize,
        policy: &CellPolicy,
        obs: &SweepObserver,
    ) -> Vec<CellOutcome> {
        self.run_cells(threads, policy, None, None, obs)
            .expect("no journal in use")
    }

    /// Execute the grid with fault isolation, journaling every finished
    /// cell to `journal_path`. With `resume`, an existing journal for this
    /// exact sweep is loaded first: its completed cells are returned
    /// as-is (bit-identical, since journal rows round-trip exactly) and
    /// only missing or previously-failed cells run.
    pub fn run_checkpointed(
        &self,
        threads: usize,
        policy: &CellPolicy,
        journal_path: &str,
        resume: bool,
    ) -> Result<Vec<CellOutcome>, SimError> {
        self.run_checkpointed_observed(threads, policy, journal_path, resume, &SweepObserver::disabled())
    }

    /// [`Sweep::run_checkpointed`] with sweep-level observation. Cells
    /// satisfied from the journal still count toward progress (their
    /// recorded slot totals are credited) but emit no events — they never
    /// re-run.
    pub fn run_checkpointed_observed(
        &self,
        threads: usize,
        policy: &CellPolicy,
        journal_path: &str,
        resume: bool,
        obs: &SweepObserver,
    ) -> Result<Vec<CellOutcome>, SimError> {
        let (journal, loaded) = if resume {
            CheckpointJournal::resume(journal_path, self, policy)?
        } else {
            let journal = CheckpointJournal::create(journal_path, self, policy)?;
            let cells = self.switches.len() * self.points.len();
            (journal, vec![None; cells])
        };
        self.run_cells(threads, policy, Some(loaded), Some(&journal), obs)
    }

    /// The shared grid engine. Per-cell results land in individual
    /// [`OnceLock`] slots, so a worker dying mid-cell cannot poison the
    /// result store — the remaining workers keep draining the grid.
    fn run_cells(
        &self,
        threads: usize,
        policy: &CellPolicy,
        preloaded: Option<Vec<Option<CellOutcome>>>,
        journal: Option<&CheckpointJournal>,
        obs: &SweepObserver,
    ) -> Result<Vec<CellOutcome>, SimError> {
        let cells: Vec<(usize, usize)> = (0..self.switches.len())
            .flat_map(|si| (0..self.points.len()).map(move |pi| (si, pi)))
            .collect();
        let slots: Vec<OnceLock<CellOutcome>> = (0..cells.len()).map(|_| OnceLock::new()).collect();
        if let Some(pre) = preloaded {
            for (slot, loaded) in slots.iter().zip(pre) {
                // Reuse journaled successes; failed cells get another run
                // (a resume is the natural moment to retry them).
                if let Some(outcome @ CellOutcome::Completed(_)) = loaded {
                    if let (Some(p), Some(row)) = (&obs.progress, outcome.row()) {
                        p.add_slots(row.result.slots_run);
                        if let Some(line) = p.cell_done() {
                            eprintln!("{line}");
                        }
                    }
                    let _ = slot.set(outcome);
                }
            }
        }
        let next = AtomicUsize::new(0);
        let journal_err: OnceLock<SimError> = OnceLock::new();
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1).min(cells.len().max(1)) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(si, pi)) = cells.get(idx) else { break };
                    if slots[idx].get().is_some() {
                        continue; // already satisfied by the journal
                    }
                    let outcome = self.run_cell_observed(
                        si,
                        pi,
                        policy,
                        obs.trace.clone(),
                        obs.packet_trace,
                        obs.telemetry.clone(),
                    );
                    if let Some(j) = journal {
                        if let Err(e) = j.record(idx, self, &outcome) {
                            let _ = journal_err.set(e);
                        }
                    }
                    if let Some(p) = &obs.progress {
                        if let Some(row) = outcome.row() {
                            p.add_slots(row.result.slots_run);
                        }
                        if let Some(line) = p.cell_done() {
                            eprintln!("{line}");
                        }
                    }
                    let _ = slots[idx].set(outcome);
                });
            }
        });
        if let Some(sink) = &obs.trace {
            sink.flush();
        }
        if let Some(series) = obs.telemetry.as_ref().and_then(|t| t.series.as_ref()) {
            series.flush();
        }
        if let Some(e) = journal_err.into_inner() {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.into_inner().expect("every cell executed"))
            .collect())
    }

    /// Run the cell at grid position `(si, pi)` under the policy's
    /// isolation: panics contained, optional watchdog, bounded retries.
    pub fn run_cell_isolated(&self, si: usize, pi: usize, policy: &CellPolicy) -> CellOutcome {
        self.run_cell_observed(si, pi, policy, None, PacketTraceMode::Off, None)
    }

    fn run_cell_observed(
        &self,
        si: usize,
        pi: usize,
        policy: &CellPolicy,
        trace: Option<Arc<dyn EventSink>>,
        packet_trace: PacketTraceMode,
        telemetry: Option<TelemetrySpec>,
    ) -> CellOutcome {
        let spec = self.cell_spec(si, pi, policy, trace, packet_trace, telemetry);
        let mut attempts = 0;
        loop {
            attempts += 1;
            match run_cell_guarded(&spec, policy.timeout) {
                Ok(row) => return CellOutcome::Completed(row),
                Err(reason) => {
                    // Structured errors are deterministic — retrying them
                    // is pure waste; panics and timeouts get the budget.
                    let retryable = !matches!(reason, CellFailureReason::Error(_));
                    if !retryable || attempts > policy.retries {
                        return CellOutcome::Failed(FailedCell {
                            switch: spec.sk,
                            load: spec.load,
                            attempts,
                            reason,
                        });
                    }
                }
            }
        }
    }

    fn cell_spec(
        &self,
        si: usize,
        pi: usize,
        policy: &CellPolicy,
        trace: Option<Arc<dyn EventSink>>,
        packet_trace: PacketTraceMode,
        telemetry: Option<TelemetrySpec>,
    ) -> CellSpec {
        let (load, tk) = self.points[pi];
        // Workload seed depends only on the point → identical arrivals for
        // every scheduler; switch seed also varies by scheduler.
        let traffic_seed = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (pi as u64);
        let switch_seed = traffic_seed ^ ((si as u64 + 1) << 32);
        let scope = format!("{}@{load}", self.switches[si].label());
        CellSpec {
            n: self.n,
            sk: self.switches[si],
            tk,
            load,
            run: self.run,
            traffic_seed,
            switch_seed,
            check_every: policy.check_every,
            faults: policy.faults,
            trace,
            packet_trace,
            telemetry,
            scope,
        }
    }

    fn run_cell(
        &self,
        sk: SwitchKind,
        switch_idx: usize,
        load: f64,
        tk: TrafficKind,
        point_idx: usize,
    ) -> SweepRow {
        // Workload seed depends only on the point → identical arrivals for
        // every scheduler; switch seed also varies by scheduler.
        let traffic_seed = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (point_idx as u64);
        let switch_seed = traffic_seed ^ ((switch_idx as u64 + 1) << 32);
        let mut switch = sk.build(self.n, switch_seed);
        let mut traffic = tk.build(self.n, traffic_seed);
        let result = simulate(switch.as_mut(), traffic.as_mut(), &self.run);
        SweepRow {
            switch: sk,
            load,
            result,
        }
    }

    /// Rows of one scheduler, in point order, from a result set.
    pub fn rows_for(rows: &[SweepRow], sk: SwitchKind) -> Vec<&SweepRow> {
        rows.iter().filter(|r| r.switch == sk).collect()
    }

    /// Run the whole grid `replications` times with independent seeds and
    /// aggregate each cell across replications (mean and 95% half-width
    /// of the key metrics). Replications of different cells all share the
    /// work pool, so `threads` bounds total parallelism.
    pub fn run_replicated(&self, replications: usize, threads: usize) -> Vec<ReplicatedRow> {
        assert!(replications > 0, "need at least one replication");
        let mut all: Vec<Vec<SweepRow>> = Vec::with_capacity(replications);
        for rep in 0..replications {
            let mut sweep = self.clone();
            sweep.seed = self
                .seed
                .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(rep as u64 + 1));
            all.push(sweep.run_parallel(threads));
        }
        let cells = all[0].len();
        (0..cells)
            .map(|c| {
                let samples: Vec<&SweepRow> = all.iter().map(|rows| &rows[c]).collect();
                ReplicatedRow::aggregate(&samples)
            })
            .collect()
    }
}

/// A grid cell aggregated over independent replications.
#[derive(Clone, Debug)]
pub struct ReplicatedRow {
    /// The scheduler that ran.
    pub switch: SwitchKind,
    /// The nominal load of the point.
    pub load: f64,
    /// Replications aggregated.
    pub replications: usize,
    /// Replications whose verdict was stable.
    pub stable_replications: usize,
    /// Mean of the per-replication mean output-oriented delays.
    pub out_delay_mean: f64,
    /// 95% half-width of the output-oriented delay across replications.
    pub out_delay_hw95: f64,
    /// Mean of the per-replication average queue sizes.
    pub avg_queue_mean: f64,
    /// 95% half-width of the average queue size across replications.
    pub avg_queue_hw95: f64,
}

impl ReplicatedRow {
    fn aggregate(samples: &[&SweepRow]) -> ReplicatedRow {
        use fifoms_stats::BatchMeans;
        assert!(!samples.is_empty());
        let mut delay = BatchMeans::new(1);
        let mut queue = BatchMeans::new(1);
        let mut stable = 0;
        for s in samples {
            delay.push(s.result.delay.mean_output_oriented);
            queue.push(s.result.occupancy.mean);
            if s.result.is_stable() {
                stable += 1;
            }
        }
        ReplicatedRow {
            switch: samples[0].switch,
            load: samples[0].load,
            replications: samples.len(),
            stable_replications: stable,
            out_delay_mean: delay.mean().expect("nonempty"),
            out_delay_hw95: delay.half_width_95().unwrap_or(0.0),
            avg_queue_mean: queue.mean().expect("nonempty"),
            avg_queue_hw95: queue.half_width_95().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> Sweep {
        Sweep {
            n: 8,
            switches: vec![SwitchKind::Fifoms, SwitchKind::OqFifo],
            points: vec![
                (0.2, TrafficKind::bernoulli_at_load(0.2, 0.25, 8)),
                (0.4, TrafficKind::bernoulli_at_load(0.4, 0.25, 8)),
            ],
            run: RunConfig::quick(4_000),
            seed: 7,
        }
    }

    #[test]
    fn serial_covers_grid() {
        let rows = tiny_sweep().run_serial();
        assert_eq!(rows.len(), 4);
        let fifoms = Sweep::rows_for(&rows, SwitchKind::Fifoms);
        assert_eq!(fifoms.len(), 2);
        assert_eq!(fifoms[0].load, 0.2);
        assert_eq!(fifoms[1].load, 0.4);
        assert!(rows.iter().all(|r| r.result.is_stable()));
    }

    #[test]
    fn parallel_equals_serial() {
        let sweep = tiny_sweep();
        let serial = sweep.run_serial();
        let parallel = sweep.run_parallel(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.load, b.load);
            assert_eq!(a.result.switch_name, b.result.switch_name);
            assert_eq!(a.result.packets_admitted, b.result.packets_admitted);
            assert_eq!(
                a.result.delay.mean_output_oriented,
                b.result.delay.mean_output_oriented
            );
            assert_eq!(a.result.occupancy.max, b.result.occupancy.max);
        }
    }

    #[test]
    fn replications_aggregate_with_intervals() {
        let sweep = tiny_sweep();
        let rows = sweep.run_replicated(3, 4);
        assert_eq!(rows.len(), 4); // 2 switches × 2 points
        for r in &rows {
            assert_eq!(r.replications, 3);
            assert_eq!(r.stable_replications, 3, "{:?} at {}", r.switch, r.load);
            assert!(r.out_delay_mean >= 0.0);
            assert!(r.out_delay_hw95 >= 0.0);
            assert!(r.avg_queue_hw95 >= 0.0);
        }
        // higher load ⇒ higher mean delay for the same scheduler
        let fifoms: Vec<&ReplicatedRow> = rows
            .iter()
            .filter(|r| r.switch == SwitchKind::Fifoms)
            .collect();
        assert!(fifoms[0].out_delay_mean < fifoms[1].out_delay_mean);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        tiny_sweep().run_replicated(0, 1);
    }

    #[test]
    fn replications_use_distinct_seeds() {
        let sweep = tiny_sweep();
        let rows = sweep.run_replicated(2, 2);
        // with independent arrival streams the interval is (almost surely)
        // nonzero for a stochastic workload
        assert!(rows.iter().any(|r| r.out_delay_hw95 > 0.0));
    }

    #[test]
    fn panicking_cell_becomes_failed_row_while_others_complete() {
        let mut sweep = tiny_sweep();
        sweep.switches = vec![SwitchKind::Fifoms, SwitchKind::ChaosPanic { at: 100 }];
        let outcomes = sweep.run_robust(4, &CellPolicy::isolated());
        assert_eq!(outcomes.len(), 4);
        // Grid order: FIFOMS cells first, chaos cells last.
        for outcome in &outcomes[..2] {
            let row = outcome.row().expect("FIFOMS cells complete");
            assert_eq!(row.result.switch_name, "FIFOMS");
        }
        for outcome in &outcomes[2..] {
            let failure = outcome.failure().expect("chaos cells fail");
            assert_eq!(failure.attempts, 1);
            let CellFailureReason::Panic(msg) = &failure.reason else {
                panic!("expected a panic, got {:?}", failure.reason);
            };
            assert!(msg.contains("chaos switch"), "{msg}");
        }
    }

    #[test]
    fn run_parallel_raises_cell_failures_after_the_grid_finishes() {
        let mut sweep = tiny_sweep();
        sweep.switches = vec![SwitchKind::ChaosPanic { at: 100 }, SwitchKind::Fifoms];
        let err = std::panic::catch_unwind(|| sweep.run_parallel(2))
            .expect_err("a failed cell must still surface");
        let msg = super::panic_message(err.as_ref());
        assert!(msg.contains("chaos-panic@100"), "{msg}");
        assert!(!msg.contains("poisoned"), "{msg}");
    }

    #[test]
    fn hung_cell_times_out_under_the_watchdog() {
        let mut sweep = tiny_sweep();
        sweep.switches = vec![SwitchKind::ChaosStall { at: 0 }];
        sweep.points.truncate(1);
        let policy = CellPolicy {
            timeout: Some(Duration::from_millis(200)),
            ..CellPolicy::default()
        };
        let outcomes = sweep.run_robust(1, &policy);
        let failure = outcomes[0].failure().expect("stalled cell fails");
        assert_eq!(
            failure.reason,
            CellFailureReason::Timeout { millis: 200 },
            "{:?}",
            failure.reason
        );
    }

    #[test]
    fn retries_are_bounded_and_counted() {
        let mut sweep = tiny_sweep();
        sweep.switches = vec![SwitchKind::ChaosPanic { at: 0 }];
        sweep.points.truncate(1);
        let policy = CellPolicy {
            retries: 2,
            ..CellPolicy::default()
        };
        let outcomes = sweep.run_robust(1, &policy);
        assert_eq!(outcomes[0].failure().expect("still fails").attempts, 3);
    }

    #[test]
    fn invalid_cell_parameters_fail_structurally_without_retry() {
        let mut sweep = tiny_sweep();
        // Load 1.25 per output with b=0.25 on 4 ports needs p > 1.
        sweep.n = 4;
        sweep.switches = vec![SwitchKind::Fifoms];
        sweep.points = vec![(1.25, TrafficKind::bernoulli_at_load(1.25, 0.25, 4))];
        let policy = CellPolicy {
            retries: 5,
            ..CellPolicy::default()
        };
        let outcomes = sweep.run_robust(1, &policy);
        let failure = outcomes[0].failure().expect("invalid parameters fail");
        assert_eq!(failure.attempts, 1, "errors are not retried");
        assert!(matches!(failure.reason, CellFailureReason::Error(_)));
    }

    #[test]
    fn checked_policy_is_metrically_transparent() {
        let sweep = tiny_sweep();
        let plain = sweep.run_serial();
        let checked = sweep.run_robust(2, &CellPolicy::checked(50));
        assert_eq!(plain.len(), checked.len());
        for (a, b) in plain.iter().zip(&checked) {
            let b = b.row().expect("no violations in real schedulers");
            assert_eq!(a.result.switch_name, b.result.switch_name);
            assert_eq!(a.result.packets_admitted, b.result.packets_admitted);
            assert_eq!(
                a.result.delay.mean_output_oriented,
                b.result.delay.mean_output_oriented
            );
        }
    }

    #[test]
    fn fault_injection_policy_completes_every_cell() {
        let sweep = tiny_sweep();
        let policy = CellPolicy {
            check_every: Some(100),
            faults: Some(fifoms_fabric::FaultConfig::moderate(3)),
            ..CellPolicy::default()
        };
        for outcome in sweep.run_robust(2, &policy) {
            outcome.row().expect("faulty cells still complete");
        }
    }

    #[test]
    fn schedulers_see_identical_arrivals_at_a_point() {
        let rows = tiny_sweep().run_serial();
        let by_switch: Vec<u64> = rows
            .iter()
            .filter(|r| r.load == 0.2)
            .map(|r| r.result.packets_admitted)
            .collect();
        assert_eq!(by_switch[0], by_switch[1], "same workload seed per point");
    }
}
