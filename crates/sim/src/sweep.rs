//! Grids of simulations: (scheduler × load point), optionally threaded.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::{simulate, RunConfig, RunResult};
use crate::spec::{SwitchKind, TrafficKind};

/// One completed grid cell.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// The scheduler that ran.
    pub switch: SwitchKind,
    /// The nominal load of the point (the x-axis of the paper's figures).
    pub load: f64,
    /// The full measurement.
    pub result: RunResult,
}

/// A sweep specification: one figure's worth of simulations.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Switch size `N` (16 in the paper).
    pub n: usize,
    /// Schedulers to compare.
    pub switches: Vec<SwitchKind>,
    /// `(nominal_load, workload)` points, shared by every scheduler.
    pub points: Vec<(f64, TrafficKind)>,
    /// Per-run configuration.
    pub run: RunConfig,
    /// Base RNG seed; each grid cell derives a distinct deterministic
    /// seed, and the *same* workload seed is used across schedulers at a
    /// point so they face identical arrival processes.
    pub seed: u64,
}

impl Sweep {
    /// Execute every cell on the current thread.
    pub fn run_serial(&self) -> Vec<SweepRow> {
        let mut rows = Vec::with_capacity(self.switches.len() * self.points.len());
        for (si, sk) in self.switches.iter().enumerate() {
            for (pi, (load, tk)) in self.points.iter().enumerate() {
                rows.push(self.run_cell(*sk, si, *load, *tk, pi));
            }
        }
        rows
    }

    /// Execute the grid across `threads` worker threads (work-stealing by
    /// atomic index). Results come back in deterministic grid order and
    /// are identical to [`Sweep::run_serial`] because every cell is
    /// seeded independently.
    pub fn run_parallel(&self, threads: usize) -> Vec<SweepRow> {
        let threads = threads.max(1);
        let cells: Vec<(usize, usize)> = (0..self.switches.len())
            .flat_map(|si| (0..self.points.len()).map(move |pi| (si, pi)))
            .collect();
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<SweepRow>>> = Mutex::new(vec![None; cells.len()]);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(cells.len().max(1)) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(si, pi)) = cells.get(idx) else { break };
                    let (load, tk) = self.points[pi];
                    let row = self.run_cell(self.switches[si], si, load, tk, pi);
                    results.lock().expect("poisoned")[idx] = Some(row);
                });
            }
        });
        results
            .into_inner()
            .expect("poisoned")
            .into_iter()
            .map(|r| r.expect("cell not executed"))
            .collect()
    }

    fn run_cell(
        &self,
        sk: SwitchKind,
        switch_idx: usize,
        load: f64,
        tk: TrafficKind,
        point_idx: usize,
    ) -> SweepRow {
        // Workload seed depends only on the point → identical arrivals for
        // every scheduler; switch seed also varies by scheduler.
        let traffic_seed = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (point_idx as u64);
        let switch_seed = traffic_seed ^ ((switch_idx as u64 + 1) << 32);
        let mut switch = sk.build(self.n, switch_seed);
        let mut traffic = tk.build(self.n, traffic_seed);
        let result = simulate(switch.as_mut(), traffic.as_mut(), &self.run);
        SweepRow {
            switch: sk,
            load,
            result,
        }
    }

    /// Rows of one scheduler, in point order, from a result set.
    pub fn rows_for(rows: &[SweepRow], sk: SwitchKind) -> Vec<&SweepRow> {
        rows.iter().filter(|r| r.switch == sk).collect()
    }

    /// Run the whole grid `replications` times with independent seeds and
    /// aggregate each cell across replications (mean and 95% half-width
    /// of the key metrics). Replications of different cells all share the
    /// work pool, so `threads` bounds total parallelism.
    pub fn run_replicated(&self, replications: usize, threads: usize) -> Vec<ReplicatedRow> {
        assert!(replications > 0, "need at least one replication");
        let mut all: Vec<Vec<SweepRow>> = Vec::with_capacity(replications);
        for rep in 0..replications {
            let mut sweep = self.clone();
            sweep.seed = self
                .seed
                .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(rep as u64 + 1));
            all.push(sweep.run_parallel(threads));
        }
        let cells = all[0].len();
        (0..cells)
            .map(|c| {
                let samples: Vec<&SweepRow> = all.iter().map(|rows| &rows[c]).collect();
                ReplicatedRow::aggregate(&samples)
            })
            .collect()
    }
}

/// A grid cell aggregated over independent replications.
#[derive(Clone, Debug)]
pub struct ReplicatedRow {
    /// The scheduler that ran.
    pub switch: SwitchKind,
    /// The nominal load of the point.
    pub load: f64,
    /// Replications aggregated.
    pub replications: usize,
    /// Replications whose verdict was stable.
    pub stable_replications: usize,
    /// Mean of the per-replication mean output-oriented delays.
    pub out_delay_mean: f64,
    /// 95% half-width of the output-oriented delay across replications.
    pub out_delay_hw95: f64,
    /// Mean of the per-replication average queue sizes.
    pub avg_queue_mean: f64,
    /// 95% half-width of the average queue size across replications.
    pub avg_queue_hw95: f64,
}

impl ReplicatedRow {
    fn aggregate(samples: &[&SweepRow]) -> ReplicatedRow {
        use fifoms_stats::BatchMeans;
        assert!(!samples.is_empty());
        let mut delay = BatchMeans::new(1);
        let mut queue = BatchMeans::new(1);
        let mut stable = 0;
        for s in samples {
            delay.push(s.result.delay.mean_output_oriented);
            queue.push(s.result.occupancy.mean);
            if s.result.is_stable() {
                stable += 1;
            }
        }
        ReplicatedRow {
            switch: samples[0].switch,
            load: samples[0].load,
            replications: samples.len(),
            stable_replications: stable,
            out_delay_mean: delay.mean().expect("nonempty"),
            out_delay_hw95: delay.half_width_95().unwrap_or(0.0),
            avg_queue_mean: queue.mean().expect("nonempty"),
            avg_queue_hw95: queue.half_width_95().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> Sweep {
        Sweep {
            n: 8,
            switches: vec![SwitchKind::Fifoms, SwitchKind::OqFifo],
            points: vec![
                (0.2, TrafficKind::bernoulli_at_load(0.2, 0.25, 8)),
                (0.4, TrafficKind::bernoulli_at_load(0.4, 0.25, 8)),
            ],
            run: RunConfig::quick(4_000),
            seed: 7,
        }
    }

    #[test]
    fn serial_covers_grid() {
        let rows = tiny_sweep().run_serial();
        assert_eq!(rows.len(), 4);
        let fifoms = Sweep::rows_for(&rows, SwitchKind::Fifoms);
        assert_eq!(fifoms.len(), 2);
        assert_eq!(fifoms[0].load, 0.2);
        assert_eq!(fifoms[1].load, 0.4);
        assert!(rows.iter().all(|r| r.result.is_stable()));
    }

    #[test]
    fn parallel_equals_serial() {
        let sweep = tiny_sweep();
        let serial = sweep.run_serial();
        let parallel = sweep.run_parallel(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.load, b.load);
            assert_eq!(a.result.switch_name, b.result.switch_name);
            assert_eq!(a.result.packets_admitted, b.result.packets_admitted);
            assert_eq!(
                a.result.delay.mean_output_oriented,
                b.result.delay.mean_output_oriented
            );
            assert_eq!(a.result.occupancy.max, b.result.occupancy.max);
        }
    }

    #[test]
    fn replications_aggregate_with_intervals() {
        let sweep = tiny_sweep();
        let rows = sweep.run_replicated(3, 4);
        assert_eq!(rows.len(), 4); // 2 switches × 2 points
        for r in &rows {
            assert_eq!(r.replications, 3);
            assert_eq!(r.stable_replications, 3, "{:?} at {}", r.switch, r.load);
            assert!(r.out_delay_mean >= 0.0);
            assert!(r.out_delay_hw95 >= 0.0);
            assert!(r.avg_queue_hw95 >= 0.0);
        }
        // higher load ⇒ higher mean delay for the same scheduler
        let fifoms: Vec<&ReplicatedRow> = rows
            .iter()
            .filter(|r| r.switch == SwitchKind::Fifoms)
            .collect();
        assert!(fifoms[0].out_delay_mean < fifoms[1].out_delay_mean);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        tiny_sweep().run_replicated(0, 1);
    }

    #[test]
    fn replications_use_distinct_seeds() {
        let sweep = tiny_sweep();
        let rows = sweep.run_replicated(2, 2);
        // with independent arrival streams the interval is (almost surely)
        // nonzero for a stochastic workload
        assert!(rows.iter().any(|r| r.out_delay_hw95 > 0.0));
    }

    #[test]
    fn schedulers_see_identical_arrivals_at_a_point() {
        let rows = tiny_sweep().run_serial();
        let by_switch: Vec<u64> = rows
            .iter()
            .filter(|r| r.load == 0.2)
            .map(|r| r.result.packets_admitted)
            .collect();
        assert_eq!(by_switch[0], by_switch[1], "same workload seed per point");
    }
}
