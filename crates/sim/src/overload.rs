//! Overload protection: the graceful-degradation ladder and the
//! finite-buffer loss-rate sweep (DESIGN.md §12).
//!
//! Under admissible load a FIFOMS switch needs none of this. Under
//! *inadmissible* load (offered > 1.0 per output) an infinite-buffer
//! model diverges, and a finite-buffer one must choose what to lose.
//! This module supplies the engine-side half of that choice:
//!
//! * [`OverloadGovernor`] — watches the backlog against the configured
//!   buffer capacity and walks a degradation ladder: level 1 sheds
//!   packet-scoped trace events, level 2 thins metric sampling, level 3
//!   trims arriving fanouts to their first destination. Each transition
//!   emits one [`ObsEvent::OverloadLevel`] so traces show when and why
//!   observability degraded.
//! * [`OverloadControls`] — the bundle the engine consults each slot:
//!   an optional governor, plus backpressure-driven arrival deferral
//!   (a [`DeferralQueue`] that holds offered packets while
//!   [`Switch::backpressure`] is asserted, re-offering them oldest-first
//!   once it clears; deferred packets are stamped at actual admission,
//!   so Theorem 1 ordering is never violated).
//! * [`loss_sweep`] — the stability-region experiment: a load grid
//!   crossing the admissible boundary, run against the infinite-buffer
//!   baseline and each finite-buffer admission policy under a
//!   [`CheckedSwitch`] proving the extended conservation law, yielding
//!   one [`LossPoint`] per (load, policy) cell.
//!
//! [`Switch::backpressure`]: fifoms_fabric::Switch::backpressure

use fifoms_core::{AdmissionPolicy, BufferConfig, MulticastVoqSwitch};
use fifoms_fabric::{CheckedSwitch, Switch};
use fifoms_traffic::{BernoulliMulticast, DeferralQueue};
use fifoms_types::{ObsEvent, Slot};

use crate::engine::{try_simulate_observed, Observer, RunConfig, TelemetrySpec};

/// Ladder thresholds as percent of configured capacity.
const LEVEL_1_PCT: u64 = 50;
const LEVEL_2_PCT: u64 = 75;
const LEVEL_3_PCT: u64 = 90;

/// The degradation-ladder driver: backlog-vs-capacity hysteresis-free
/// level tracking with an event on every transition.
#[derive(Clone, Copy, Debug)]
pub struct OverloadGovernor {
    capacity: u64,
    level: u32,
}

impl OverloadGovernor {
    /// A governor for a switch whose total buffered copies are bounded
    /// by `capacity` (see [`BufferConfig::max_copies`]). A zero capacity
    /// disables the ladder (the governor stays at level 0 forever).
    pub fn new(capacity: u64) -> OverloadGovernor {
        OverloadGovernor { capacity, level: 0 }
    }

    /// The current ladder level (0 = fully healthy .. 3 = shedding
    /// fanout).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Observe this slot's backlog; returns the transition event when
    /// the level changed.
    pub fn observe(&mut self, now: Slot, backlog_copies: u64) -> Option<ObsEvent> {
        if self.capacity == 0 {
            return None;
        }
        let pct = backlog_copies.saturating_mul(100) / self.capacity;
        let level = if pct >= LEVEL_3_PCT {
            3
        } else if pct >= LEVEL_2_PCT {
            2
        } else if pct >= LEVEL_1_PCT {
            1
        } else {
            0
        };
        if level == self.level {
            return None;
        }
        self.level = level;
        Some(ObsEvent::OverloadLevel {
            slot: now,
            level,
            backlog_copies,
        })
    }
}

/// Engine-side overload machinery for one run: consulted once per slot
/// by `try_simulate_controlled`, inert fields cost nothing.
#[derive(Debug)]
pub struct OverloadControls {
    /// When set, arrivals offered to an input whose
    /// [`Switch::backpressure`] signal is asserted are deferred instead
    /// of admitted, and re-offered (oldest first, one per slot) once
    /// the signal clears.
    ///
    /// [`Switch::backpressure`]: fifoms_fabric::Switch::backpressure
    pub pause_on_backpressure: bool,
    /// The holding pen for deferred arrivals.
    pub deferrals: DeferralQueue,
    /// The degradation ladder, if enabled.
    pub governor: Option<OverloadGovernor>,
    /// Packet-scoped trace events shed at ladder level >= 1.
    pub events_shed: u64,
    /// Occupancy samples skipped at ladder level >= 2.
    pub samples_skipped: u64,
    /// Copies trimmed from arriving fanouts at ladder level 3.
    pub fanout_copies_trimmed: u64,
}

impl OverloadControls {
    /// Inert controls for an `ports`-input switch: no backpressure
    /// pause, no governor. `try_simulate_controlled` with these behaves
    /// exactly like `try_simulate`.
    pub fn new(ports: usize) -> OverloadControls {
        OverloadControls {
            pause_on_backpressure: false,
            deferrals: DeferralQueue::new(ports),
            governor: None,
            events_shed: 0,
            samples_skipped: 0,
            fanout_copies_trimmed: 0,
        }
    }

    /// Enable backpressure-driven arrival deferral.
    pub fn with_backpressure(mut self) -> OverloadControls {
        self.pause_on_backpressure = true;
        self
    }

    /// Attach the degradation ladder.
    pub fn with_governor(mut self, governor: OverloadGovernor) -> OverloadControls {
        self.governor = Some(governor);
        self
    }

    /// The current ladder level (0 when no governor is attached).
    pub fn level(&self) -> u32 {
        self.governor.map_or(0, |g| g.level())
    }
}

// ---------------------------------------------------------------------
// Loss-rate / stability-region sweep
// ---------------------------------------------------------------------

/// One (load, policy) cell of the loss sweep.
#[derive(Clone, Debug)]
pub struct LossPoint {
    /// Offered effective load (per output, in units of link capacity).
    pub load: f64,
    /// `"baseline"` (infinite buffers) or the admission policy tag.
    pub policy: String,
    /// Copies offered to admission over the run.
    pub admitted: u64,
    /// Copies delivered over the run.
    pub delivered: u64,
    /// Copies refused or pushed out at admission.
    pub admission_dropped: u64,
    /// Copies still queued when the run ended.
    pub backlog: u64,
    /// `admission_dropped / admitted` (0 when nothing was offered).
    pub loss_rate: f64,
    /// Whether the saturation detector called the point sustainable.
    pub stable: bool,
    /// Mean output-oriented copy delay over the measured window.
    pub mean_delay: f64,
}

/// Parameters of one [`loss_sweep`].
#[derive(Clone, Debug)]
pub struct LossSweepConfig {
    /// Switch size `N`.
    pub n: usize,
    /// Slots per cell.
    pub slots: u64,
    /// Base RNG seed (each cell derives its own).
    pub seed: u64,
    /// The offered-load grid; points above 1.0 are inadmissible and are
    /// exactly where the policies separate.
    pub loads: Vec<f64>,
    /// Per-VOQ address-cell cap for the finite-buffer cells.
    pub voq_cap: usize,
    /// Per-input aggregate cap for the finite-buffer cells.
    pub input_cap: usize,
}

impl LossSweepConfig {
    /// A small default grid crossing the admissible boundary:
    /// loads 0.6 .. 1.6 over `points` cells.
    pub fn quick(n: usize, slots: u64, seed: u64, points: usize) -> LossSweepConfig {
        let points = points.max(2);
        let loads = (0..points)
            .map(|i| 0.6 + (1.6 - 0.6) * i as f64 / (points - 1) as f64)
            .collect();
        LossSweepConfig {
            n,
            slots,
            seed,
            loads,
            voq_cap: 16,
            input_cap: 64,
        }
    }

    /// The largest representable offered load for this `n`: `b·N` with
    /// the sweep's fixed Bernoulli fanout `b = 1/4`. Loads above this
    /// would need a per-slot arrival probability greater than 1.
    pub fn max_load(&self) -> f64 {
        SWEEP_B * self.n as f64
    }
}

/// The Bernoulli fanout probability used by every sweep cell. With
/// `b = 1/4` and the per-slot arrival probability `p = load / (b·N)`,
/// loads up to `b·N` (2.0 at `N = 8`) stay representable with `p <= 1`.
const SWEEP_B: f64 = 0.25;

/// The finite-buffer policies each load point is run under, alongside
/// the infinite-buffer baseline.
const SWEEP_POLICIES: [AdmissionPolicy; 3] = [
    AdmissionPolicy::DropTail,
    AdmissionPolicy::Pushout,
    AdmissionPolicy::FairShed,
];

/// Run the loss-rate / stability-region sweep: every load in the grid
/// against the infinite-buffer baseline and each finite-buffer policy,
/// all under [`CheckedSwitch`] so each cell proves the extended
/// conservation law as it runs.
///
/// # Panics
///
/// Panics if a cell's checker reports an invariant violation (the
/// sweep's entire point is that the law holds), if `cfg.loads` contains
/// a load outside `(0, b·N]`, or if `voq_cap`/`input_cap` are 0.
pub fn loss_sweep(cfg: &LossSweepConfig) -> Vec<LossPoint> {
    loss_sweep_observed(cfg, None)
}

/// [`loss_sweep`] with live telemetry attached: each cell streams
/// windowed counters under the scope `"<policy>@<load>"`. Telemetry is
/// read-only, so the returned points are bit-identical to
/// [`loss_sweep`]'s.
pub fn loss_sweep_observed(
    cfg: &LossSweepConfig,
    telemetry: Option<&TelemetrySpec>,
) -> Vec<LossPoint> {
    assert!(cfg.voq_cap > 0 && cfg.input_cap > 0, "caps must be finite");
    let mut out = Vec::new();
    for (i, &load) in cfg.loads.iter().enumerate() {
        let max_load = SWEEP_B * cfg.n as f64;
        assert!(
            load > 0.0 && load <= max_load,
            "load {load} outside (0, {max_load}]"
        );
        let cell_seed = cfg.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        out.push(run_cell(cfg, load, cell_seed, None, telemetry));
        for policy in SWEEP_POLICIES {
            out.push(run_cell(cfg, load, cell_seed, Some(policy), telemetry));
        }
    }
    out
}

fn run_cell(
    cfg: &LossSweepConfig,
    load: f64,
    seed: u64,
    policy: Option<AdmissionPolicy>,
    telemetry: Option<&TelemetrySpec>,
) -> LossPoint {
    let p = load / (SWEEP_B * cfg.n as f64);
    let mut traffic =
        BernoulliMulticast::new(cfg.n, p, SWEEP_B, seed).expect("sweep cell parameters valid");
    let mut core = MulticastVoqSwitch::new(cfg.n, seed);
    let mut checker = match policy {
        Some(policy) => {
            let buffers =
                BufferConfig::bounded(cfg.voq_cap, cfg.input_cap).with_policy(policy);
            let capacity = buffers
                .max_copies(cfg.n)
                .expect("bounded config has a capacity");
            core = core.with_buffers(buffers);
            CheckedSwitch::new(core).with_capacity(capacity)
        }
        None => CheckedSwitch::new(core),
    };
    let policy_name = policy.map_or_else(|| "baseline".to_string(), |p| p.as_str().to_string());
    let scope = format!("{policy_name}@{load}");
    let mut cell_telemetry = telemetry.map(|t| t.new_telemetry(cfg.n));
    let mut obs = Observer {
        sink: None,
        profiler: None,
        telemetry: match (telemetry, cell_telemetry.as_mut()) {
            (Some(spec), Some(t)) => Some(spec.channel(t, &scope)),
            _ => None,
        },
    };
    let run = try_simulate_observed(&mut checker, &mut traffic, &RunConfig::quick(cfg.slots), &mut obs)
        .expect("sweep cell preconditions hold");
    if let Some(v) = checker.violation() {
        panic!("loss sweep cell (load {load}, {:?}) violated: {v}", policy);
    }
    let admitted = checker.admitted_copies();
    let dropped = checker.admission_dropped_copies();
    let backlog = checker.backlog().copies as u64;
    LossPoint {
        load,
        policy: policy.map_or_else(|| "baseline".to_string(), |p| p.as_str().to_string()),
        admitted,
        delivered: checker.delivered_copies(),
        admission_dropped: dropped,
        backlog,
        loss_rate: if admitted == 0 {
            0.0
        } else {
            dropped as f64 / admitted as f64
        },
        stable: run.is_stable(),
        mean_delay: run.delay.mean_output_oriented,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_walks_the_ladder_and_reports_transitions() {
        let mut g = OverloadGovernor::new(100);
        assert_eq!(g.level(), 0);
        assert!(g.observe(Slot(0), 10).is_none(), "still healthy");
        let up = g.observe(Slot(1), 60).expect("50% crossed");
        assert!(matches!(up, ObsEvent::OverloadLevel { level: 1, .. }));
        assert!(g.observe(Slot(2), 70).is_none(), "same level, no event");
        let top = g.observe(Slot(3), 95).expect("90% crossed");
        assert!(matches!(top, ObsEvent::OverloadLevel { level: 3, .. }));
        let down = g.observe(Slot(4), 80).expect("fell back to 2");
        assert!(matches!(down, ObsEvent::OverloadLevel { level: 2, .. }));
        assert_eq!(g.level(), 2);
    }

    #[test]
    fn zero_capacity_disables_the_governor() {
        let mut g = OverloadGovernor::new(0);
        assert!(g.observe(Slot(0), u64::MAX).is_none());
        assert_eq!(g.level(), 0);
    }

    #[test]
    fn inert_controls_report_level_zero() {
        let c = OverloadControls::new(4);
        assert!(!c.pause_on_backpressure);
        assert_eq!(c.level(), 0);
        let c = OverloadControls::new(4)
            .with_backpressure()
            .with_governor(OverloadGovernor::new(10));
        assert!(c.pause_on_backpressure);
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn loss_sweep_separates_finite_policies_from_the_baseline() {
        let cfg = LossSweepConfig {
            n: 8,
            slots: 3_000,
            seed: 7,
            loads: vec![0.6, 1.4],
            voq_cap: 8,
            input_cap: 32,
        };
        let points = loss_sweep(&cfg);
        assert_eq!(points.len(), 2 * 4, "each load x (baseline + 3 policies)");
        for pt in &points {
            assert!(
                pt.admitted >= pt.delivered + pt.admission_dropped,
                "{pt:?}"
            );
            if pt.policy == "baseline" {
                assert_eq!(pt.admission_dropped, 0, "baseline never drops: {pt:?}");
            }
        }
        // Under inadmissible load, finite buffers must shed; under
        // admissible load they should barely shed at all.
        let hot_drop = points
            .iter()
            .find(|p| p.load > 1.0 && p.policy == "drop_tail")
            .unwrap();
        assert!(hot_drop.loss_rate > 0.05, "knee missing: {hot_drop:?}");
        let cool_drop = points
            .iter()
            .find(|p| p.load < 1.0 && p.policy == "drop_tail")
            .unwrap();
        assert!(
            cool_drop.loss_rate < hot_drop.loss_rate,
            "loss must rise across the knee: {cool_drop:?} vs {hot_drop:?}"
        );
    }
}
