//! Steady-state allocation audit: does the slot loop touch the heap?
//!
//! The hot path's performance story (DESIGN.md §13) rests on a claim the
//! span profiler cannot prove: after warmup, a slot of `traffic → admit →
//! run_slot → stats` performs **zero** heap allocations. [`alloc_audit`]
//! proves it by driving the engine's exact per-slot protocol — including
//! the departure scan, the queue-size sample into a reused buffer, and
//! [`Switch::recycle`] — while reading a caller-supplied monotonic
//! allocation counter around each phase.
//!
//! The counter is abstract (`&dyn Fn() -> u64`) so this crate stays free
//! of `unsafe`: the real counting [`GlobalAlloc`](std::alloc::GlobalAlloc)
//! lives in the binaries that opt in (`fifoms-repro` behind the
//! `alloc-audit` feature, and the root `alloc_audit` integration test).
//! Warmup slots are exempt — growing VOQs, scratch vectors and stats
//! buffers to steady-state size is exactly the amortization the audit is
//! meant to separate from per-slot cost.

use fifoms_fabric::Switch;
use fifoms_obs::Json;
use fifoms_traffic::TrafficModel;
use fifoms_types::{Packet, PacketId, PortId, SimError, Slot};

/// Per-phase allocation tallies over the measured window of one audit run.
#[derive(Clone, Debug)]
pub struct AllocAuditReport {
    /// Scheduler name as reported by the switch.
    pub switch_name: String,
    /// Workload name as reported by the traffic model.
    pub traffic_name: String,
    /// Slots excluded from counting at the start.
    pub warmup_slots: u64,
    /// Slots whose allocations were counted.
    pub measured_slots: u64,
    /// Allocations attributed to each engine phase over the measured
    /// window, in engine order: `traffic`, `admit`, `schedule`, `stats`.
    pub phase_allocs: [(&'static str, u64); 4],
    /// Packets admitted over the whole run (keeps the workload honest —
    /// an idle audit proves nothing).
    pub packets_admitted: u64,
    /// Copies delivered over the whole run, same role as
    /// `packets_admitted`.
    pub copies_delivered: u64,
}

impl AllocAuditReport {
    /// Total allocations across all phases in the measured window.
    pub fn total_allocs(&self) -> u64 {
        self.phase_allocs.iter().map(|(_, a)| a).sum()
    }

    /// Whether the steady-state slot loop was allocation-free.
    pub fn is_clean(&self) -> bool {
        self.total_allocs() == 0
    }

    /// Render as a `fifoms-alloc-audit-v1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("schema", "fifoms-alloc-audit-v1");
        obj.set("switch", self.switch_name.as_str());
        obj.set("traffic", self.traffic_name.as_str());
        obj.set("warmup_slots", self.warmup_slots);
        obj.set("measured_slots", self.measured_slots);
        obj.set("packets_admitted", self.packets_admitted);
        obj.set("copies_delivered", self.copies_delivered);
        obj.set("total_allocs", self.total_allocs());
        obj.set("clean", self.is_clean());
        let mut phases = Vec::new();
        for (phase, allocs) in self.phase_allocs {
            let mut row = Json::object();
            row.set("phase", phase);
            row.set("allocs", allocs);
            phases.push(row);
        }
        obj.set("phases", phases);
        obj
    }
}

/// Copies-per-VOQ capacity pre-reserved before an audited run (via
/// [`Switch::reserve_steady_state`]). Unbounded queues keep setting new
/// high-water marks — rarely, but forever — so without a reservation the
/// audit would report a slow trickle of genuine growth allocations. The
/// reservation turns the claim into the one that matters: with buffers
/// sized for the operating point, the slot loop itself never allocates.
/// Depth records past the reservation still show up as failures.
pub const AUDIT_RESERVE_PER_VOQ: usize = 512;

/// Drive `warmup + measure` slots of the engine protocol against
/// `(switch, traffic)`, attributing allocation-counter deltas of the last
/// `measure` slots to the four engine phases. Internal queues are
/// pre-reserved for [`AUDIT_RESERVE_PER_VOQ`] copies per VOQ before
/// slot 0.
///
/// `counter` must be monotonically non-decreasing and count allocation
/// *events* (not bytes); it is read twice per phase per measured slot.
pub fn alloc_audit(
    switch: &mut dyn Switch,
    traffic: &mut dyn TrafficModel,
    warmup: u64,
    measure: u64,
    counter: &dyn Fn() -> u64,
) -> Result<AllocAuditReport, SimError> {
    if switch.ports() != traffic.ports() {
        return Err(SimError::SizeMismatch {
            switch_ports: switch.ports(),
            traffic_ports: traffic.ports(),
        });
    }
    let n = switch.ports();
    switch.reserve_steady_state(AUDIT_RESERVE_PER_VOQ);
    let mut arrivals: Vec<Option<_>> = Vec::with_capacity(n);
    let mut queue_buf: Vec<usize> = Vec::with_capacity(n);
    let mut next_packet = 0u64;
    let mut copies_delivered = 0u64;
    // Mirrors the engine's post-warmup stats reads so the audited loop has
    // the same allocation profile; folding them into a live sum keeps the
    // reads from being dead code.
    let mut stats_checksum = 0u64;
    let mut phase_allocs = [("traffic", 0u64), ("admit", 0), ("schedule", 0), ("stats", 0)];

    let mut lap = |measured: bool, phase: usize, before: u64, counter: &dyn Fn() -> u64| {
        if measured {
            phase_allocs[phase].1 += counter().saturating_sub(before);
        }
    };

    for t in 0..warmup + measure {
        let now = Slot(t);
        let measured = t >= warmup;

        let before = counter();
        traffic.next_slot(now, &mut arrivals);
        lap(measured, 0, before, counter);

        let before = counter();
        for (input, dests) in arrivals.iter_mut().enumerate() {
            if let Some(dests) = dests.take() {
                next_packet += 1;
                switch.admit(Packet::new(
                    PacketId(next_packet),
                    now,
                    PortId::new(input),
                    dests,
                ));
            }
        }
        lap(measured, 1, before, counter);

        let before = counter();
        let outcome = switch.run_slot(now);
        lap(measured, 2, before, counter);

        let before = counter();
        for d in &outcome.departures {
            stats_checksum = stats_checksum.wrapping_add(d.delay(now) + d.last_copy as u64);
        }
        copies_delivered += outcome.departures.len() as u64;
        switch.queue_sizes(&mut queue_buf);
        for q in &queue_buf {
            stats_checksum = stats_checksum.wrapping_add(*q as u64);
        }
        stats_checksum = stats_checksum.wrapping_add(switch.backlog().copies as u64);
        switch.recycle(outcome);
        lap(measured, 3, before, counter);
    }
    // The checksum's value is irrelevant; consuming it pins the stats
    // reads above into the audited build.
    std::hint::black_box(stats_checksum);

    Ok(AllocAuditReport {
        switch_name: switch.name(),
        traffic_name: traffic.name(),
        warmup_slots: warmup,
        measured_slots: measure,
        phase_allocs,
        packets_admitted: next_packet,
        copies_delivered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SwitchKind, TrafficKind};
    use std::cell::Cell;

    #[test]
    fn constant_counter_reports_clean() {
        let mut sw = SwitchKind::Fifoms.build(8, 1);
        let mut tr = TrafficKind::bernoulli_at_load(0.5, 0.25, 8).build(8, 2);
        let report =
            alloc_audit(sw.as_mut(), tr.as_mut(), 500, 500, &|| 0).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.total_allocs(), 0);
        assert!(report.packets_admitted > 0, "audit must exercise real load");
        assert!(report.copies_delivered > 0);
    }

    #[test]
    fn advancing_counter_attributes_to_every_phase() {
        let ticks = Cell::new(0u64);
        let counter = || {
            ticks.set(ticks.get() + 1);
            ticks.get()
        };
        let mut sw = SwitchKind::Fifoms.build(4, 1);
        let mut tr = TrafficKind::bernoulli_at_load(0.3, 0.5, 4).build(4, 2);
        let report = alloc_audit(sw.as_mut(), tr.as_mut(), 10, 10, &counter).unwrap();
        assert!(!report.is_clean());
        for (phase, allocs) in report.phase_allocs {
            assert!(allocs > 0, "phase {phase} saw no counter movement");
        }
    }

    #[test]
    fn warmup_slots_are_exempt() {
        // Counter advances only during the first 20 calls (the warmup
        // window uses none), so a warmup-only burst must report clean.
        let ticks = Cell::new(0u64);
        let calls = Cell::new(0u64);
        let counter = || {
            calls.set(calls.get() + 1);
            if calls.get() <= 20 {
                ticks.set(ticks.get() + 1);
            }
            ticks.get()
        };
        let mut sw = SwitchKind::Fifoms.build(4, 1);
        let mut tr = TrafficKind::bernoulli_at_load(0.3, 0.5, 4).build(4, 2);
        // 5 warmup slots * 8 counter reads = 40 calls > 20, so all
        // movement lands inside warmup.
        let report = alloc_audit(sw.as_mut(), tr.as_mut(), 5, 50, &counter).unwrap();
        assert!(report.is_clean(), "warmup allocations must not count");
    }

    #[test]
    fn size_mismatch_is_an_error() {
        let mut sw = SwitchKind::Fifoms.build(4, 1);
        let mut tr = TrafficKind::bernoulli_at_load(0.3, 0.5, 8).build(8, 2);
        let e = alloc_audit(sw.as_mut(), tr.as_mut(), 10, 10, &|| 0).unwrap_err();
        assert!(matches!(e, SimError::SizeMismatch { .. }));
    }

    #[test]
    fn json_report_shape() {
        let mut sw = SwitchKind::Islip(None).build(4, 1);
        let mut tr = TrafficKind::bernoulli_at_load(0.2, 0.5, 4).build(4, 2);
        let report = alloc_audit(sw.as_mut(), tr.as_mut(), 100, 100, &|| 0).unwrap();
        let doc = report.to_json();
        let text = doc.to_string();
        assert!(text.contains("fifoms-alloc-audit-v1"));
        assert!(text.contains("\"clean\": true") || text.contains("\"clean\":true"));
    }
}
