//! Checkpoint journals for resumable sweeps.
//!
//! A journal is a human-readable text file with one line per finished grid
//! cell, written incrementally as a sweep runs and replayed on `--resume`
//! to skip work that already completed. The format is append-only and
//! crash-tolerant: a process killed mid-write leaves at most one torn
//! final line, which the loader simply treats as not-yet-run (the cell is
//! deterministic, so re-running it reproduces the identical row).
//!
//! ```text
//! # fifoms sweep journal v1
//! # grid=<hex16> cells=<count> seed=<seed> n=<n>
//! cell=3  key=<hex16>  status=ok  load=0.4  sw=FIFOMS  ... result fields ...
//! cell=5  key=<hex16>  status=failed  attempts=2  reason=panic  msg=...
//! ```
//!
//! Every line is tab-separated `key=value` tokens. Free-text values
//! (names, panic messages) are sanitised so they cannot contain tabs or
//! newlines. Floating-point values are written with Rust's shortest
//! round-trip formatting, so a parsed row is bit-identical to the row that
//! was written — the property the resume-equivalence test relies on.
//!
//! Identity is established by two FNV-1a hashes:
//!
//! * the **grid hash** covers everything that determines the result set —
//!   switch size, seed, scheduler list, load points, run configuration and
//!   the fault-injection schedule (but *not* timeouts or retry budgets,
//!   which only affect failure detection and may legitimately change
//!   between a run and its resume);
//! * the **cell key** additionally binds a line to its grid position, so a
//!   journal from a reordered or edited sweep is rejected rather than
//!   silently misattributed.
//!
//! Completed cells are reused on resume; failed cells are re-run (their
//! journal line records the failure for forensics, but a resume is the
//! natural moment to retry them, e.g. with a longer `--cell-timeout`).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::sync::Mutex;

use fifoms_stats::{DelaySummary, OccupancySummary, SaturationVerdict};
use fifoms_types::SimError;

use crate::engine::RunResult;
use crate::sweep::{CellFailureReason, CellOutcome, CellPolicy, FailedCell, Sweep, SweepRow};

const MAGIC: &str = "# fifoms sweep journal v1";

/// FNV-1a over a byte stream.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]); // field separator
    }
    fn finish(self) -> u64 {
        self.0
    }
}

/// Hash of everything that determines a sweep's result set.
pub(crate) fn grid_hash(sweep: &Sweep, policy: &CellPolicy) -> u64 {
    let mut h = Fnv::new();
    h.write_str(&format!("n={}", sweep.n));
    h.write_str(&format!("seed={}", sweep.seed));
    h.write_str(&format!(
        "run={},{},{},{}",
        sweep.run.slots, sweep.run.warmup, sweep.run.backlog_cap, sweep.run.sample_every
    ));
    for sk in &sweep.switches {
        h.write_str(&format!("switch={sk:?}"));
    }
    for (load, tk) in &sweep.points {
        h.write_str(&format!("point={},{tk:?}", load.to_bits()));
    }
    // The fault schedule changes results; checking/timeouts/retries don't.
    h.write_str(&format!("faults={}", fault_fingerprint(policy.faults.as_ref())));
    h.finish()
}

/// Render the fault schedule for the grid hash.
///
/// Ingress configs with no retry budget are rendered in the field set the
/// struct had before the egress fault model existed, so journals written
/// by earlier releases keep their grid hash and stay resumable. Egress
/// configs (or a nonzero retry budget) genuinely change the result set
/// and get the full rendering.
fn fault_fingerprint(faults: Option<&fifoms_fabric::FaultConfig>) -> String {
    use fifoms_fabric::FaultMode;
    match faults {
        None => "None".to_string(),
        Some(fc) if fc.mode == FaultMode::Ingress && fc.retry_budget == 0 => format!(
            "Some(FaultConfig {{ seed: {}, flap_period: {}, flap_duration: {}, \
             crosspoint_faults: {}, crosspoint_at: {}, crosspoint_duration: {} }})",
            fc.seed,
            fc.flap_period,
            fc.flap_duration,
            fc.crosspoint_faults,
            fc.crosspoint_at,
            fc.crosspoint_duration
        ),
        Some(fc) => format!("Some({fc:?})"),
    }
}

/// Key binding one journal line to one grid cell of one sweep.
pub(crate) fn cell_key(grid: u64, idx: usize, sweep: &Sweep) -> u64 {
    let points = sweep.points.len().max(1);
    let (si, pi) = (idx / points, idx % points);
    let mut h = Fnv::new();
    h.write(&grid.to_le_bytes());
    h.write_str(&format!("cell={idx}"));
    if let (Some(sk), Some((load, tk))) = (sweep.switches.get(si), sweep.points.get(pi)) {
        h.write_str(&format!("{sk:?}"));
        h.write_str(&format!("{},{tk:?}", load.to_bits()));
    }
    h.finish()
}

/// Replace characters that would break the line format.
fn sanitize(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

fn fmt_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "none".into(), |x| x.to_string())
}

fn fmt_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "none".into(), |x| x.to_string())
}

fn verdict_str(v: SaturationVerdict) -> &'static str {
    match v {
        SaturationVerdict::Stable => "stable",
        SaturationVerdict::Saturated => "saturated",
        SaturationVerdict::CapExceeded => "cap",
    }
}

/// Serialise one cell outcome as a journal line (no trailing newline).
pub(crate) fn encode_line(idx: usize, key: u64, outcome: &CellOutcome) -> String {
    let mut t = vec![format!("cell={idx}"), format!("key={key:016x}")];
    match outcome {
        CellOutcome::Completed(row) => {
            let r = &row.result;
            t.push("status=ok".into());
            t.push(format!("load={}", row.load));
            t.push(format!("sw={}", sanitize(&r.switch_name)));
            t.push(format!("tr={}", sanitize(&r.traffic_name)));
            t.push(format!("ol={}", fmt_opt_f64(r.offered_load)));
            let wl = r
                .workload
                .iter()
                .map(|(k, v)| format!("{}:{v}", sanitize(k).replace([';', ':'], " ")))
                .collect::<Vec<_>>()
                .join(";");
            t.push(format!("wl={wl}"));
            t.push(format!("din={}", r.delay.mean_input_oriented));
            t.push(format!("dout={}", r.delay.mean_output_oriented));
            t.push(format!("p99={}", fmt_opt_u64(r.delay.p99_output)));
            t.push(format!("dmax={}", fmt_opt_u64(r.delay.max_output)));
            t.push(format!("done={}", r.delay.completed_packets));
            t.push(format!("dcop={}", r.delay.delivered_copies));
            t.push(format!("qmean={}", r.occupancy.mean));
            t.push(format!("qmax={}", r.occupancy.max));
            t.push(format!("qslots={}", r.occupancy.slots_sampled));
            t.push(format!("rounds={}", r.mean_rounds));
            t.push(format!("verdict={}", verdict_str(r.verdict)));
            t.push(format!("slots={}", r.slots_run));
            t.push(format!("adm={}", r.packets_admitted));
            t.push(format!("cdel={}", r.copies_delivered));
            t.push(format!("thr={}", r.throughput));
        }
        CellOutcome::Failed(f) => {
            t.push("status=failed".into());
            t.push(format!("load={}", f.load));
            t.push(format!("attempts={}", f.attempts));
            match &f.reason {
                CellFailureReason::Panic(msg) => {
                    t.push("reason=panic".into());
                    t.push(format!("msg={}", sanitize(msg)));
                }
                CellFailureReason::Timeout { millis } => {
                    t.push("reason=timeout".into());
                    t.push(format!("msg=cell exceeded {millis} ms"));
                }
                CellFailureReason::Error(msg) => {
                    t.push("reason=error".into());
                    t.push(format!("msg={}", sanitize(msg)));
                }
            }
        }
    }
    t.join("\t")
}

/// One token of a journal line.
fn field<'a>(tokens: &'a [(&str, &str)], key: &str) -> Result<&'a str, String> {
    tokens
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| format!("missing field {key}"))
}

fn parse_num<T: std::str::FromStr>(tokens: &[(&str, &str)], key: &str) -> Result<T, String> {
    let raw = field(tokens, key)?;
    raw.parse()
        .map_err(|_| format!("bad value {raw} for {key}"))
}

fn parse_opt_f64(tokens: &[(&str, &str)], key: &str) -> Result<Option<f64>, String> {
    let raw = field(tokens, key)?;
    if raw == "none" {
        return Ok(None);
    }
    raw.parse()
        .map(Some)
        .map_err(|_| format!("bad value {raw} for {key}"))
}

/// Decode the `wl=` workload-provenance field. Journals written before the
/// field existed simply lack it; those rows decode with an empty workload
/// rather than failing, so PR 1 journals stay resumable.
fn parse_workload(tokens: &[(&str, &str)]) -> Result<Vec<(String, f64)>, String> {
    let raw = field(tokens, "wl").unwrap_or("");
    let mut out = Vec::new();
    for pair in raw.split(';').filter(|p| !p.is_empty()) {
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| format!("bad workload pair {pair}"))?;
        let num: f64 = v.parse().map_err(|_| format!("bad workload value {v}"))?;
        out.push((k.to_string(), num));
    }
    Ok(out)
}

fn parse_opt_u64(tokens: &[(&str, &str)], key: &str) -> Result<Option<u64>, String> {
    let raw = field(tokens, key)?;
    if raw == "none" {
        return Ok(None);
    }
    raw.parse()
        .map(Some)
        .map_err(|_| format!("bad value {raw} for {key}"))
}

/// Parse one journal line back into `(cell index, outcome)`.
///
/// `Err` means the line is torn or malformed (ignorable); a parseable line
/// whose key disagrees with the sweep is reported through `key_mismatch`
/// by the caller instead.
pub(crate) fn decode_line(line: &str, sweep: &Sweep) -> Result<(usize, u64, CellOutcome), String> {
    let tokens: Vec<(&str, &str)> = line
        .split('\t')
        .filter_map(|tok| tok.split_once('='))
        .collect();
    let idx: usize = parse_num(&tokens, "cell")?;
    let key = u64::from_str_radix(field(&tokens, "key")?, 16).map_err(|_| "bad key")?;
    let points = sweep.points.len().max(1);
    let sk = *sweep
        .switches
        .get(idx / points)
        .ok_or("cell index out of range")?;
    let load: f64 = parse_num(&tokens, "load")?;
    let outcome = match field(&tokens, "status")? {
        "ok" => CellOutcome::Completed(SweepRow {
            switch: sk,
            load,
            result: RunResult {
                switch_name: field(&tokens, "sw")?.to_string(),
                traffic_name: field(&tokens, "tr")?.to_string(),
                offered_load: parse_opt_f64(&tokens, "ol")?,
                workload: parse_workload(&tokens)?,
                delay: DelaySummary {
                    mean_input_oriented: parse_num(&tokens, "din")?,
                    mean_output_oriented: parse_num(&tokens, "dout")?,
                    p99_output: parse_opt_u64(&tokens, "p99")?,
                    max_output: parse_opt_u64(&tokens, "dmax")?,
                    completed_packets: parse_num(&tokens, "done")?,
                    delivered_copies: parse_num(&tokens, "dcop")?,
                },
                occupancy: OccupancySummary {
                    mean: parse_num(&tokens, "qmean")?,
                    max: parse_num(&tokens, "qmax")?,
                    slots_sampled: parse_num(&tokens, "qslots")?,
                },
                mean_rounds: parse_num(&tokens, "rounds")?,
                verdict: match field(&tokens, "verdict")? {
                    "stable" => SaturationVerdict::Stable,
                    "saturated" => SaturationVerdict::Saturated,
                    "cap" => SaturationVerdict::CapExceeded,
                    other => return Err(format!("bad verdict {other}")),
                },
                slots_run: parse_num(&tokens, "slots")?,
                packets_admitted: parse_num(&tokens, "adm")?,
                copies_delivered: parse_num(&tokens, "cdel")?,
                throughput: parse_num(&tokens, "thr")?,
            },
        }),
        "failed" => {
            let msg = field(&tokens, "msg").unwrap_or("").to_string();
            let reason = match field(&tokens, "reason")? {
                "panic" => CellFailureReason::Panic(msg),
                "timeout" => CellFailureReason::Timeout {
                    millis: msg
                        .split_whitespace()
                        .nth(2)
                        .and_then(|w| w.parse().ok())
                        .unwrap_or(0),
                },
                "error" => CellFailureReason::Error(msg),
                other => return Err(format!("bad reason {other}")),
            };
            CellOutcome::Failed(FailedCell {
                switch: sk,
                load,
                attempts: parse_num(&tokens, "attempts")?,
                reason,
            })
        }
        other => return Err(format!("bad status {other}")),
    };
    Ok((idx, key, outcome))
}

/// An open, append-mode checkpoint journal.
///
/// Appends are serialised through an internal mutex and flushed per line,
/// so parallel workers can record cells directly and a killed process
/// loses at most the line being written.
pub struct CheckpointJournal {
    path: String,
    grid: u64,
    writer: Mutex<BufWriter<File>>,
}

impl CheckpointJournal {
    fn io_err(path: &str, e: impl std::fmt::Display) -> SimError {
        SimError::Journal {
            path: path.to_string(),
            message: e.to_string(),
        }
    }

    /// Create (truncate) a journal for `sweep` at `path`.
    pub fn create(
        path: &str,
        sweep: &Sweep,
        policy: &CellPolicy,
    ) -> Result<CheckpointJournal, SimError> {
        let grid = grid_hash(sweep, policy);
        let file = File::create(path).map_err(|e| Self::io_err(path, e))?;
        let mut writer = BufWriter::new(file);
        let cells = sweep.switches.len() * sweep.points.len();
        writeln!(writer, "{MAGIC}").map_err(|e| Self::io_err(path, e))?;
        writeln!(
            writer,
            "# grid={grid:016x} cells={cells} seed={} n={}",
            sweep.seed, sweep.n
        )
        .map_err(|e| Self::io_err(path, e))?;
        writer.flush().map_err(|e| Self::io_err(path, e))?;
        Ok(CheckpointJournal {
            path: path.to_string(),
            grid,
            writer: Mutex::new(writer),
        })
    }

    /// Open an existing journal, validate it against `sweep`, and return
    /// the journal (positioned for appending) plus the per-cell outcomes
    /// it already holds. Missing file ⇒ fresh journal with no outcomes.
    ///
    /// Torn or malformed lines are skipped (their cells simply re-run);
    /// a line whose cell key disagrees with this sweep is a hard
    /// [`SimError::JournalMismatch`] — the journal belongs to a different
    /// grid and reusing it would silently misattribute results.
    #[allow(clippy::type_complexity)]
    pub fn resume(
        path: &str,
        sweep: &Sweep,
        policy: &CellPolicy,
    ) -> Result<(CheckpointJournal, Vec<Option<CellOutcome>>), SimError> {
        let cells = sweep.switches.len() * sweep.points.len();
        if !std::path::Path::new(path).exists() {
            return Ok((Self::create(path, sweep, policy)?, vec![None; cells]));
        }
        let grid = grid_hash(sweep, policy);
        let mut text = String::new();
        File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| Self::io_err(path, e))?;
        // A file that does not end in '\n' was torn mid-append. The torn
        // tail must be discarded even when it *parses*: a prefix of a
        // valid line can decode with a silently truncated numeric field
        // (`thr=0.95` torn to `thr=0.9`), which would poison the resumed
        // grid with a wrong-but-plausible row.
        let torn_tail = !text.is_empty() && !text.ends_with('\n');
        let mut all_lines: Vec<&str> = text.lines().collect();
        if torn_tail {
            if let Some(torn) = all_lines.pop() {
                eprintln!(
                    "warning: {path}: discarding torn final journal line \
                     ({} bytes); its cell will re-run",
                    torn.len()
                );
            }
        }
        let mut lines = all_lines.into_iter();
        let magic_ok = lines.next().is_some_and(|l| l.trim_end() == MAGIC);
        if !magic_ok {
            return Err(SimError::JournalMismatch {
                message: format!("{path} is not a sweep journal"),
            });
        }
        let header = lines.next().unwrap_or("");
        let header_grid = header
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("grid="))
            .and_then(|v| u64::from_str_radix(v, 16).ok());
        if header_grid != Some(grid) {
            let found = header_grid.map_or_else(|| "missing".to_string(), |g| format!("{g:016x}"));
            return Err(SimError::JournalMismatch {
                message: format!(
                    "{path} was written for a different sweep \
                     (grid {found} vs expected {grid:016x})"
                ),
            });
        }
        let mut loaded: Vec<Option<CellOutcome>> = vec![None; cells];
        for line in lines {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Ok((idx, key, outcome)) = decode_line(line, sweep) else {
                continue; // torn final line from a killed run
            };
            if idx >= cells || key != cell_key(grid, idx, sweep) {
                return Err(SimError::JournalMismatch {
                    message: format!("{path}: cell {idx} keyed for a different sweep"),
                });
            }
            loaded[idx] = Some(outcome); // duplicates: last write wins
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| Self::io_err(path, e))?;
        Ok((
            CheckpointJournal {
                path: path.to_string(),
                grid,
                writer: Mutex::new(BufWriter::new(file)),
            },
            loaded,
        ))
    }

    /// Append one finished cell and flush it to disk.
    pub fn record(&self, idx: usize, sweep: &Sweep, outcome: &CellOutcome) -> Result<(), SimError> {
        let line = encode_line(idx, cell_key(self.grid, idx, sweep), outcome);
        // Recover rather than propagate poisoning: the journal itself never
        // panics while holding the lock, and a poisoned-but-intact writer
        // is still the right place to append.
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        writeln!(writer, "{line}")
            .and_then(|()| writer.flush())
            .map_err(|e| Self::io_err(&self.path, e))
    }

    /// The journal's path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SwitchKind, TrafficKind};
    use crate::RunConfig;

    fn sweep() -> Sweep {
        Sweep {
            n: 8,
            switches: vec![SwitchKind::Fifoms, SwitchKind::OqFifo],
            points: vec![
                (0.2, TrafficKind::bernoulli_at_load(0.2, 0.25, 8)),
                (0.4, TrafficKind::bernoulli_at_load(0.4, 0.25, 8)),
            ],
            run: RunConfig::quick(2_000),
            seed: 7,
        }
    }

    fn sample_row(sweep: &Sweep) -> CellOutcome {
        let (load, tk) = sweep.points[1];
        let mut sw = sweep.switches[0].build(sweep.n, 1);
        let mut tr = tk.build(sweep.n, 2);
        let result = crate::engine::simulate(sw.as_mut(), tr.as_mut(), &sweep.run);
        CellOutcome::Completed(SweepRow {
            switch: sweep.switches[0],
            load,
            result,
        })
    }

    #[test]
    fn encode_decode_roundtrips_exactly() {
        let s = sweep();
        let outcome = sample_row(&s);
        let key = cell_key(grid_hash(&s, &CellPolicy::default()), 1, &s);
        let line = encode_line(1, key, &outcome);
        let (idx, k, decoded) = decode_line(&line, &s).expect("parse");
        assert_eq!((idx, k), (1, key));
        let (CellOutcome::Completed(a), CellOutcome::Completed(b)) = (&outcome, &decoded) else {
            panic!("wrong status");
        };
        assert_eq!(a.switch, b.switch);
        assert_eq!(a.load, b.load);
        assert_eq!(format!("{:?}", a.result), format!("{:?}", b.result));
    }

    #[test]
    fn lines_without_workload_field_still_decode() {
        // Journals written before the `wl=` field existed must stay
        // resumable; a missing field decodes as an empty workload.
        let s = sweep();
        let outcome = sample_row(&s);
        let line = encode_line(1, 3, &outcome);
        let stripped: String = line
            .split('\t')
            .filter(|tok| !tok.starts_with("wl="))
            .collect::<Vec<_>>()
            .join("\t");
        assert_ne!(line, stripped, "encoded line should carry wl=");
        let (_, _, decoded) = decode_line(&stripped, &s).expect("legacy line parses");
        let CellOutcome::Completed(row) = decoded else {
            panic!("wrong status");
        };
        assert!(row.result.workload.is_empty());
    }

    #[test]
    fn failed_rows_roundtrip() {
        let s = sweep();
        for reason in [
            CellFailureReason::Panic("index out of bounds: len 4".into()),
            CellFailureReason::Timeout { millis: 1500 },
            CellFailureReason::Error("invalid port count 0: must be in 1..=4096".into()),
        ] {
            let outcome = CellOutcome::Failed(FailedCell {
                switch: s.switches[1],
                load: 0.2,
                attempts: 3,
                reason: reason.clone(),
            });
            let line = encode_line(2, 1, &outcome);
            let (_, _, decoded) = decode_line(&line, &s).expect("parse");
            let CellOutcome::Failed(f) = decoded else {
                panic!("wrong status");
            };
            assert_eq!(f.attempts, 3);
            assert_eq!(f.reason, reason);
        }
    }

    #[test]
    fn resume_discards_a_byte_truncated_final_line() {
        let dir = std::env::temp_dir().join("fifoms-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.journal");
        let path = path.to_str().unwrap();
        let s = sweep();
        let p = CellPolicy::default();
        let outcome = sample_row(&s);
        {
            let journal = CheckpointJournal::create(path, &s, &p).unwrap();
            journal.record(0, &s, &outcome).unwrap();
            journal.record(1, &s, &outcome).unwrap();
        }
        let full = std::fs::read(path).unwrap();
        // Truncate the final line at every byte offset, including cuts
        // that leave a *parseable* prefix (e.g. a shortened float); the
        // resume must never surface cell 1 from a torn tail, and cell 0
        // (safely newline-terminated) must always survive.
        let line_start = full[..full.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .unwrap()
            + 1;
        for cut in line_start..full.len() - 1 {
            std::fs::write(path, &full[..cut]).unwrap();
            let (_j, loaded) = CheckpointJournal::resume(path, &s, &p)
                .unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
            assert!(loaded[0].is_some(), "cut at byte {cut} lost cell 0");
            assert!(loaded[1].is_none(), "cut at byte {cut} resurrected the torn cell");
        }
        // The intact file still loads both.
        std::fs::write(path, &full).unwrap();
        let (_j, loaded) = CheckpointJournal::resume(path, &s, &p).unwrap();
        assert!(loaded[0].is_some() && loaded[1].is_some());
    }

    #[test]
    fn ingress_fault_fingerprint_keeps_the_pre_egress_shape() {
        // Grid hashes of ingress-mode schedules must not change now that
        // FaultConfig carries egress fields, or old journals with fault
        // sweeps would refuse to resume.
        let fc = fifoms_fabric::FaultConfig::moderate(3);
        assert_eq!(
            fault_fingerprint(Some(&fc)),
            "Some(FaultConfig { seed: 3, flap_period: 1000, flap_duration: 50, \
             crosspoint_faults: 2, crosspoint_at: 500, crosspoint_duration: 2000 })"
        );
        // Egress mode (and a retry budget) genuinely change the results,
        // so they must change the fingerprint.
        let eg = fifoms_fabric::FaultConfig::egress(3);
        assert_ne!(fault_fingerprint(Some(&eg)), fault_fingerprint(Some(&fc)));
        let mut budgeted = fc;
        budgeted.retry_budget = 1;
        assert_ne!(fault_fingerprint(Some(&budgeted)), fault_fingerprint(Some(&fc)));
    }

    #[test]
    fn grid_hash_tracks_result_affecting_fields_only() {
        let s = sweep();
        let p = CellPolicy::default();
        let base = grid_hash(&s, &p);
        let mut s2 = s.clone();
        s2.seed = 8;
        assert_ne!(base, grid_hash(&s2, &p));
        let mut s3 = s.clone();
        s3.run.slots = 4_000;
        assert_ne!(base, grid_hash(&s3, &p));
        let mut p2 = p.clone();
        p2.faults = Some(fifoms_fabric::FaultConfig::moderate(1));
        assert_ne!(base, grid_hash(&s, &p2));
        // Timeout and retry budgets do not invalidate a journal.
        let mut p3 = p.clone();
        p3.timeout = Some(std::time::Duration::from_secs(5));
        p3.retries = 9;
        assert_eq!(base, grid_hash(&s, &p3));
    }

    #[test]
    fn resume_rejects_foreign_and_corrupt_journals() {
        let dir = std::env::temp_dir().join("fifoms-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let s = sweep();
        let p = CellPolicy::default();

        // Not a journal at all.
        let bogus = dir.join("bogus.journal");
        std::fs::write(&bogus, "hello\nworld\n").unwrap();
        let err = CheckpointJournal::resume(bogus.to_str().unwrap(), &s, &p)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, SimError::JournalMismatch { .. }), "{err}");

        // A journal for a different sweep.
        let other = dir.join("other.journal");
        let mut s2 = s.clone();
        s2.seed = 99;
        CheckpointJournal::create(other.to_str().unwrap(), &s2, &p).unwrap();
        let err = CheckpointJournal::resume(other.to_str().unwrap(), &s, &p)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, SimError::JournalMismatch { .. }), "{err}");
    }

    #[test]
    fn journal_records_and_reloads_cells() {
        let dir = std::env::temp_dir().join("fifoms-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reload.journal");
        let path = path.to_str().unwrap();
        let s = sweep();
        let p = CellPolicy::default();
        let outcome = sample_row(&s);
        {
            let journal = CheckpointJournal::create(path, &s, &p).unwrap();
            journal.record(1, &s, &outcome).unwrap();
        }
        let (_journal, loaded) = CheckpointJournal::resume(path, &s, &p).unwrap();
        assert_eq!(loaded.len(), 4);
        assert!(loaded[0].is_none() && loaded[2].is_none() && loaded[3].is_none());
        let Some(CellOutcome::Completed(row)) = &loaded[1] else {
            panic!("cell 1 not reloaded: {:?}", loaded[1]);
        };
        let CellOutcome::Completed(orig) = &outcome else {
            unreachable!()
        };
        assert_eq!(format!("{:?}", row.result), format!("{:?}", orig.result));

        // A torn final line is skipped, not fatal.
        let mut text = std::fs::read_to_string(path).unwrap();
        text.push_str("cell=2\tkey=00000000");
        std::fs::write(path, text).unwrap();
        let (_journal, loaded) = CheckpointJournal::resume(path, &s, &p).unwrap();
        assert!(loaded[1].is_some() && loaded[2].is_none());
    }
}
