//! Aligned ASCII tables, CSV emission and text plots for sweep results.

use std::fmt::Write as _;

use crate::{SweepRow, SwitchKind};

/// A simple column-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let total = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing commas
    /// or quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                    out.push('"');
                    out.push_str(&cell.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// The four per-figure metrics of the paper's result plots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Fig. (a): average input-oriented delay.
    InputDelay,
    /// Fig. (b): average output-oriented delay.
    OutputDelay,
    /// Fig. (c): average queue size.
    AvgQueue,
    /// Fig. (d): maximum queue size.
    MaxQueue,
    /// Fig. 5: average convergence rounds.
    Rounds,
    /// Extension: measured throughput.
    Throughput,
}

impl Metric {
    /// Column title.
    pub fn title(&self) -> &'static str {
        match self {
            Metric::InputDelay => "in-delay",
            Metric::OutputDelay => "out-delay",
            Metric::AvgQueue => "avg-queue",
            Metric::MaxQueue => "max-queue",
            Metric::Rounds => "rounds",
            Metric::Throughput => "throughput",
        }
    }

    /// Extract the metric from a row. Saturated points report the value
    /// measured before censoring; pair with [`SweepRow::result`]'s verdict
    /// when interpreting.
    pub fn value(&self, row: &SweepRow) -> f64 {
        match self {
            Metric::InputDelay => row.result.delay.mean_input_oriented,
            Metric::OutputDelay => row.result.delay.mean_output_oriented,
            Metric::AvgQueue => row.result.occupancy.mean,
            Metric::MaxQueue => row.result.occupancy.max as f64,
            Metric::Rounds => row.result.mean_rounds,
            Metric::Throughput => row.result.throughput,
        }
    }
}

/// Build the per-figure comparison table: one row per load point, one
/// column per scheduler, cells showing `metric` (saturated points suffixed
/// with `*`).
pub fn figure_table(rows: &[SweepRow], switches: &[SwitchKind], metric: Metric) -> Table {
    let mut headers = vec!["load".to_string()];
    headers.extend(switches.iter().map(|s| s.label()));
    let mut table = Table::new(headers);
    let mut loads: Vec<f64> = rows.iter().map(|r| r.load).collect();
    loads.sort_by(f64::total_cmp);
    loads.dedup();
    for load in loads {
        let mut cells = vec![format!("{load:.2}")];
        for sk in switches {
            let cell = rows
                .iter()
                .find(|r| r.switch == *sk && r.load == load)
                .map(|r| {
                    if r.result.is_stable() {
                        format!("{:.3}", metric.value(r))
                    } else if r.result.delay.delivered_copies == 0 {
                        // saturation aborted the run before the
                        // measurement window opened: no number to report
                        "sat".to_string()
                    } else {
                        format!("{:.3}*", metric.value(r))
                    }
                })
                .unwrap_or_else(|| "-".to_string());
            cells.push(cell);
        }
        table.push_row(cells);
    }
    table
}

/// Full-detail CSV of a sweep: one row per (scheduler, load).
pub fn sweep_csv(rows: &[SweepRow]) -> String {
    let mut table = Table::new(vec![
        "scheduler",
        "load",
        "in_delay",
        "out_delay",
        "avg_queue",
        "max_queue",
        "rounds",
        "throughput",
        "stable",
        "slots",
        "packets",
    ]);
    for r in rows {
        table.push_row(vec![
            r.switch.label(),
            format!("{:.4}", r.load),
            format!("{:.4}", r.result.delay.mean_input_oriented),
            format!("{:.4}", r.result.delay.mean_output_oriented),
            format!("{:.4}", r.result.occupancy.mean),
            format!("{}", r.result.occupancy.max),
            format!("{:.4}", r.result.mean_rounds),
            format!("{:.4}", r.result.throughput),
            format!("{}", r.result.is_stable()),
            format!("{}", r.result.slots_run),
            format!("{}", r.result.packets_admitted),
        ]);
    }
    table.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunConfig, Sweep, TrafficKind};

    #[test]
    fn table_alignment_and_csv() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.push_row(vec!["1", "2"]);
        t.push_row(vec!["333", "4,4"]);
        let text = t.render();
        assert!(text.contains("long-header"));
        assert!(text.lines().count() == 4);
        let csv = t.to_csv();
        assert!(csv.contains("\"4,4\""), "comma cell must be quoted: {csv}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a"]);
        t.push_row(vec!["1", "2"]);
    }

    #[test]
    fn csv_quote_escaping() {
        let mut t = Table::new(vec!["x"]);
        t.push_row(vec!["say \"hi\""]);
        assert!(t.to_csv().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn figure_table_from_real_sweep() {
        let sweep = Sweep {
            n: 4,
            switches: vec![SwitchKind::Fifoms, SwitchKind::OqFifo],
            points: vec![(0.3, TrafficKind::bernoulli_at_load(0.3, 0.5, 4))],
            run: RunConfig::quick(2_000),
            seed: 3,
        };
        let rows = sweep.run_serial();
        for metric in [
            Metric::InputDelay,
            Metric::OutputDelay,
            Metric::AvgQueue,
            Metric::MaxQueue,
            Metric::Rounds,
            Metric::Throughput,
        ] {
            let t = figure_table(&rows, &sweep.switches, metric);
            assert_eq!(t.len(), 1);
            let text = t.render();
            assert!(text.contains("FIFOMS"));
            assert!(text.contains("OQFIFO"));
            assert!(text.contains("0.30"));
            let _ = metric.title();
        }
        let csv = sweep_csv(&rows);
        assert!(csv.lines().count() == 3); // header + 2 rows
        assert!(csv.starts_with("scheduler,load"));
    }

    #[test]
    fn missing_cell_renders_dash() {
        let sweep = Sweep {
            n: 4,
            switches: vec![SwitchKind::Fifoms],
            points: vec![(0.2, TrafficKind::bernoulli_at_load(0.2, 0.5, 4))],
            run: RunConfig::quick(1_000),
            seed: 1,
        };
        let rows = sweep.run_serial();
        // ask for a scheduler that never ran
        let t = figure_table(&rows, &[SwitchKind::Fifoms, SwitchKind::Tatra], Metric::AvgQueue);
        assert!(t.render().contains('-'));
    }
}
