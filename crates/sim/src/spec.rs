//! Buildable specifications of schedulers and workloads.
//!
//! Experiments are declared as data — a [`SwitchKind`] × [`TrafficKind`]
//! grid — and instantiated per run. This keeps sweeps serialisable into
//! reports and lets the bench harness and CLI share one vocabulary.

use fifoms_baselines::{
    IslipSwitch, McFifoSwitch, OqFifoSwitch, PimSwitch, SpeedupOqSwitch, TatraSwitch,
    TwoDrrSwitch, WbaSwitch,
};
use fifoms_core::{FifomsConfig, MulticastVoqSwitch, TieBreak};
use fifoms_fabric::{Backlog, Switch};
use fifoms_traffic::{
    BernoulliMulticast, BurstTraffic, DiagonalUnicast, HotspotUnicast, MixedTraffic,
    TrafficModel, UniformFanout, UniformUnicast,
};
use fifoms_types::{Packet, PortId, SimError, Slot, SlotOutcome};

/// A scheduler specification.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SwitchKind {
    /// FIFOMS with the paper's defaults.
    Fifoms,
    /// FIFOMS ablation: one request per input per round (no one-shot
    /// multicast).
    FifomsSingleRequest,
    /// FIFOMS ablation: cap on iterative rounds per slot.
    FifomsMaxRounds(u32),
    /// FIFOMS ablation: alternative grant tie-break rule.
    FifomsTieBreak(TieBreak),
    /// FIFOMS ablation: restricted per-slot grant fanout (the paper’s reference \[15\]).
    FifomsFanoutCap(usize),
    /// iSLIP; `None` iterates to convergence, `Some(k)` caps iterations.
    Islip(Option<usize>),
    /// PIM; same iteration convention as iSLIP.
    Pim(Option<usize>),
    /// 2DRR, the diagonal round-robin VOQ scheduler (the paper’s reference \[9\]).
    TwoDrr,
    /// TATRA on the single-input-queued switch.
    Tatra,
    /// WBA on the single-input-queued switch.
    Wba,
    /// FIFO output queueing (speedup-N idealisation).
    OqFifo,
    /// Output queueing with explicit finite internal speedup `S`.
    OqSpeedup(usize),
    /// Naive multicast FIFO switch; `splitting` selects fanout splitting.
    McFifo {
        /// Whether partial (split) service is allowed.
        splitting: bool,
    },
    /// Chaos scheduler for robustness testing: behaves as FIFOMS until
    /// slot `at`, then panics in `run_slot`. Not a paper experiment —
    /// it exists so fault isolation in the sweep runner can be exercised
    /// through the ordinary grid vocabulary.
    ChaosPanic {
        /// Slot at which `run_slot` panics.
        at: u64,
    },
    /// Chaos scheduler for robustness testing: behaves as FIFOMS until
    /// slot `at`, then stops returning from `run_slot` (sleeps forever).
    /// Exercises the sweep runner's per-cell watchdog.
    ChaosStall {
        /// Slot at which `run_slot` stalls.
        at: u64,
    },
}

/// The misbehaving switch behind [`SwitchKind::ChaosPanic`] and
/// [`SwitchKind::ChaosStall`].
struct ChaosSwitch {
    inner: Box<dyn Switch>,
    panic_at: Option<u64>,
    stall_at: Option<u64>,
}

impl Switch for ChaosSwitch {
    fn name(&self) -> String {
        format!("chaos({})", self.inner.name())
    }
    fn ports(&self) -> usize {
        self.inner.ports()
    }
    fn admit(&mut self, packet: Packet) {
        self.inner.admit(packet);
    }
    fn run_slot(&mut self, now: Slot) -> SlotOutcome {
        if self.panic_at.is_some_and(|at| now.0 >= at) {
            panic!("chaos switch injected a panic at slot {}", now.0);
        }
        if self.stall_at.is_some_and(|at| now.0 >= at) {
            // Never returns; a watchdog-guarded cell times out and leaks
            // this (sleeping, detached) thread.
            loop {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
        self.inner.run_slot(now)
    }
    fn queue_sizes(&self, out: &mut Vec<usize>) {
        self.inner.queue_sizes(out);
    }
    fn backlog(&self) -> Backlog {
        self.inner.backlog()
    }
}

impl SwitchKind {
    /// The paper's four compared schedulers, in its plotting order.
    pub fn paper_set() -> Vec<SwitchKind> {
        vec![
            SwitchKind::Fifoms,
            SwitchKind::Tatra,
            SwitchKind::Islip(None),
            SwitchKind::OqFifo,
        ]
    }

    /// Instantiate an `n×n` switch. `seed` derandomises tie-breaks.
    pub fn build(&self, n: usize, seed: u64) -> Box<dyn Switch> {
        match *self {
            SwitchKind::Fifoms => Box::new(MulticastVoqSwitch::new(n, seed)),
            SwitchKind::FifomsSingleRequest => Box::new(MulticastVoqSwitch::with_config(
                n,
                seed,
                FifomsConfig {
                    single_request: true,
                    ..FifomsConfig::default()
                },
            )),
            SwitchKind::FifomsMaxRounds(k) => Box::new(MulticastVoqSwitch::with_config(
                n,
                seed,
                FifomsConfig {
                    max_rounds: Some(k),
                    ..FifomsConfig::default()
                },
            )),
            SwitchKind::FifomsTieBreak(tb) => Box::new(MulticastVoqSwitch::with_config(
                n,
                seed,
                FifomsConfig {
                    tie_break: tb,
                    ..FifomsConfig::default()
                },
            )),
            SwitchKind::FifomsFanoutCap(f) => Box::new(MulticastVoqSwitch::with_config(
                n,
                seed,
                FifomsConfig {
                    max_grant_fanout: Some(f),
                    ..FifomsConfig::default()
                },
            )),
            SwitchKind::TwoDrr => Box::new(TwoDrrSwitch::new(n)),
            SwitchKind::OqSpeedup(s) => Box::new(SpeedupOqSwitch::new(n, s)),
            SwitchKind::Islip(None) => Box::new(IslipSwitch::new(n)),
            SwitchKind::Islip(Some(k)) => Box::new(IslipSwitch::with_iterations(n, k)),
            SwitchKind::Pim(None) => Box::new(PimSwitch::new(n, seed)),
            SwitchKind::Pim(Some(k)) => Box::new(PimSwitch::with_iterations(n, k, seed)),
            SwitchKind::Tatra => Box::new(TatraSwitch::new(n)),
            SwitchKind::Wba => Box::new(WbaSwitch::new(n, seed)),
            SwitchKind::OqFifo => Box::new(OqFifoSwitch::new(n)),
            SwitchKind::McFifo { splitting } => {
                Box::new(McFifoSwitch::with_splitting(n, seed, splitting))
            }
            SwitchKind::ChaosPanic { at } => Box::new(ChaosSwitch {
                inner: Box::new(MulticastVoqSwitch::new(n, seed)),
                panic_at: Some(at),
                stall_at: None,
            }),
            SwitchKind::ChaosStall { at } => Box::new(ChaosSwitch {
                inner: Box::new(MulticastVoqSwitch::new(n, seed)),
                panic_at: None,
                stall_at: Some(at),
            }),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match *self {
            SwitchKind::Fifoms => "FIFOMS".into(),
            SwitchKind::FifomsSingleRequest => "FIFOMS-1req".into(),
            SwitchKind::FifomsMaxRounds(k) => format!("FIFOMS-r{k}"),
            SwitchKind::FifomsTieBreak(TieBreak::Random) => "FIFOMS".into(),
            SwitchKind::FifomsTieBreak(TieBreak::LowestInput) => "FIFOMS-lowtie".into(),
            SwitchKind::FifomsTieBreak(TieBreak::Rotating) => "FIFOMS-rottie".into(),
            SwitchKind::FifomsFanoutCap(f) => format!("FIFOMS-f{f}"),
            SwitchKind::TwoDrr => "2DRR".into(),
            SwitchKind::OqSpeedup(s) => format!("OQ-S{s}"),
            SwitchKind::Islip(None) => "iSLIP".into(),
            SwitchKind::Islip(Some(k)) => format!("iSLIP-{k}"),
            SwitchKind::Pim(None) => "PIM".into(),
            SwitchKind::Pim(Some(k)) => format!("PIM-{k}"),
            SwitchKind::Tatra => "TATRA".into(),
            SwitchKind::Wba => "WBA".into(),
            SwitchKind::OqFifo => "OQFIFO".into(),
            SwitchKind::McFifo { splitting: true } => "mcFIFO".into(),
            SwitchKind::McFifo { splitting: false } => "mcFIFO-nosplit".into(),
            SwitchKind::ChaosPanic { at } => format!("chaos-panic@{at}"),
            SwitchKind::ChaosStall { at } => format!("chaos-stall@{at}"),
        }
    }
}

/// A workload specification.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TrafficKind {
    /// Bernoulli multicast `(p, b)` (paper §V-A).
    Bernoulli {
        /// Per-slot arrival probability.
        p: f64,
        /// Per-output destination probability.
        b: f64,
    },
    /// Uniform fanout `(p, maxFanout)` (paper §V-B).
    Uniform {
        /// Per-slot arrival probability.
        p: f64,
        /// Maximum fanout.
        max_fanout: usize,
    },
    /// Bursty on/off `(E_off, E_on, b)` (paper §V-C).
    Burst {
        /// Mean off-period length in slots.
        e_off: f64,
        /// Mean on-period (burst) length in slots.
        e_on: f64,
        /// Per-output destination probability.
        b: f64,
    },
    /// Mixed unicast/multicast Bernoulli (extension; the intro's "mixed
    /// multicast and unicast packets" regime).
    Mixed {
        /// Per-slot arrival probability.
        p: f64,
        /// Probability an arrival is multicast (fanout >= 2).
        frac_multicast: f64,
        /// Per-output destination probability for multicast arrivals.
        b: f64,
    },
    /// Uniform unicast at probability `p` (extension).
    UniformUnicast {
        /// Per-slot arrival probability.
        p: f64,
    },
    /// Diagonal unicast at probability `p` (extension).
    Diagonal {
        /// Per-slot arrival probability.
        p: f64,
    },
    /// Hotspot unicast (extension): fraction `h` of packets to `hot`.
    Hotspot {
        /// Per-slot arrival probability.
        p: f64,
        /// The hot output port.
        hot: usize,
        /// Fraction of packets addressed to the hot output.
        h: f64,
    },
}

impl TrafficKind {
    /// Bernoulli workload at nominal effective load `load` (Figs. 4–5
    /// sweep axis: `p = load/(b·N)`).
    pub fn bernoulli_at_load(load: f64, b: f64, n: usize) -> TrafficKind {
        TrafficKind::Bernoulli {
            p: BernoulliMulticast::p_for_load(load, n, b),
            b,
        }
    }

    /// Uniform-fanout workload at effective load `load` (Figs. 6–7 sweep
    /// axis: `p = 2·load/(1+maxFanout)`).
    pub fn uniform_at_load(load: f64, max_fanout: usize) -> TrafficKind {
        TrafficKind::Uniform {
            p: UniformFanout::p_for_load(load, max_fanout),
            max_fanout,
        }
    }

    /// Burst workload at effective load `load` with fixed `E_on` and `b`
    /// (Fig. 8 sweep axis: `E_off = E_on·(bN/load − 1)`).
    pub fn burst_at_load(load: f64, e_on: f64, b: f64, n: usize) -> TrafficKind {
        TrafficKind::Burst {
            e_off: BurstTraffic::e_off_for_load(load, n, e_on, b),
            e_on,
            b,
        }
    }

    /// Instantiate the model for an `n×n` switch.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid for this `n` (experiment specs
    /// are programmer-constructed). Use [`TrafficKind::try_build`] on
    /// user-facing paths where the parameters derive from CLI input.
    pub fn build(&self, n: usize, seed: u64) -> Box<dyn TrafficModel> {
        match self.try_build(n, seed) {
            Ok(model) => model,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`TrafficKind::build`]: invalid parameters (for
    /// example a load that pushes `p` past 1 on a small switch) surface as
    /// a [`SimError`] instead of panicking.
    pub fn try_build(&self, n: usize, seed: u64) -> Result<Box<dyn TrafficModel>, SimError> {
        Ok(match *self {
            TrafficKind::Bernoulli { p, b } => Box::new(BernoulliMulticast::new(n, p, b, seed)?),
            TrafficKind::Uniform { p, max_fanout } => {
                Box::new(UniformFanout::new(n, p, max_fanout, seed)?)
            }
            TrafficKind::Burst { e_off, e_on, b } => {
                Box::new(BurstTraffic::new(n, e_off, e_on, b, seed)?)
            }
            TrafficKind::Mixed {
                p,
                frac_multicast,
                b,
            } => Box::new(MixedTraffic::new(n, p, frac_multicast, b, seed)?),
            TrafficKind::UniformUnicast { p } => Box::new(UniformUnicast::new(n, p, seed)?),
            TrafficKind::Diagonal { p } => Box::new(DiagonalUnicast::new(n, p, seed)?),
            TrafficKind::Hotspot { p, hot, h } => {
                Box::new(HotspotUnicast::new(n, p, PortId::new(hot), h, seed)?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_order() {
        let labels: Vec<String> = SwitchKind::paper_set().iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["FIFOMS", "TATRA", "iSLIP", "OQFIFO"]);
    }

    #[test]
    fn every_switch_kind_builds_and_names() {
        let kinds = [
            SwitchKind::Fifoms,
            SwitchKind::FifomsSingleRequest,
            SwitchKind::FifomsMaxRounds(2),
            SwitchKind::FifomsTieBreak(TieBreak::LowestInput),
            SwitchKind::FifomsTieBreak(TieBreak::Rotating),
            SwitchKind::FifomsFanoutCap(2),
            SwitchKind::TwoDrr,
            SwitchKind::OqSpeedup(1),
            SwitchKind::OqSpeedup(4),
            SwitchKind::Islip(None),
            SwitchKind::Islip(Some(1)),
            SwitchKind::Pim(None),
            SwitchKind::Pim(Some(2)),
            SwitchKind::Tatra,
            SwitchKind::Wba,
            SwitchKind::OqFifo,
            SwitchKind::McFifo { splitting: true },
            SwitchKind::McFifo { splitting: false },
        ];
        for k in kinds {
            let sw = k.build(8, 42);
            assert_eq!(sw.ports(), 8, "{}", k.label());
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn every_traffic_kind_builds() {
        let kinds = [
            TrafficKind::Bernoulli { p: 0.2, b: 0.2 },
            TrafficKind::Uniform {
                p: 0.2,
                max_fanout: 4,
            },
            TrafficKind::Burst {
                e_off: 64.0,
                e_on: 16.0,
                b: 0.5,
            },
            TrafficKind::Mixed {
                p: 0.4,
                frac_multicast: 0.3,
                b: 0.25,
            },
            TrafficKind::UniformUnicast { p: 0.5 },
            TrafficKind::Diagonal { p: 0.5 },
            TrafficKind::Hotspot {
                p: 0.5,
                hot: 0,
                h: 0.3,
            },
        ];
        for k in kinds {
            let tr = k.build(8, 1);
            assert_eq!(tr.ports(), 8);
        }
    }

    #[test]
    fn at_load_constructors_hit_requested_load() {
        let n = 16;
        let tr = TrafficKind::bernoulli_at_load(0.8, 0.2, n).build(n, 0);
        assert!((tr.effective_load().unwrap() - 0.8).abs() < 1e-9);
        let tr = TrafficKind::uniform_at_load(0.6, 8).build(n, 0);
        assert!((tr.effective_load().unwrap() - 0.6).abs() < 1e-9);
        let tr = TrafficKind::burst_at_load(0.5, 16.0, 0.5, n).build(n, 0);
        assert!((tr.effective_load().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn try_build_rejects_overdriven_load_without_panicking() {
        // Load 1.25 per output on a 4-port switch needs p > 1.
        let tk = TrafficKind::bernoulli_at_load(1.25, 0.25, 4);
        let err = tk.try_build(4, 0).map(|_| ()).unwrap_err();
        assert!(matches!(err, SimError::Config(_)), "got {err:?}");
    }
}
