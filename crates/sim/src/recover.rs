//! Crash-safe run checkpointing and bit-identical recovery (DESIGN.md §15).
//!
//! Three pieces cooperate so a run killed at *any* slot and restarted from
//! disk produces the same trace bytes, the same metrics and the same final
//! [`RunResult`](crate::RunResult) as the uninterrupted run:
//!
//! * [`CheckpointStore`] — two rotating checkpoint files
//!   (`checkpoint-a.bin` / `checkpoint-b.bin`, selected by `seq % 2`),
//!   each written atomically (temp + rename) and wrapped in the
//!   CRC-guarded `FMCK` envelope. A torn, flipped or truncated file fails
//!   envelope validation and [`CheckpointStore::load_candidates`] falls
//!   back to the *other* file — corruption costs one checkpoint interval,
//!   never the run.
//! * The arrival WAL (`arrivals.wal`) — one CRC-guarded record per slot
//!   holding that slot's raw arrival vector. Recovery replays the gap
//!   between the last checkpoint and the crash in lockstep with the
//!   restored traffic model, *verifying* that the regenerated arrivals
//!   match the logged ones (a divergence means the checkpoint and the
//!   model disagree, and surfaces as [`SimError::Recovery`] rather than a
//!   silently different run). The WAL is truncated at every checkpoint.
//! * [`RecoveryRuntime`] — the engine-facing driver: decides when a
//!   checkpoint is due, captures/encodes/applies the full run state
//!   (engine counters, statistics accumulators, switch stack, traffic
//!   model, optional telemetry), tracks the absolute trace byte offset so
//!   a resumed trace continues exactly where the checkpoint left it, and
//!   hosts the deliberate `kill_at` crash hook the kill-and-recover tests
//!   drive.
//!
//! Bit-identity hinges on one ordering rule: the checkpoint is taken at
//! the *top* of slot `t`, before the slot's traffic draw, and the trace
//! offset is captured *before* the `checkpoint_written` event is emitted.
//! A resumed run restarts at slot `t`, re-fires the due checkpoint
//! (idempotently rewriting the same file and re-emitting the identical
//! event) and proceeds — so the recovered trace is byte-for-byte the
//! uninterrupted one.

use std::collections::VecDeque;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use fifoms_fabric::Switch;
use fifoms_obs::{sweep_stale_tmp, write_atomically, Telemetry, TraceOffset};
use fifoms_stats::{
    DelayStats, Histogram, OccupancyTracker, RunningStat, SaturationDetector,
};
use fifoms_traffic::TrafficModel;
use fifoms_types::{
    crc32, frame_state, unframe_state, Checkpoint, PortSet, SimError, StateError, StateReader,
    StateWriter,
};

/// Envelope kind of a checkpoint *file* (the on-disk wrapper carrying the
/// sequence number plus the run-state blob).
const FILE_KIND: &str = "fifoms-checkpoint-file";
/// Envelope kind of the run-state blob itself.
const RUN_KIND: &str = "fifoms-run";
/// Payload layout version of both envelopes.
const STATE_V1: u16 = 1;

/// Where and how often to checkpoint a run.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory holding the checkpoint files and the arrival WAL.
    pub dir: PathBuf,
    /// Checkpoint interval in slots (a checkpoint is due at every slot
    /// `t` with `t % every == 0 && t != 0`).
    pub every: u64,
}

fn io_recovery(path: &Path, what: &str, e: std::io::Error) -> SimError {
    SimError::Recovery {
        message: format!("{what} {}: {e}", path.display()),
    }
}

/// The rotating two-file checkpoint store.
///
/// Writes land alternately in `checkpoint-a.bin` and `checkpoint-b.bin`
/// (by sequence parity), so the previous checkpoint is never overwritten
/// by the one currently being written: a crash mid-write costs at most
/// one interval of progress.
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) the store directory, sweeping any
    /// orphaned `*.tmp` files a crashed writer left behind.
    pub fn open(dir: &Path) -> Result<CheckpointStore, SimError> {
        fs::create_dir_all(dir).map_err(|e| io_recovery(dir, "create checkpoint dir", e))?;
        sweep_stale_tmp(dir);
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
        })
    }

    fn file_path(&self, seq: u64) -> PathBuf {
        self.dir.join(if seq.is_multiple_of(2) {
            "checkpoint-a.bin"
        } else {
            "checkpoint-b.bin"
        })
    }

    /// Atomically persist checkpoint `seq`, returning the bytes written.
    pub fn save(&self, seq: u64, state: &[u8]) -> Result<u64, SimError> {
        let mut w = StateWriter::new();
        w.put_u64(seq);
        w.put_bytes(state);
        let blob = frame_state(FILE_KIND, STATE_V1, &w.into_bytes());
        let path = self.file_path(seq);
        write_atomically(&path, &blob).map_err(|e| io_recovery(&path, "write checkpoint", e))?;
        Ok(blob.len() as u64)
    }

    /// All decodable checkpoints on disk, newest first.
    ///
    /// Unreadable, torn, bit-flipped or truncated files are silently
    /// skipped — that *is* the corruption fallback: the caller restores
    /// from the newest candidate that fully decodes.
    pub fn load_candidates(&self) -> Vec<(u64, Vec<u8>)> {
        let mut found = Vec::new();
        for name in ["checkpoint-a.bin", "checkpoint-b.bin"] {
            let path = self.dir.join(name);
            let Ok(blob) = fs::read(&path) else {
                continue;
            };
            let Ok((version, payload)) = unframe_state(&blob, FILE_KIND) else {
                continue;
            };
            if version != STATE_V1 {
                continue;
            }
            let mut r = StateReader::new(payload);
            let Ok(seq) = r.get_u64() else { continue };
            let Ok(state) = r.get_bytes() else { continue };
            if !r.is_exhausted() {
                continue;
            }
            found.push((seq, state.to_vec()));
        }
        found.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq));
        found
    }
}

/// Append-side handle on the arrival WAL.
///
/// Record layout: `u32 len | payload | u32 crc32(payload)`, all
/// little-endian, flushed per record so the log survives the process.
pub struct WalWriter {
    file: fs::File,
    path: PathBuf,
}

impl WalWriter {
    /// Open the WAL at `path`, truncating any previous contents (callers
    /// read the old log *before* opening the writer).
    pub fn open(path: &Path) -> Result<WalWriter, SimError> {
        let file = fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_recovery(path, "open WAL", e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Append one slot's arrival vector.
    pub fn append(&mut self, slot: u64, arrivals: &[Option<PortSet>]) -> Result<(), SimError> {
        let mut w = StateWriter::new();
        w.put_u64(slot);
        w.put_usize(arrivals.len());
        for a in arrivals {
            match a {
                Some(dests) => {
                    w.put_bool(true);
                    w.put_port_set(dests);
                }
                None => w.put_bool(false),
            }
        }
        let payload = w.into_bytes();
        let mut record = Vec::with_capacity(payload.len() + 8);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.file
            .write_all(&record)
            .and_then(|()| self.file.flush())
            .map_err(|e| io_recovery(&self.path, "append WAL", e))
    }

    /// Discard every record (called when a checkpoint supersedes them).
    pub fn reset(&mut self) -> Result<(), SimError> {
        self.file
            .set_len(0)
            .and_then(|()| self.file.seek(SeekFrom::Start(0)).map(|_| ()))
            .map_err(|e| io_recovery(&self.path, "reset WAL", e))
    }
}

/// Read the valid prefix of a WAL: decoding stops at the first torn,
/// truncated or CRC-mismatching record (the tail a crash tore off).
pub fn read_wal(path: &Path) -> Vec<(u64, Vec<Option<PortSet>>)> {
    let mut bytes = Vec::new();
    match fs::File::open(path) {
        Ok(mut f) => {
            if f.read_to_end(&mut bytes).is_err() {
                return Vec::new();
            }
        }
        Err(_) => return Vec::new(),
    }
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(len_bytes) = bytes.get(pos..pos + 4) {
        let mut b = [0u8; 4];
        b.copy_from_slice(len_bytes);
        let len = u32::from_le_bytes(b) as usize;
        let Some(payload) = bytes.get(pos + 4..pos + 4 + len) else {
            break;
        };
        let Some(crc_bytes) = bytes.get(pos + 4 + len..pos + 8 + len) else {
            break;
        };
        let mut c = [0u8; 4];
        c.copy_from_slice(crc_bytes);
        if crc32(payload) != u32::from_le_bytes(c) {
            break;
        }
        let Some(record) = decode_wal_payload(payload) else {
            break;
        };
        records.push(record);
        pos += 8 + len;
    }
    records
}

fn decode_wal_payload(payload: &[u8]) -> Option<(u64, Vec<Option<PortSet>>)> {
    let mut r = StateReader::new(payload);
    let slot = r.get_u64().ok()?;
    let count = r.get_usize().ok()?;
    // Arrival vectors are one entry per port; anything larger than the
    // widest supported switch is a corrupt length, not a real record.
    if count > u16::MAX as usize {
        return None;
    }
    let mut arrivals = Vec::with_capacity(count);
    for _ in 0..count {
        if r.get_bool().ok()? {
            arrivals.push(Some(r.get_port_set().ok()?));
        } else {
            arrivals.push(None);
        }
    }
    if !r.is_exhausted() {
        return None;
    }
    Some((slot, arrivals))
}

fn put_running(w: &mut StateWriter, s: &RunningStat) {
    let (count, mean, m2, min, max) = s.raw();
    w.put_u64(count);
    w.put_f64(mean);
    w.put_f64(m2);
    w.put_f64(min);
    w.put_f64(max);
}

fn get_running(r: &mut StateReader<'_>) -> Result<RunningStat, StateError> {
    Ok(RunningStat::from_raw(
        r.get_u64()?,
        r.get_f64()?,
        r.get_f64()?,
        r.get_f64()?,
        r.get_f64()?,
    ))
}

fn put_histogram(w: &mut StateWriter, h: &Histogram) {
    let (buckets, overflow_count, overflow_sum, total, sum, max) = h.raw();
    w.put_usize(buckets.len());
    for &b in buckets {
        w.put_u64(b);
    }
    w.put_u64(overflow_count);
    w.put_u128(overflow_sum);
    w.put_u64(total);
    w.put_u128(sum);
    w.put_u64(max);
}

fn get_histogram(r: &mut StateReader<'_>) -> Result<Histogram, StateError> {
    let len = r.get_usize()?;
    if len > 1 << 24 {
        return Err(StateError::Malformed {
            what: format!("histogram bucket count {len}"),
        });
    }
    let mut buckets = Vec::with_capacity(len);
    for _ in 0..len {
        buckets.push(r.get_u64()?);
    }
    Ok(Histogram::from_raw(
        buckets,
        r.get_u64()?,
        r.get_u128()?,
        r.get_u64()?,
        r.get_u128()?,
        r.get_u64()?,
    ))
}

fn put_delay(w: &mut StateWriter, d: &DelayStats) {
    let (input, output, input_hist, output_hist) = d.raw();
    put_running(w, input);
    put_running(w, output);
    put_histogram(w, input_hist);
    put_histogram(w, output_hist);
}

fn get_delay(r: &mut StateReader<'_>) -> Result<DelayStats, StateError> {
    let input = get_running(r)?;
    let output = get_running(r)?;
    let input_hist = get_histogram(r)?;
    let output_hist = get_histogram(r)?;
    Ok(DelayStats::from_raw(input, output, input_hist, output_hist))
}

fn put_occupancy(w: &mut StateWriter, o: &OccupancyTracker) {
    let (per_port, overall, max) = o.raw();
    w.put_usize(per_port.len());
    for s in per_port {
        put_running(w, s);
    }
    put_running(w, overall);
    w.put_usize(max);
}

fn get_occupancy(r: &mut StateReader<'_>) -> Result<OccupancyTracker, StateError> {
    let ports = r.get_usize()?;
    if ports > u16::MAX as usize {
        return Err(StateError::Malformed {
            what: format!("occupancy port count {ports}"),
        });
    }
    let mut per_port = Vec::with_capacity(ports);
    for _ in 0..ports {
        per_port.push(get_running(r)?);
    }
    let overall = get_running(r)?;
    let max = r.get_usize()?;
    Ok(OccupancyTracker::from_raw(per_port, overall, max))
}

fn put_detector(w: &mut StateWriter, d: &SaturationDetector) {
    let (samples, cap_hit) = d.raw();
    w.put_usize(samples.len());
    for &s in samples {
        w.put_usize(s);
    }
    w.put_bool(cap_hit);
}

fn get_detector_fields(r: &mut StateReader<'_>) -> Result<(Vec<usize>, bool), StateError> {
    let len = r.get_usize()?;
    if len > 1 << 32 {
        return Err(StateError::Malformed {
            what: format!("saturation sample count {len}"),
        });
    }
    let mut samples = Vec::with_capacity(len);
    for _ in 0..len {
        samples.push(r.get_usize()?);
    }
    let cap_hit = r.get_bool()?;
    Ok((samples, cap_hit))
}

/// Borrowed view of everything the engine must persist at a checkpoint,
/// besides the switch / traffic / telemetry components themselves.
pub struct RunSnapshot<'a> {
    /// The slot the checkpoint is taken at (the loop restarts here).
    pub slot: u64,
    /// Next-packet-id counter.
    pub next_packet: u64,
    /// Post-warmup copies delivered so far.
    pub copies_delivered: u64,
    /// Slots executed so far.
    pub slots_run: u64,
    /// Absolute trace byte offset at the checkpoint (0 when untraced).
    pub trace_offset: u64,
    /// Delay accumulators.
    pub delay: &'a DelayStats,
    /// Queue-occupancy accumulators.
    pub occupancy: &'a OccupancyTracker,
    /// Convergence-rounds accumulator.
    pub rounds: &'a RunningStat,
    /// Saturation detector (backlog samples + cap latch).
    pub detector: &'a SaturationDetector,
}

/// Engine state decoded from a run checkpoint, handed back to
/// `simulate_inner` to overwrite its locals on resume.
pub struct AppliedResume {
    /// Slot to restart the loop at.
    pub slot: u64,
    /// Next-packet-id counter.
    pub next_packet: u64,
    /// Post-warmup copies delivered.
    pub copies_delivered: u64,
    /// Slots executed.
    pub slots_run: u64,
    /// Delay accumulators.
    pub delay: DelayStats,
    /// Queue-occupancy accumulators.
    pub occupancy: OccupancyTracker,
    /// Convergence-rounds accumulator.
    pub rounds: RunningStat,
    /// Restored backlog samples (applied into a detector built from the
    /// run configuration via [`SaturationDetector::restore_raw`]).
    pub detector_samples: Vec<usize>,
    /// Whether the backlog cap had already been hit.
    pub detector_cap_hit: bool,
}

struct DecodedRunState {
    slot: u64,
    next_packet: u64,
    copies_delivered: u64,
    slots_run: u64,
    trace_offset: u64,
    delay: DelayStats,
    occupancy: OccupancyTracker,
    rounds: RunningStat,
    detector_samples: Vec<usize>,
    detector_cap_hit: bool,
    switch_blob: Vec<u8>,
    traffic_blob: Vec<u8>,
    telemetry_blob: Option<Vec<u8>>,
}

fn encode_run_state(
    snap: &RunSnapshot<'_>,
    switch: &dyn Switch,
    traffic: &dyn TrafficModel,
    telemetry: Option<&Telemetry>,
) -> Result<Vec<u8>, SimError> {
    let mut w = StateWriter::new();
    w.put_u64(snap.slot);
    w.put_u64(snap.next_packet);
    w.put_u64(snap.copies_delivered);
    w.put_u64(snap.slots_run);
    w.put_u64(snap.trace_offset);
    put_delay(&mut w, snap.delay);
    put_occupancy(&mut w, snap.occupancy);
    put_running(&mut w, snap.rounds);
    put_detector(&mut w, snap.detector);
    w.put_bytes(&switch.save_state()?);
    w.put_bytes(&traffic.save_state()?);
    match telemetry {
        Some(t) => {
            w.put_bool(true);
            w.put_bytes(&t.snapshot_state());
        }
        None => w.put_bool(false),
    }
    Ok(frame_state(RUN_KIND, STATE_V1, &w.into_bytes()))
}

fn decode_run_state(blob: &[u8]) -> Result<DecodedRunState, StateError> {
    let (version, payload) = unframe_state(blob, RUN_KIND)?;
    if version != STATE_V1 {
        return Err(StateError::VersionUnsupported {
            kind: RUN_KIND.to_string(),
            got: version,
        });
    }
    let mut r = StateReader::new(payload);
    let slot = r.get_u64()?;
    let next_packet = r.get_u64()?;
    let copies_delivered = r.get_u64()?;
    let slots_run = r.get_u64()?;
    let trace_offset = r.get_u64()?;
    let delay = get_delay(&mut r)?;
    let occupancy = get_occupancy(&mut r)?;
    let rounds = get_running(&mut r)?;
    let (detector_samples, detector_cap_hit) = get_detector_fields(&mut r)?;
    let switch_blob = r.get_bytes()?.to_vec();
    let traffic_blob = r.get_bytes()?.to_vec();
    let telemetry_blob = if r.get_bool()? {
        Some(r.get_bytes()?.to_vec())
    } else {
        None
    };
    r.expect_exhausted()?;
    Ok(DecodedRunState {
        slot,
        next_packet,
        copies_delivered,
        slots_run,
        trace_offset,
        delay,
        occupancy,
        rounds,
        detector_samples,
        detector_cap_hit,
        switch_blob,
        traffic_blob,
        telemetry_blob,
    })
}

/// What a resume found on disk — surfaced so the supervisor can emit
/// `recovery_started` / `recovery_completed` with real numbers.
#[derive(Clone, Copy, Debug)]
pub struct ResumeInfo {
    /// Sequence number of the checkpoint restored.
    pub seq: u64,
    /// Slot the run restarts at.
    pub slot: u64,
    /// Valid WAL records found for the gap replay.
    pub wal_records: usize,
    /// Checkpoint files present on disk that failed validation and were
    /// skipped (the corruption-fallback count).
    pub rejected: usize,
}

/// The engine-facing driver of checkpointing and recovery.
pub struct RecoveryRuntime {
    store: CheckpointStore,
    wal: WalWriter,
    every: u64,
    kill_at: Option<u64>,
    trace_counter: Option<TraceOffset>,
    trace_base: u64,
    resume: Option<DecodedRunState>,
    resume_info: Option<ResumeInfo>,
    replay: VecDeque<(u64, Vec<Option<PortSet>>)>,
    replayed: u64,
}

impl RecoveryRuntime {
    /// Start a *fresh* recoverable run: any previous checkpoints and WAL
    /// in the directory are ignored (the WAL is truncated; checkpoint
    /// files are overwritten as the run progresses).
    pub fn fresh(cfg: &CheckpointConfig) -> Result<RecoveryRuntime, SimError> {
        RecoveryRuntime::build(cfg, false)
    }

    /// Open the directory and resume from the newest valid checkpoint if
    /// one exists, else start fresh. Corrupt checkpoint files are skipped
    /// (falling back to the other rotation slot); their count is reported
    /// in [`ResumeInfo::rejected`].
    pub fn open(cfg: &CheckpointConfig) -> Result<RecoveryRuntime, SimError> {
        RecoveryRuntime::build(cfg, true)
    }

    fn build(cfg: &CheckpointConfig, resume: bool) -> Result<RecoveryRuntime, SimError> {
        if cfg.every == 0 {
            return Err(SimError::Usage(
                "checkpoint interval must be at least 1 slot".to_string(),
            ));
        }
        let store = CheckpointStore::open(&cfg.dir)?;
        let wal_path = cfg.dir.join("arrivals.wal");
        let mut decoded = None;
        let mut info = None;
        let mut replay = VecDeque::new();
        if resume {
            let candidates = store.load_candidates();
            let present = count_checkpoint_files(&cfg.dir);
            for (seq, state) in &candidates {
                match decode_run_state(state) {
                    Ok(state) => {
                        let records: VecDeque<_> = read_wal(&wal_path)
                            .into_iter()
                            .filter(|(slot, _)| *slot >= state.slot)
                            .collect();
                        info = Some(ResumeInfo {
                            seq: *seq,
                            slot: state.slot,
                            wal_records: records.len(),
                            rejected: present.saturating_sub(candidates.len()),
                        });
                        replay = records;
                        decoded = Some(state);
                        break;
                    }
                    Err(_) => continue,
                }
            }
        }
        // Opening the writer truncates the WAL: replayed slots are
        // re-appended as the resumed loop re-executes them, so the WAL
        // converges to the uninterrupted run's contents.
        let wal = WalWriter::open(&wal_path)?;
        Ok(RecoveryRuntime {
            store,
            wal,
            every: cfg.every,
            kill_at: None,
            trace_counter: None,
            trace_base: 0,
            resume: decoded,
            resume_info: info,
            replay,
            replayed: 0,
        })
    }

    /// Arrange for the run to abort with [`SimError::Killed`] at the top
    /// of `slot` (after any due checkpoint) — the crash-injection hook.
    pub fn kill_at(&mut self, slot: u64) {
        self.kill_at = Some(slot);
    }

    /// Whether the deliberate kill fires at `slot`.
    pub fn kill_due(&self, slot: u64) -> bool {
        self.kill_at == Some(slot)
    }

    /// Whether a checkpoint is due at the top of `slot`.
    pub fn checkpoint_due(&self, slot: u64) -> bool {
        slot != 0 && slot.is_multiple_of(self.every)
    }

    /// The configured checkpoint interval.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Whether this runtime will resume rather than start at slot 0.
    pub fn is_resuming(&self) -> bool {
        self.resume.is_some()
    }

    /// What the resume found, if this runtime is resuming.
    pub fn resume_info(&self) -> Option<ResumeInfo> {
        self.resume_info
    }

    /// WAL records verified against regenerated arrivals so far.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Byte length the trace file must be truncated to before reopening
    /// it for a resumed run (the offset recorded in the checkpoint).
    pub fn trace_resume_offset(&self) -> Option<u64> {
        self.resume.as_ref().map(|rs| rs.trace_offset)
    }

    /// Wire the byte counter of the trace's [`CountingWriter`]
    /// (fifoms-obs) so checkpoints record absolute trace offsets.
    pub fn attach_trace(&mut self, counter: TraceOffset) {
        self.trace_counter = Some(counter);
    }

    fn absolute_trace_offset(&self) -> u64 {
        self.trace_base + self.trace_counter.as_ref().map_or(0, TraceOffset::bytes)
    }

    /// Restore the switch stack, traffic model and (optionally) telemetry
    /// from the pending resume state, returning the engine-local fields.
    ///
    /// Returns `Ok(None)` when there is nothing to resume.
    pub fn apply_resume(
        &mut self,
        switch: &mut dyn Switch,
        traffic: &mut dyn TrafficModel,
        telemetry: Option<&mut Telemetry>,
    ) -> Result<Option<AppliedResume>, SimError> {
        let Some(rs) = self.resume.take() else {
            return Ok(None);
        };
        switch.load_state(&rs.switch_blob)?;
        traffic.load_state(&rs.traffic_blob)?;
        match (telemetry, rs.telemetry_blob) {
            (Some(t), Some(blob)) => t.restore_state(&blob)?,
            (None, None) => {}
            (Some(_), None) => {
                return Err(SimError::Recovery {
                    message: "telemetry attached but checkpoint has no telemetry state"
                        .to_string(),
                })
            }
            (None, Some(_)) => {
                return Err(SimError::Recovery {
                    message: "checkpoint carries telemetry state but none is attached"
                        .to_string(),
                })
            }
        }
        self.trace_base = rs.trace_offset;
        Ok(Some(AppliedResume {
            slot: rs.slot,
            next_packet: rs.next_packet,
            copies_delivered: rs.copies_delivered,
            slots_run: rs.slots_run,
            delay: rs.delay,
            occupancy: rs.occupancy,
            rounds: rs.rounds,
            detector_samples: rs.detector_samples,
            detector_cap_hit: rs.detector_cap_hit,
        }))
    }

    /// Capture, encode and atomically persist a checkpoint at
    /// `snap.slot`, then truncate the WAL it supersedes. Returns
    /// `(seq, bytes_written, trace_offset)` for the `checkpoint_written`
    /// event.
    pub fn write_checkpoint(
        &mut self,
        snap: &RunSnapshot<'_>,
        switch: &dyn Switch,
        traffic: &dyn TrafficModel,
        telemetry: Option<&Telemetry>,
    ) -> Result<(u64, u64), SimError> {
        let state = encode_run_state(snap, switch, traffic, telemetry)?;
        let seq = snap.slot / self.every;
        let bytes = self.store.save(seq, &state)?;
        self.wal.reset()?;
        Ok((seq, bytes))
    }

    /// The absolute trace offset to record in a [`RunSnapshot`].
    pub fn trace_offset_now(&self) -> u64 {
        self.absolute_trace_offset()
    }

    /// Log one slot's arrivals to the WAL; while inside the replay window
    /// of a resumed run, first verify the regenerated arrivals match the
    /// logged ones (divergence means the restored traffic model is not
    /// reproducing the pre-crash run).
    pub fn record_arrivals(
        &mut self,
        slot: u64,
        arrivals: &[Option<PortSet>],
    ) -> Result<(), SimError> {
        if let Some((logged_slot, logged)) = self.replay.front() {
            if *logged_slot == slot {
                if logged.as_slice() != arrivals {
                    return Err(SimError::Recovery {
                        message: format!(
                            "WAL divergence at slot {slot}: replayed arrivals differ from log"
                        ),
                    });
                }
                self.replay.pop_front();
                self.replayed += 1;
            }
        }
        self.wal.append(slot, arrivals)
    }
}

fn count_checkpoint_files(dir: &Path) -> usize {
    ["checkpoint-a.bin", "checkpoint-b.bin"]
        .iter()
        .filter(|name| dir.join(name).is_file())
        .count()
}

/// Truncate `path` to `len` bytes — used to rewind a trace file to the
/// offset a checkpoint recorded before a resumed run reopens it in
/// append mode.
pub fn truncate_file(path: &Path, len: u64) -> Result<(), SimError> {
    let f = fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_recovery(path, "open for truncate", e))?;
    f.set_len(len)
        .map_err(|e| io_recovery(path, "truncate", e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{try_simulate_recoverable, Observer, RunConfig, RunResult};
    use fifoms_core::MulticastVoqSwitch;
    use fifoms_obs::{CountingWriter, JsonlSink};
    use fifoms_traffic::BernoulliMulticast;
    use fifoms_types::PortId;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fifoms-recover-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    fn some_arrivals(n: usize, salt: u64) -> Vec<Option<PortSet>> {
        (0..n)
            .map(|i| {
                if (i as u64 + salt).is_multiple_of(3) {
                    let mut s = PortSet::new();
                    s.insert(PortId::new((i + 1) % n));
                    s.insert(PortId::new((i + salt as usize) % n));
                    Some(s)
                } else {
                    None
                }
            })
            .collect()
    }

    #[test]
    fn wal_round_trips_and_discards_torn_tail() {
        let dir = test_dir("wal");
        let path = dir.join("arrivals.wal");
        let mut w = WalWriter::open(&path).expect("open");
        for slot in 0..20u64 {
            w.append(slot, &some_arrivals(8, slot)).expect("append");
        }
        drop(w);
        let full = read_wal(&path);
        assert_eq!(full.len(), 20);
        for (slot, arrivals) in &full {
            assert_eq!(arrivals, &some_arrivals(8, *slot));
        }
        // Tear bytes off the tail: the valid prefix survives, the torn
        // record is dropped, and nothing panics at any cut point.
        let bytes = fs::read(&path).expect("read");
        for cut in (0..bytes.len()).rev().step_by(7) {
            fs::write(&path, &bytes[..cut]).expect("tear");
            let prefix = read_wal(&path);
            assert!(prefix.len() <= 20);
            assert_eq!(&full[..prefix.len()], prefix.as_slice(), "cut {cut}");
        }
        // Flip a bit mid-file: records after the flip are discarded.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        fs::write(&path, &bad).expect("flip");
        let prefix = read_wal(&path);
        assert!(prefix.len() < 20);
        assert_eq!(&full[..prefix.len()], prefix.as_slice());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_skips_corrupt_files_and_falls_back() {
        let dir = test_dir("store");
        let store = CheckpointStore::open(&dir).expect("open");
        store.save(4, b"state-four").expect("save 4");
        store.save(5, b"state-five").expect("save 5");
        let best = store.load_candidates();
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].0, 5);
        assert_eq!(best[0].1, b"state-five");
        // Corrupt the newest (seq 5 → checkpoint-b.bin): fallback returns
        // the older valid file instead.
        let b = dir.join("checkpoint-b.bin");
        let mut bytes = fs::read(&b).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&b, &bytes).expect("corrupt");
        let best = store.load_candidates();
        assert_eq!(best.len(), 1);
        assert_eq!(best[0].0, 4);
        assert_eq!(best[0].1, b"state-four");
        // Truncate the survivor too: no candidates, never a panic.
        let a = dir.join("checkpoint-a.bin");
        let bytes = fs::read(&a).expect("read");
        fs::write(&a, &bytes[..bytes.len() / 3]).expect("truncate");
        assert!(store.load_candidates().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_on_empty_dir_starts_fresh() {
        let dir = test_dir("empty");
        let rec = RecoveryRuntime::open(&CheckpointConfig {
            dir: dir.clone(),
            every: 100,
        })
        .expect("open");
        assert!(!rec.is_resuming());
        assert!(rec.resume_info().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_interval_is_a_usage_error() {
        let dir = test_dir("zero");
        let err = match RecoveryRuntime::fresh(&CheckpointConfig {
            dir: dir.clone(),
            every: 0,
        }) {
            Err(e) => e,
            Ok(_) => panic!("zero interval accepted"),
        };
        assert!(matches!(err, SimError::Usage(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    fn run_to_completion(
        dir: &Path,
        trace: &Path,
        cfg: &RunConfig,
        every: u64,
        kill: Option<u64>,
        resume: bool,
    ) -> Result<RunResult, SimError> {
        let mut switch = MulticastVoqSwitch::new(8, 3);
        let mut traffic = BernoulliMulticast::new(8, 0.3, 0.25, 9).expect("traffic");
        let ck = CheckpointConfig {
            dir: dir.to_path_buf(),
            every,
        };
        let mut rec = if resume {
            RecoveryRuntime::open(&ck)?
        } else {
            RecoveryRuntime::fresh(&ck)?
        };
        if let Some(slot) = kill {
            rec.kill_at(slot);
        }
        let file = if resume {
            if let Some(offset) = rec.trace_resume_offset() {
                truncate_file(trace, offset)?;
            }
            fs::OpenOptions::new()
                .append(true)
                .open(trace)
                .expect("reopen trace")
        } else {
            fs::File::create(trace).expect("create trace")
        };
        let (writer, offset) = CountingWriter::new(file);
        rec.attach_trace(offset);
        let sink = JsonlSink::new(writer);
        let mut obs = Observer {
            sink: Some((&sink, "recover-test")),
            profiler: None,
            telemetry: None,
        };
        try_simulate_recoverable(&mut switch, &mut traffic, cfg, &mut obs, &mut rec)
    }

    #[test]
    fn killed_run_recovers_bit_identically() {
        let cfg = RunConfig {
            slots: 2_000,
            warmup: 500,
            backlog_cap: 100_000,
            sample_every: 50,
        };
        // Reference: the same recoverable run, never killed.
        let ref_dir = test_dir("ref");
        let ref_trace = ref_dir.join("trace.jsonl");
        let reference =
            run_to_completion(&ref_dir, &ref_trace, &cfg, 400, None, false).expect("reference");

        // Kill at a slot between checkpoints, then resume: the replay gap
        // (1200..1300) is verified against the WAL.
        let dir = test_dir("kill");
        let trace = dir.join("trace.jsonl");
        let err = run_to_completion(&dir, &trace, &cfg, 400, Some(1_300), false)
            .expect_err("kill must abort");
        assert_eq!(err, SimError::Killed { slot: 1_300 });
        let recovered = run_to_completion(&dir, &trace, &cfg, 400, None, true).expect("recover");

        assert_eq!(recovered.slots_run, reference.slots_run);
        assert_eq!(recovered.packets_admitted, reference.packets_admitted);
        assert_eq!(recovered.copies_delivered, reference.copies_delivered);
        assert_eq!(
            recovered.throughput.to_bits(),
            reference.throughput.to_bits()
        );
        assert_eq!(
            recovered.delay.mean_output_oriented.to_bits(),
            reference.delay.mean_output_oriented.to_bits()
        );
        assert_eq!(
            recovered.occupancy.mean.to_bits(),
            reference.occupancy.mean.to_bits()
        );
        assert_eq!(
            recovered.mean_rounds.to_bits(),
            reference.mean_rounds.to_bits()
        );
        let ref_bytes = fs::read(&ref_trace).expect("read reference trace");
        let rec_bytes = fs::read(&trace).expect("read recovered trace");
        assert!(!ref_bytes.is_empty());
        assert_eq!(ref_bytes, rec_bytes, "traces must be byte-identical");
        // The WALs converge too.
        assert_eq!(
            fs::read(ref_dir.join("arrivals.wal")).expect("ref wal"),
            fs::read(dir.join("arrivals.wal")).expect("rec wal")
        );
        let _ = fs::remove_dir_all(&ref_dir);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_replays_the_wal_gap() {
        let cfg = RunConfig::quick(1_000);
        let dir = test_dir("gap");
        let trace = dir.join("trace.jsonl");
        let err = run_to_completion(&dir, &trace, &cfg, 200, Some(650), false)
            .expect_err("kill must abort");
        assert_eq!(err, SimError::Killed { slot: 650 });

        let ck = CheckpointConfig {
            dir: dir.clone(),
            every: 200,
        };
        let rec = RecoveryRuntime::open(&ck).expect("open");
        let info = rec.resume_info().expect("resuming");
        assert_eq!(info.slot, 600);
        assert_eq!(info.seq, 3);
        assert_eq!(info.wal_records, 50, "slots 600..650 were logged");
        assert_eq!(info.rejected, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
