//! Supervised long-running service mode: a checkpointed run under a
//! restart supervisor.
//!
//! [`serve`] drives one `(switch, traffic)` pair exactly like
//! [`try_simulate_recoverable`](crate::try_simulate_recoverable), but in
//! a *worker* thread guarded by the chaos watchdog
//! ([`run_guarded`](crate::run_guarded)). When the worker crashes
//! (panics, returns an error, or is deliberately killed through the
//! [`SimError::Killed`] injection hook) or wedges (the watchdog fires),
//! the supervisor restarts it from the newest valid checkpoint in the
//! state directory, with exponential backoff between restarts. A
//! restart budget bounds the loop: once it is exhausted the supervisor
//! escalates with a structured [`SimError::Recovery`] instead of
//! retrying forever.
//!
//! Supervisor-visible lifecycle events (`recovery_started`,
//! `recovery_completed`) go to the supervisor's own [`EventSink`] —
//! never to the deterministic run trace, which an uninterrupted run
//! must reproduce byte-for-byte (`checkpoint_written` is the only
//! recovery-adjacent event that belongs there, and the engine emits it).
//!
//! Because every restart reopens the state directory through
//! [`RecoveryRuntime::open`], corrupt checkpoint files are skipped
//! exactly as in the chaos corruption campaign: the supervisor falls
//! back to the previous valid checkpoint rather than dying on a torn or
//! bit-flipped file.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use fifoms_fabric::Switch;
use fifoms_obs::EventSink;
use fifoms_traffic::TrafficModel;
use fifoms_types::{ObsEvent, SimError, Slot};

use crate::chaos::run_guarded;
use crate::engine::{try_simulate_recoverable, Observer, RunConfig, RunResult};
use crate::recover::{CheckpointConfig, RecoveryRuntime, ResumeInfo};

/// Event-scope tag under which the supervisor emits its lifecycle
/// events.
pub const SERVE_SCOPE: &str = "serve";

/// Supervisor policy for one [`serve`] session.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The simulation run the worker executes.
    pub run: RunConfig,
    /// Where checkpoints and the arrival WAL live, and how often the
    /// worker checkpoints.
    pub checkpoint: CheckpointConfig,
    /// Restarts allowed before the supervisor escalates. `0` means a
    /// single attempt with no retry.
    pub max_restarts: u32,
    /// Backoff before the first restart, in milliseconds; doubles per
    /// restart.
    pub backoff_base_millis: u64,
    /// Upper bound on the exponential backoff, in milliseconds.
    pub backoff_cap_millis: u64,
    /// Wall-clock budget per worker attempt: a worker silent for this
    /// long is declared wedged and abandoned.
    pub worker_timeout_millis: u64,
    /// Crash-injection hook: kill the *first* attempt at this slot (via
    /// [`RecoveryRuntime::kill_at`]). Later attempts run unharmed, so a
    /// supervised session with `die_at` set exercises exactly one
    /// crash-and-recover cycle. Testing/demo only.
    pub die_at: Option<u64>,
}

impl ServeConfig {
    /// Sensible defaults around a run and state directory: 3 restarts,
    /// 100 ms base backoff capped at 5 s, 10-minute worker watchdog.
    pub fn new(run: RunConfig, checkpoint: CheckpointConfig) -> ServeConfig {
        ServeConfig {
            run,
            checkpoint,
            max_restarts: 3,
            backoff_base_millis: 100,
            backoff_cap_millis: 5_000,
            worker_timeout_millis: 600_000,
            die_at: None,
        }
    }
}

/// What a completed [`serve`] session did.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// The final run result (bit-identical to an uninterrupted run of
    /// the same configuration, per the recovery invariant).
    pub result: RunResult,
    /// Worker attempts launched, including the successful one.
    pub attempts: u32,
    /// Restarts performed (`attempts - 1`).
    pub restarts: u32,
    /// What the successful attempt resumed from, if it recovered from a
    /// checkpoint rather than starting fresh.
    pub resumed_from: Option<ResumeInfo>,
    /// WAL records the successful attempt replayed and verified.
    pub replayed: u64,
}

/// One worker attempt: open (or resume) the state directory, build a
/// fresh switch/traffic stack, and run to completion. The supervisor
/// wraps this in `catch_unwind`, so panics anywhere in here surface as
/// structured [`SimError::Recovery`] errors rather than wedges.
fn attempt<FS, FT>(
    cfg: &ServeConfig,
    build_switch: &FS,
    build_traffic: &FT,
    sink: Option<&Arc<dyn EventSink>>,
    die_at: Option<u64>,
) -> Result<(RunResult, Option<ResumeInfo>, u64), SimError>
where
    FS: Fn() -> Box<dyn Switch>,
    FT: Fn() -> Result<Box<dyn TrafficModel>, SimError>,
{
    let mut rec = RecoveryRuntime::open(&cfg.checkpoint)?;
    let resumed_from = rec.resume_info();
    if let Some(info) = resumed_from {
        if let Some(sink) = sink {
            sink.emit(
                SERVE_SCOPE,
                &ObsEvent::RecoveryStarted {
                    slot: Slot(info.slot),
                    seq: info.seq,
                },
            );
        }
    }
    if let Some(slot) = die_at {
        rec.kill_at(slot);
    }
    let mut switch = build_switch();
    let mut traffic = build_traffic()?;
    let result = try_simulate_recoverable(
        switch.as_mut(),
        traffic.as_mut(),
        &cfg.run,
        &mut Observer::none(),
        &mut rec,
    )?;
    let replayed = rec.replayed();
    if let (Some(info), Some(sink)) = (resumed_from, sink) {
        sink.emit(
            SERVE_SCOPE,
            &ObsEvent::RecoveryCompleted {
                slot: Slot(info.slot + replayed),
                replayed,
            },
        );
    }
    Ok((result, resumed_from, replayed))
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Exponential backoff for the `k`-th restart (1-based), capped.
fn backoff_millis(cfg: &ServeConfig, restart: u32) -> u64 {
    let doublings = restart.saturating_sub(1).min(20);
    cfg.backoff_base_millis
        .saturating_mul(1u64 << doublings)
        .min(cfg.backoff_cap_millis)
}

/// Run a supervised, checkpointed simulation session to completion.
///
/// `build_switch` / `build_traffic` construct a *fresh* stack for every
/// attempt (recovery then overwrites its state from the checkpoint, so
/// the builders must be deterministic — same seed, same topology).
/// `sink`, when given, receives the supervisor's `recovery_started` /
/// `recovery_completed` events under the [`SERVE_SCOPE`] scope.
///
/// Returns the final [`ServeReport`] on success; past the restart
/// budget, escalates with [`SimError::Recovery`] naming the budget and
/// the last failure.
pub fn serve<FS, FT>(
    cfg: &ServeConfig,
    build_switch: FS,
    build_traffic: FT,
    sink: Option<Arc<dyn EventSink>>,
) -> Result<ServeReport, SimError>
where
    FS: Fn() -> Box<dyn Switch> + Send + Sync + Clone + 'static,
    FT: Fn() -> Result<Box<dyn TrafficModel>, SimError> + Send + Sync + Clone + 'static,
{
    let mut attempts: u32 = 0;
    let mut restarts: u32 = 0;
    let mut last_failure;
    loop {
        let worker_cfg = cfg.clone();
        let worker_switch = build_switch.clone();
        let worker_traffic = build_traffic.clone();
        let worker_sink = sink.clone();
        // The deliberate-crash hook arms only the first attempt, so a
        // `die_at` session exercises exactly one recover cycle.
        let die_at = if attempts == 0 { cfg.die_at } else { None };
        // The whole attempt — builders included — runs under
        // catch_unwind, so a panic anywhere in the worker surfaces as a
        // structured error instead of looking like a wedge.
        let outcome = run_guarded(cfg.worker_timeout_millis, move || {
            catch_unwind(AssertUnwindSafe(|| {
                attempt(
                    &worker_cfg,
                    &worker_switch,
                    &worker_traffic,
                    worker_sink.as_ref(),
                    die_at,
                )
            }))
            .unwrap_or_else(|panic| {
                Err(SimError::Recovery {
                    message: format!("worker panicked: {}", panic_message(&panic)),
                })
            })
        });
        attempts = attempts.saturating_add(1);
        match outcome {
            Ok(Ok((result, resumed_from, replayed))) => {
                return Ok(ServeReport {
                    result,
                    attempts,
                    restarts,
                    resumed_from,
                    replayed,
                });
            }
            Ok(Err(e)) => last_failure = e.to_string(),
            Err(0) => last_failure = "worker thread failed to spawn".to_string(),
            Err(ms) => last_failure = format!("worker wedged: watchdog fired after {ms}ms"),
        }
        if restarts >= cfg.max_restarts {
            return Err(SimError::Recovery {
                message: format!(
                    "restart budget ({}) exhausted after {attempts} attempt(s); \
                     last failure: {last_failure}",
                    cfg.max_restarts
                ),
            });
        }
        restarts = restarts.saturating_add(1);
        std::thread::sleep(std::time::Duration::from_millis(backoff_millis(
            cfg, restarts,
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fifoms_core::MulticastVoqSwitch;
    use fifoms_obs::JsonlSink;
    use crate::spec::TrafficKind;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fifoms-serve-{tag}-{}", std::process::id()))
    }

    #[allow(clippy::type_complexity)]
    fn builders() -> (
        impl Fn() -> Box<dyn Switch> + Send + Sync + Clone + 'static,
        impl Fn() -> Result<Box<dyn TrafficModel>, SimError> + Send + Sync + Clone + 'static,
    ) {
        (
            || Box::new(MulticastVoqSwitch::new(8, 7)) as Box<dyn Switch>,
            || TrafficKind::Bernoulli { p: 0.3, b: 0.25 }.try_build(8, 7 ^ 0x5a5a),
        )
    }

    fn serve_cfg(dir: &std::path::Path) -> ServeConfig {
        let mut cfg = ServeConfig::new(
            RunConfig {
                slots: 1_500,
                warmup: 400,
                backlog_cap: 100_000,
                sample_every: 50,
            },
            CheckpointConfig {
                dir: dir.to_path_buf(),
                every: 400,
            },
        );
        cfg.backoff_base_millis = 1;
        cfg.worker_timeout_millis = 60_000;
        cfg
    }

    #[test]
    fn supervisor_recovers_a_killed_worker_bit_identically() {
        let dir = temp_dir("recover");
        let _ = std::fs::remove_dir_all(&dir);

        // Uninterrupted reference session.
        let (bs, bt) = builders();
        let reference = serve(&serve_cfg(&dir), bs, bt, None)
            .expect("reference serve session");
        assert_eq!(reference.attempts, 1);
        assert_eq!(reference.restarts, 0);
        assert!(reference.resumed_from.is_none());
        let _ = std::fs::remove_dir_all(&dir);

        // Crash the first attempt at slot 1 000 (after checkpoint seq 2
        // at slot 800), with the supervisor logging to a JSONL sink.
        let log_path = dir.join("supervisor.jsonl");
        let mut cfg = serve_cfg(&dir);
        cfg.die_at = Some(1_000);
        let (bs, bt) = builders();
        std::fs::create_dir_all(&dir).expect("state dir");
        let log = std::fs::File::create(&log_path).expect("supervisor log");
        let sink: Arc<dyn EventSink> = Arc::new(JsonlSink::new(log));
        let report = serve(&cfg, bs, bt, Some(sink)).expect("supervised session");

        assert_eq!(report.attempts, 2);
        assert_eq!(report.restarts, 1);
        let info = report.resumed_from.expect("second attempt resumed");
        assert_eq!(info.seq, 2);
        assert_eq!(info.slot, 800);
        assert_eq!(report.replayed, 200); // slots 800..1000 from the WAL
        let a = &report.result;
        let b = &reference.result;
        assert_eq!(a.packets_admitted, b.packets_admitted);
        assert_eq!(a.copies_delivered, b.copies_delivered);
        assert_eq!(a.slots_run, b.slots_run);
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!(
            a.delay.mean_output_oriented.to_bits(),
            b.delay.mean_output_oriented.to_bits()
        );
        assert_eq!(a.occupancy.mean.to_bits(), b.occupancy.mean.to_bits());

        let log = std::fs::read_to_string(&log_path).expect("read supervisor log");
        assert!(log.contains("\"event\":\"recovery_started\""), "log: {log}");
        assert!(log.contains("\"event\":\"recovery_completed\""), "log: {log}");
        assert!(log.contains("\"scope\":\"serve\""), "log: {log}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervisor_escalates_past_the_restart_budget() {
        let dir = temp_dir("budget");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = serve_cfg(&dir);
        cfg.max_restarts = 2;
        let bs = || Box::new(MulticastVoqSwitch::new(8, 7)) as Box<dyn Switch>;
        // A traffic builder that always fails: every attempt dies before
        // the run starts, so the budget must trip.
        let bt = || -> Result<Box<dyn TrafficModel>, SimError> {
            Err(SimError::Usage("deliberately broken builder".to_string()))
        };
        let err = match serve(&cfg, bs, bt, None) {
            Err(e) => e,
            Ok(_) => panic!("session with a broken builder cannot succeed"),
        };
        let msg = err.to_string();
        assert!(msg.contains("restart budget (2) exhausted"), "got: {msg}");
        assert!(msg.contains("deliberately broken builder"), "got: {msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervisor_detects_a_wedged_worker() {
        let dir = temp_dir("wedge");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = serve_cfg(&dir);
        cfg.max_restarts = 1;
        cfg.worker_timeout_millis = 40;
        let bs = || -> Box<dyn Switch> {
            // Wedge the worker during construction; the watchdog must
            // abandon it rather than wait.
            std::thread::sleep(std::time::Duration::from_secs(30));
            Box::new(MulticastVoqSwitch::new(8, 7))
        };
        let (_, bt) = builders();
        let started = std::time::Instant::now();
        let err = match serve(&cfg, bs, bt, None) {
            Err(e) => e,
            Ok(_) => panic!("session with a wedged builder cannot succeed"),
        };
        assert!(started.elapsed() < std::time::Duration::from_secs(10));
        let msg = err.to_string();
        assert!(msg.contains("watchdog fired"), "got: {msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervisor_recovers_a_panicking_worker() {
        let dir = temp_dir("panic");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = serve_cfg(&dir);
        cfg.die_at = None;
        cfg.max_restarts = 1;
        // First attempt panics in the builder; the retry succeeds.
        let panicked = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = panicked.clone();
        let bs = move || -> Box<dyn Switch> {
            if !flag.swap(true, std::sync::atomic::Ordering::SeqCst) {
                panic!("injected builder panic");
            }
            Box::new(MulticastVoqSwitch::new(8, 7))
        };
        let (_, bt) = builders();
        let report = serve(&cfg, bs, bt, None).expect("supervised session");
        assert_eq!(report.attempts, 2);
        assert_eq!(report.restarts, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
