//! Terminal line plots for sweep results.
//!
//! The paper presents its evaluation as line charts (delay/queue vs
//! effective load, one curve per scheduler). `ascii_plot` renders the
//! same picture in a terminal so `fifoms-repro` output can be eyeballed
//! against the paper's figures without leaving the shell.

use std::fmt::Write as _;

use crate::report::Metric;
use crate::{SweepRow, SwitchKind};

/// Rendering options for [`ascii_plot`].
#[derive(Clone, Copy, Debug)]
pub struct PlotOptions {
    /// Plot area width in characters (excluding the axis gutter).
    pub width: usize,
    /// Plot area height in rows.
    pub height: usize,
    /// Use a log10 y-axis (delays near saturation span 4+ decades).
    pub log_y: bool,
}

impl Default for PlotOptions {
    fn default() -> PlotOptions {
        PlotOptions {
            width: 64,
            height: 16,
            log_y: true,
        }
    }
}

/// One curve extracted from sweep rows: only stable points are plotted
/// (the paper stops curves at the stability edge).
struct Curve {
    marker: char,
    label: String,
    points: Vec<(f64, f64)>,
}

/// Render `metric` vs load for each scheduler as an ASCII chart.
///
/// Each scheduler gets a marker character (`A`, `B`, ...); overlapping
/// points show the *later* scheduler's marker. Saturated points are
/// dropped, mirroring how the paper's curves end at the stability edge.
/// Returns an empty string when there is nothing stable to plot.
pub fn ascii_plot(
    rows: &[SweepRow],
    switches: &[SwitchKind],
    metric: Metric,
    opts: &PlotOptions,
) -> String {
    let markers = ['A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J'];
    let curves: Vec<Curve> = switches
        .iter()
        .enumerate()
        .map(|(i, sk)| Curve {
            marker: markers[i % markers.len()],
            label: sk.label(),
            points: {
                let mut pts: Vec<(f64, f64)> = rows
                    .iter()
                    .filter(|r| r.switch == *sk && r.result.is_stable())
                    .map(|r| (r.load, metric.value(r)))
                    .collect();
                pts.sort_by(|a, b| a.0.total_cmp(&b.0));
                pts
            },
        })
        .collect();

    let all: Vec<(f64, f64)> = curves.iter().flat_map(|c| c.points.iter().copied()).collect();
    if all.is_empty() {
        return String::new();
    }
    let (x_min, x_max) = min_max(all.iter().map(|p| p.0));
    let y_transform = |y: f64| {
        if opts.log_y {
            (y.max(1e-3)).log10()
        } else {
            y
        }
    };
    let (y_min, y_max) = min_max(all.iter().map(|p| y_transform(p.1)));
    let x_span = (x_max - x_min).max(1e-12);
    let y_span = (y_max - y_min).max(1e-12);

    let mut grid = vec![vec![' '; opts.width]; opts.height];
    for curve in &curves {
        for &(x, y) in &curve.points {
            let col = (((x - x_min) / x_span) * (opts.width - 1) as f64).round() as usize;
            let row_from_bottom =
                (((y_transform(y) - y_min) / y_span) * (opts.height - 1) as f64).round() as usize;
            let row = opts.height - 1 - row_from_bottom;
            grid[row][col] = curve.marker;
        }
    }

    let mut out = String::new();
    let y_label = |frac: f64| {
        let v = y_min + frac * y_span;
        if opts.log_y {
            10f64.powf(v)
        } else {
            v
        }
    };
    for (r, line) in grid.iter().enumerate() {
        let frac = 1.0 - r as f64 / (opts.height - 1) as f64;
        let _ = write!(out, "{:>9.2} |", y_label(frac));
        out.extend(line.iter());
        out.push('\n');
    }
    let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(opts.width));
    let _ = writeln!(
        out,
        "{:>9}  {:<width$.2}{:>8.2}",
        "load:",
        x_min,
        x_max,
        width = opts.width - 8
    );
    for c in &curves {
        let _ = writeln!(
            out,
            "{:>9}  {} = {}{}",
            "",
            c.marker,
            c.label,
            if c.points.is_empty() {
                " (no stable points)"
            } else {
                ""
            }
        );
    }
    if opts.log_y {
        let _ = writeln!(out, "{:>9}  (log y-axis)", "");
    }
    out
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunConfig, Sweep, TrafficKind};

    fn sample_rows() -> (Vec<SweepRow>, Vec<SwitchKind>) {
        let switches = vec![SwitchKind::Fifoms, SwitchKind::OqFifo];
        let sweep = Sweep {
            n: 4,
            switches: switches.clone(),
            points: [0.2, 0.5, 0.8]
                .iter()
                .map(|&l| (l, TrafficKind::bernoulli_at_load(l, 0.5, 4)))
                .collect(),
            run: RunConfig::quick(2_000),
            seed: 2,
        };
        (sweep.run_serial(), switches)
    }

    #[test]
    fn plot_contains_markers_and_legend() {
        let (rows, switches) = sample_rows();
        let s = ascii_plot(&rows, &switches, Metric::OutputDelay, &PlotOptions::default());
        assert!(s.contains('A'), "missing curve A:\n{s}");
        assert!(s.contains('B'));
        assert!(s.contains("A = FIFOMS"));
        assert!(s.contains("B = OQFIFO"));
        assert!(s.contains("(log y-axis)"));
        assert!(s.lines().count() > 16);
    }

    #[test]
    fn linear_axis_option() {
        let (rows, switches) = sample_rows();
        let s = ascii_plot(
            &rows,
            &switches,
            Metric::AvgQueue,
            &PlotOptions {
                log_y: false,
                ..PlotOptions::default()
            },
        );
        assert!(!s.contains("(log y-axis)"));
    }

    #[test]
    fn empty_input_empty_plot() {
        let s = ascii_plot(&[], &[SwitchKind::Fifoms], Metric::AvgQueue, &PlotOptions::default());
        assert!(s.is_empty());
    }

    #[test]
    fn saturated_points_dropped() {
        let (mut rows, switches) = sample_rows();
        // artificially mark every FIFOMS row saturated
        for r in rows.iter_mut() {
            if r.switch == SwitchKind::Fifoms {
                r.result.verdict = fifoms_stats::SaturationVerdict::Saturated;
            }
        }
        let s = ascii_plot(&rows, &switches, Metric::OutputDelay, &PlotOptions::default());
        assert!(s.contains("A = FIFOMS (no stable points)"));
        assert!(!s
            .lines()
            .take(16)
            .any(|l| l.contains('A')), "A markers should vanish");
    }
}
