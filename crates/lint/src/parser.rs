//! A dependency-free recursive-descent parser over the lexer's token
//! stream, producing the item-level AST in [`crate::ast`].
//!
//! Design constraints, in order:
//!
//! 1. **Total.** The parser must terminate and never panic on *any*
//!    byte sequence — the property tests feed it hundreds of randomly
//!    mutated files. Every token access is bounds-checked and every
//!    loop provably advances the cursor.
//! 2. **Skippable.** It understands exactly the item shapes the
//!    structural rules need (`struct`, `trait`, `impl`, `mod`) and
//!    skips everything else by consuming to the next `;` or balanced
//!    `{}` — an unknown construct degrades coverage, never correctness.
//! 3. **Span-preserving.** Items and method bodies carry
//!    significant-token spans into the originating [`Matcher`], so
//!    rules can re-scan any body at token level.
//!
//! Angle brackets are the one ambiguity a token parser must care about:
//! `<`/`>` nest in generics but `->` also ends in `>`. The generic
//! scanner therefore refuses to treat a `>` preceded by `-` as a
//! closer, which covers every form the workspace uses (`Fn(A) -> B`
//! bounds included).

use crate::ast::{Field, FileAst, GenericParam, ImplDef, ImplMethod, Span, StructDef, TraitDef, TraitMethod};
use crate::matcher::Matcher;

/// Parse one lexed file into its item-level AST. Total: returns an
/// (possibly partial) AST for arbitrary input, never panics.
pub fn parse(m: &Matcher) -> FileAst {
    let mut p = Parser {
        m,
        out: FileAst::default(),
    };
    p.items(0, m.len());
    p.out
}

struct Parser<'a, 'b> {
    m: &'b Matcher<'a>,
    out: FileAst,
}

impl<'a, 'b> Parser<'a, 'b> {
    /// The text of significant token `si`, or `""` past the end.
    fn t(&self, si: usize) -> &'a str {
        if si < self.m.len() {
            self.m.text(si)
        } else {
            ""
        }
    }

    /// 1-based line of significant token `si` (1 past the end).
    fn line(&self, si: usize) -> usize {
        if si < self.m.len() {
            self.m.line_col(si).0
        } else {
            1
        }
    }

    /// Parse the item sequence in `lo..hi` (a file top level or a
    /// `mod` body).
    fn items(&mut self, lo: usize, hi: usize) {
        let hi = hi.min(self.m.len());
        let mut pos = lo;
        while pos < hi {
            let next = self.item(pos, hi);
            debug_assert!(next > pos, "parser must advance");
            pos = if next > pos { next } else { pos + 1 };
        }
    }

    /// Parse (or skip) one item starting at `pos`; returns the position
    /// one past it. Always returns `> pos`.
    fn item(&mut self, pos: usize, hi: usize) -> usize {
        let mut at = pos;
        // Attributes: outer `#[...]` and inner `#![...]`.
        while self.t(at) == "#" {
            let open = if self.t(at + 1) == "!" { at + 2 } else { at + 1 };
            if self.t(open) != "[" {
                return at + 1;
            }
            match self.m.matching_close(open) {
                Some(close) => at = close + 1,
                None => return self.m.len(),
            }
        }
        // Visibility: `pub`, `pub(crate)`, `pub(in path)`.
        if self.t(at) == "pub" {
            at += 1;
            if self.t(at) == "(" {
                match self.m.matching_close(at) {
                    Some(close) => at = close + 1,
                    None => return self.m.len(),
                }
            }
        }
        if self.t(at) == "unsafe" {
            at += 1;
        }
        match self.t(at) {
            "struct" => self.struct_item(at),
            "trait" => self.trait_item(at),
            "impl" => self.impl_item(at),
            "mod" => self.mod_item(at, hi),
            _ => self.skip_item(at).max(pos + 1),
        }
    }

    /// Skip an unrecognized item: consume to the first top-level `;` or
    /// past the matching `}` of the first top-level `{`.
    fn skip_item(&self, pos: usize) -> usize {
        let mut depth = 0i64;
        let mut at = pos;
        while at < self.m.len() {
            match self.t(at) {
                "{" if depth == 0 => {
                    return match self.m.matching_close(at) {
                        Some(close) => close + 1,
                        None => self.m.len(),
                    };
                }
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        // A stray closer: the enclosing scope's, not ours.
                        return at + 1;
                    }
                }
                ";" if depth == 0 => return at + 1,
                _ => {}
            }
            at += 1;
        }
        self.m.len()
    }

    /// `mod name { items }` recurses; `mod name;` skips.
    fn mod_item(&mut self, pos: usize, hi: usize) -> usize {
        let mut at = pos + 1; // past `mod`
        if !self.t(at).is_empty() {
            at += 1; // the module name
        }
        match self.t(at) {
            "{" => match self.m.matching_close(at) {
                Some(close) => {
                    self.items(at + 1, close.min(hi));
                    close + 1
                }
                None => self.m.len(),
            },
            ";" => at + 1,
            _ => self.skip_item(pos),
        }
    }

    /// Scan a `<...>` generic group starting at `pos` (which must hold
    /// `<`); returns `(params, one_past_close)`. Each param keeps its
    /// inline bound text.
    fn generics(&self, pos: usize) -> (Vec<GenericParam>, usize) {
        if self.t(pos) != "<" {
            return (Vec::new(), pos);
        }
        let mut depth = 0i64;
        let mut at = pos;
        let mut close = self.m.len();
        while at < self.m.len() {
            match self.t(at) {
                "<" => depth += 1,
                ">" if at > 0 && self.t(at - 1) == "-" => {} // `->`, not a closer
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        close = at;
                        break;
                    }
                }
                _ => {}
            }
            at += 1;
        }
        // Split params at depth-1 commas (ignoring nested delimiters).
        let mut params = Vec::new();
        let mut seg_lo = pos + 1;
        let mut d = 1i64; // depth inside the < >
        let mut b = 0i64; // () [] {} nesting
        for k in pos + 1..close {
            match self.t(k) {
                "<" => d += 1,
                ">" if self.t(k - 1) != "-" => d -= 1,
                "(" | "[" | "{" => b += 1,
                ")" | "]" | "}" => b -= 1,
                "," if d == 1 && b == 0 => {
                    self.push_param(&mut params, seg_lo, k);
                    seg_lo = k + 1;
                }
                _ => {}
            }
        }
        self.push_param(&mut params, seg_lo, close);
        (params, (close + 1).min(self.m.len().max(pos + 1)))
    }

    /// Parse one generic-parameter segment `lo..hi` into `params`.
    fn push_param(&self, params: &mut Vec<GenericParam>, lo: usize, hi: usize) {
        let mut at = lo;
        if self.t(at) == "const" {
            at += 1;
        }
        if at >= hi {
            return;
        }
        let name = self.t(at).to_string();
        if name.is_empty() {
            return;
        }
        let bounds = if self.t(at + 1) == ":" {
            self.m.snippet((at + 2).min(hi), hi, 64)
        } else {
            String::new()
        };
        params.push(GenericParam { name, bounds });
    }

    /// `struct Name<...> { fields }` / tuple / unit struct.
    fn struct_item(&mut self, pos: usize) -> usize {
        let kw = pos;
        let name = self.t(pos + 1).to_string();
        let (generics, mut at) = self.generics(pos + 2);
        let generics: Vec<String> = generics.into_iter().map(|p| p.name).collect();
        if at == pos + 2 {
            at = pos + 2; // no generic group
        }
        // Optional where clause before the body.
        while at < self.m.len() && !matches!(self.t(at), "{" | "(" | ";") {
            at += 1;
        }
        let (fields, end) = match self.t(at) {
            "{" => match self.m.matching_close(at) {
                Some(close) => (self.fields(at, close), close + 1),
                None => (Vec::new(), self.m.len()),
            },
            // Tuple struct: skip `(...)` then the trailing `;`.
            "(" => (Vec::new(), self.skip_item(at)),
            ";" => (Vec::new(), at + 1),
            _ => (Vec::new(), self.m.len()),
        };
        self.out.structs.push(StructDef {
            name,
            generics,
            fields,
            line: self.line(kw),
            span: Span { lo: kw, hi: end },
        });
        end
    }

    /// Named fields between `{` at `open` and its `close`.
    fn fields(&self, open: usize, close: usize) -> Vec<Field> {
        let mut fields = Vec::new();
        for (lo, hi) in self.m.split_args(open, close) {
            let mut at = lo;
            while self.t(at) == "#" && self.t(at + 1) == "[" {
                match self.m.matching_close(at + 1) {
                    Some(c) if c < hi => at = c + 1,
                    _ => break,
                }
            }
            if self.t(at) == "pub" {
                at += 1;
                if self.t(at) == "(" {
                    match self.m.matching_close(at) {
                        Some(c) if c < hi => at = c + 1,
                        _ => continue,
                    }
                }
            }
            if at + 1 < hi && self.t(at + 1) == ":" {
                fields.push(Field {
                    name: self.t(at).to_string(),
                    ty: self.m.snippet(at + 2, hi, 64),
                    line: self.line(at),
                });
            }
        }
        fields
    }

    /// `trait Name<...>: Super { fn required(...); fn defaulted() {..} }`.
    fn trait_item(&mut self, pos: usize) -> usize {
        let kw = pos;
        let name = self.t(pos + 1).to_string();
        // Everything up to the body brace: generics, supertraits, where.
        let mut at = pos + 2;
        let mut depth = 0i64;
        while at < self.m.len() && !(depth == 0 && self.t(at) == "{") {
            match self.t(at) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => {
                    // `trait Alias = ...;` or malformed input: bail out.
                    return at + 1;
                }
                _ => {}
            }
            at += 1;
        }
        let Some(close) = self.m.matching_close(at) else {
            return self.m.len();
        };
        let mut methods = Vec::new();
        let mut k = at + 1;
        while k < close {
            if self.t(k) == "#" && self.t(k + 1) == "[" {
                match self.m.matching_close(k + 1) {
                    Some(c) if c < close => {
                        k = c + 1;
                        continue;
                    }
                    _ => break,
                }
            }
            if self.t(k) == "fn" {
                let mname = self.t(k + 1).to_string();
                let line = self.line(k);
                let (has_default_body, next) = self.fn_tail(k + 2, close);
                methods.push(TraitMethod {
                    name: mname,
                    has_default_body,
                    line,
                });
                k = next;
                continue;
            }
            // Associated consts/types and anything else: next `;`/body.
            k = self.skip_item(k).max(k + 1);
        }
        self.out.traits.push(TraitDef {
            name,
            methods,
            line: self.line(kw),
            span: Span { lo: kw, hi: close + 1 },
        });
        close + 1
    }

    /// After a method's `fn name`, consume the signature; returns
    /// `(has_body, one_past_end)` where the end is past the body's `}`
    /// or the terminating `;`.
    fn fn_tail(&self, pos: usize, limit: usize) -> (bool, usize) {
        let mut depth = 0i64;
        let mut at = pos;
        while at < limit {
            match self.t(at) {
                "{" if depth == 0 => {
                    return match self.m.matching_close(at) {
                        Some(close) => (true, close + 1),
                        None => (true, limit),
                    };
                }
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => return (false, at + 1),
                _ => {}
            }
            at += 1;
        }
        (false, limit)
    }

    /// `impl<G> Trait for Type where ... { methods }` or `impl Type {..}`.
    fn impl_item(&mut self, pos: usize) -> usize {
        let kw = pos;
        let (mut generics, mut at) = self.generics(pos + 1);
        if at == pos + 1 {
            at = pos + 1;
        }
        // First type: the trait (if `for` follows) or the self type.
        let (first_lo, first_hi, stop) = self.type_until(at, &["for", "where", "{"]);
        let (trait_name, self_lo, self_hi, mut at) = if stop == "for" {
            let (lo, hi, _) = self.type_until(first_hi + 1, &["where", "{"]);
            (self.path_tail(first_lo, first_hi), lo, hi, hi)
        } else {
            (None, first_lo, first_hi, first_hi)
        };
        // Where clause: fold bounds into the matching generic params.
        if self.t(at) == "where" {
            let mut k = at + 1;
            let mut depth = 0i64;
            let clause_lo = k;
            while k < self.m.len() && !(depth == 0 && self.t(k) == "{") {
                match self.t(k) {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ">" if self.t(k - 1) != "-" => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
            self.fold_where(&mut generics, clause_lo, k);
            at = k;
        }
        if self.t(at) != "{" {
            return self.skip_item(kw).max(kw + 1);
        }
        let Some(close) = self.m.matching_close(at) else {
            return self.m.len();
        };
        let mut methods = Vec::new();
        let mut k = at + 1;
        while k < close {
            if self.t(k) == "#" && self.t(k + 1) == "[" {
                match self.m.matching_close(k + 1) {
                    Some(c) if c < close => {
                        k = c + 1;
                        continue;
                    }
                    _ => break,
                }
            }
            // Step over fn qualifiers: `pub [(crate)] const unsafe fn ...`.
            let mut q = k;
            loop {
                match self.t(q) {
                    "pub" if self.t(q + 1) == "(" => match self.m.matching_close(q + 1) {
                        Some(c) if c < close => q = c + 1,
                        _ => break,
                    },
                    "pub" | "unsafe" | "const" | "default" | "async" => q += 1,
                    _ => break,
                }
            }
            if self.t(q) == "fn" && q > k {
                k = q;
            }
            if self.t(k) == "fn" {
                let mname = self.t(k + 1).to_string();
                let line = self.line(k);
                // The body is the first top-level brace group.
                let mut depth = 0i64;
                let mut b = k + 2;
                let mut body = None;
                while b < close {
                    match self.t(b) {
                        "{" if depth == 0 => {
                            body = self.m.matching_close(b).map(|c| Span { lo: b, hi: c + 1 });
                            break;
                        }
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    b += 1;
                }
                match body {
                    Some(span) => {
                        methods.push(ImplMethod {
                            name: mname,
                            body: span,
                            line,
                        });
                        k = span.hi;
                    }
                    None => k = (b + 1).max(k + 1),
                }
                continue;
            }
            k = self.skip_item(k).max(k + 1);
        }
        let self_ty = self.m.snippet(self_lo, self_hi, 64);
        let self_ty_name = (self_lo..self_hi)
            .find(|&k| {
                !matches!(self.t(k), "&" | "mut" | "dyn" | "'" ) && self.t(k).chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
            })
            .map(|k| self.t(k).to_string())
            .unwrap_or_default();
        self.out.impls.push(ImplDef {
            trait_name,
            self_ty,
            self_ty_name,
            generics,
            methods,
            line: self.line(kw),
            span: Span { lo: kw, hi: close + 1 },
            test_only: kw < self.m.len() && self.m.in_test_code(self.m.tok(kw).start),
        });
        close + 1
    }

    /// Consume a type starting at `pos` until one of `stops` appears at
    /// nesting depth 0; returns `(lo, hi, stop_text)` with `hi` at the
    /// stop token (or end of file, stop = `""`).
    fn type_until(&self, pos: usize, stops: &[&str]) -> (usize, usize, &'a str) {
        let mut depth = 0i64;
        let mut at = pos;
        while at < self.m.len() {
            let t = self.t(at);
            if depth == 0 && stops.contains(&t) {
                return (pos, at, t);
            }
            match t {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" => depth -= 1,
                ">" if at > 0 && self.t(at - 1) != "-" => depth -= 1,
                "{" | "}" | ";" => return (pos, at, ""),
                _ => {}
            }
            at += 1;
        }
        (pos, self.m.len(), "")
    }

    /// The final path-segment identifier of a (possibly generic) trait
    /// path in `lo..hi`: `obs::Checkpoint` → `Checkpoint`,
    /// `Switch` → `Switch`.
    fn path_tail(&self, lo: usize, hi: usize) -> Option<String> {
        let mut depth = 0i64;
        let mut tail = None;
        for k in lo..hi {
            match self.t(k) {
                "<" => depth += 1,
                ">" if k > 0 && self.t(k - 1) != "-" => depth -= 1,
                t if depth == 0
                    && t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') =>
                {
                    tail = Some(t.to_string());
                }
                _ => {}
            }
        }
        tail
    }

    /// Merge `where` clause bounds (`Name: Bound + ...`) into matching
    /// generic parameters within `lo..hi`.
    fn fold_where(&self, generics: &mut [GenericParam], lo: usize, hi: usize) {
        let mut seg_lo = lo;
        let mut depth = 0i64;
        for k in lo..=hi.min(self.m.len()) {
            let ends = k == hi || (depth == 0 && self.t(k) == ",");
            if !ends {
                match self.t(k) {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ">" if self.t(k - 1) != "-" => depth -= 1,
                    _ => {}
                }
                continue;
            }
            let name = self.t(seg_lo);
            if self.t(seg_lo + 1) == ":" {
                if let Some(p) = generics.iter_mut().find(|p| p.name == name) {
                    let extra = self.m.snippet(seg_lo + 2, k, 64);
                    if !extra.is_empty() {
                        if !p.bounds.is_empty() {
                            p.bounds.push_str(" + ");
                        }
                        p.bounds.push_str(&extra);
                    }
                }
            }
            seg_lo = k + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ast(src: &str) -> FileAst {
        parse(&Matcher::new(src))
    }

    #[test]
    fn parses_struct_fields_and_generics() {
        let a = ast("pub struct W<S: Switch> { inner: S, pub count: u64, caps: Vec<usize> }");
        assert_eq!(a.structs.len(), 1);
        let s = &a.structs[0];
        assert_eq!(s.name, "W");
        assert_eq!(s.generics, ["S"]);
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["inner", "count", "caps"]);
        assert_eq!(s.fields[2].ty, "Vec < usize >");
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let a = ast("struct T(u32, u64);\nstruct U;\nstruct N { x: u8 }");
        assert_eq!(a.structs.len(), 3);
        assert!(a.structs[0].fields.is_empty());
        assert!(a.structs[1].fields.is_empty());
        assert_eq!(a.structs[2].fields.len(), 1);
    }

    #[test]
    fn trait_methods_distinguish_default_bodies() {
        let a = ast(
            "pub trait Switch {\n fn name(&self) -> String;\n fn drain(&mut self, out: &mut Vec<u8>) {}\n fn ports(&self) -> usize;\n}",
        );
        assert_eq!(a.traits.len(), 1);
        let t = &a.traits[0];
        assert_eq!(t.name, "Switch");
        let defaulted: Vec<&str> = t
            .methods
            .iter()
            .filter(|m| m.has_default_body)
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(defaulted, ["drain"]);
        assert_eq!(t.methods.len(), 3);
    }

    #[test]
    fn impl_records_trait_self_ty_and_bounds() {
        let a = ast(
            "impl<S: Switch> Switch for Wrapper<S> {\n fn name(&self) -> String { self.inner.name() }\n}\nimpl<T: Switch + ?Sized> Switch for Box<T> {\n fn name(&self) -> String { (**self).name() }\n}\nimpl Plain { fn go(&self) {} }",
        );
        assert_eq!(a.impls.len(), 3);
        let w = &a.impls[0];
        assert_eq!(w.trait_name.as_deref(), Some("Switch"));
        assert_eq!(w.self_ty_name, "Wrapper");
        assert!(w.param_bounded_by("Switch").is_some());
        let b = &a.impls[1];
        assert_eq!(b.self_ty_name, "Box");
        assert!(b.param_bounded_by("Switch").is_some());
        let p = &a.impls[2];
        assert!(p.trait_name.is_none());
        assert_eq!(p.methods.len(), 1);
    }

    #[test]
    fn where_clause_bounds_are_folded() {
        let a = ast("impl<S> Checkpoint for W<S> where S: Switch + Checkpoint { fn state_kind(&self) -> &'static str { \"w\" } }");
        let i = &a.impls[0];
        assert!(i.param_bounded_by("Switch").is_some());
        assert!(i.param_bounded_by("Checkpoint").is_some());
    }

    #[test]
    fn method_bodies_are_token_spans() {
        let src = "impl W { fn f(&self) -> u32 { self.x + 1 } }";
        let m = Matcher::new(src);
        let a = parse(&m);
        let body = &a.impls[0].methods[0].body;
        assert_eq!(m.snippet(body.lo, body.hi, 16), "{ self . x + 1 }");
    }

    #[test]
    fn modules_are_recursed_and_cfg_test_marked() {
        let src = "mod inner { pub struct S { x: u8 } }\n#[cfg(test)]\nmod tests { impl Switch for Toy { fn name(&self) -> String { String::new() } } }\nimpl Switch for Real { fn name(&self) -> String { String::new() } }";
        let a = ast(src);
        assert_eq!(a.structs.len(), 1);
        assert_eq!(a.impls.len(), 2);
        assert!(a.impls[0].test_only, "ToySwitch impl is test-only");
        assert!(!a.impls[1].test_only);
    }

    #[test]
    fn fn_pointer_arrows_do_not_close_generics() {
        let a = ast("struct S<F: Fn(u32) -> u64> { f: F, x: u8 }");
        let s = &a.structs[0];
        assert_eq!(s.generics, ["F"]);
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[1].name, "x");
    }

    #[test]
    fn hostile_input_does_not_panic() {
        for src in [
            "",
            "struct",
            "struct {",
            "impl",
            "impl X {",
            "trait T { fn",
            "mod m {",
            "}}}",
            "# [",
            "pub (",
            "struct S < { x : u8 }",
            "impl < S for > X {",
            "fn f ( { ) }",
        ] {
            let _ = ast(src);
        }
    }
}
