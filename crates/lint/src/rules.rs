//! The six FIFOMS source disciplines, as token-level rules.
//!
//! Each rule guards an invariant the simulator's correctness story
//! depends on (DESIGN.md §11):
//!
//! * **R1 determinism** — result-bearing crates (`core`, `fabric`, `sim`,
//!   `traffic`) must not iterate hash-ordered collections, read wall
//!   clocks, or construct unseeded RNGs. Keyed `HashMap` *lookup* is
//!   deterministic and allowed; *iteration* order is not. Bit-identical
//!   replay (§8) and chaos shrinking (§10) both assume this.
//! * **R2 timestamp discipline** — Theorem 1's starvation-freedom weighs
//!   packets by their *original arrival stamp*. Outside admission code,
//!   `Packet::new` may only be called with a preserved `*.arrival`
//!   stamp, and `now_slot`-style stamp minting is forbidden entirely, so
//!   no retry or requeue path can silently refresh a timestamp.
//! * **R3 panic freedom** — hot-path scheduler/fabric code must not
//!   `unwrap`/`expect`/`panic!` or index slices outside `#[cfg(test)]`
//!   and `debug_assert!`: the sweep runner's fault isolation treats a
//!   panic as a cell failure, so every avoidable panic is an avoidable
//!   lost cell.
//! * **R4 event vocabulary** — the `ObsEvent::kind()` tags and the
//!   checked-in `schemas/events.schema.json` enum must agree exactly in
//!   both directions, so traces and their consumers cannot drift.
//! * **R5 justification audit** — every `unsafe` block needs a
//!   `// SAFETY:` comment and every `INVARIANT:` tag needs a non-empty
//!   justification.
//! * **R6 fingerprint floats** — functions feeding the checkpoint
//!   journal's grid-hash identity must not format floating-point values
//!   except through `to_bits()`: `0.30000000000000004` and platform
//!   formatting differences would silently fork resume identities.

use crate::lexer::{is_float_literal, TokKind};
use crate::matcher::Matcher;

/// One lint finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Rule id, `"R1"`..`"R6"`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// 1-based byte column of the finding.
    pub col: usize,
    /// Reformat-stable token snippet the finding is baselined under.
    pub key: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Rule metadata for reports: `(id, name, discipline)`.
pub const RULES: &[(&str, &str, &str)] = &[
    ("R1", "determinism", "no hash-order iteration, wall clocks or unseeded RNGs in result-bearing crates"),
    ("R2", "timestamp-discipline", "arrival stamps are minted at admission only; retries must preserve them"),
    ("R3", "panic-freedom", "no unwrap/expect/panic!/indexing in hot-path scheduler and fabric code"),
    ("R4", "event-vocabulary", "ObsEvent kinds and schemas/events.schema.json agree in both directions; derived schemas (timeseries) name only emitted kinds"),
    ("R5", "justification-audit", "every unsafe block has SAFETY:, every INVARIANT: tag a justification"),
    ("R6", "fingerprint-floats", "grid-hash fingerprint code formats floats only via to_bits()"),
];

/// The crate a workspace-relative path belongs to (`crates/core/src/x.rs`
/// → `core`; the root `src/` → `fifoms`).
pub fn crate_of(rel: &str) -> Option<&str> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        return rest.split('/').next();
    }
    if rel.starts_with("src/") {
        return Some("fifoms");
    }
    None
}

/// Run every per-file rule on one lexed file.
pub fn check_file(rel: &str, m: &Matcher) -> Vec<Finding> {
    let mut out = Vec::new();
    let krate = crate_of(rel).unwrap_or("");
    if matches!(krate, "core" | "fabric" | "sim" | "traffic") {
        r1_determinism(rel, m, &mut out);
    }
    if matches!(krate, "core" | "fabric" | "baselines") {
        r2_timestamps(rel, m, &mut out);
    }
    if matches!(krate, "core" | "fabric") {
        r3_panic_freedom(rel, m, &mut out);
    }
    r5_justifications(rel, m, &mut out);
    r6_fingerprint_floats(rel, m, &mut out);
    out
}

/// Push a finding unless it sits in test code or under an allow
/// directive.
fn push(
    out: &mut Vec<Finding>,
    m: &Matcher,
    rel: &str,
    rule: &'static str,
    si: usize,
    key: String,
    message: String,
) {
    let offset = m.tok(si).start;
    if m.in_test_code(offset) {
        return;
    }
    let (line, col) = m.line_col(si);
    if m.allowed(rule, line) {
        return;
    }
    out.push(Finding {
        rule,
        path: rel.to_string(),
        line,
        col,
        key,
        message,
    });
}

// ---------------------------------------------------------------- R1 --

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn r1_determinism(rel: &str, m: &Matcher, out: &mut Vec<Finding>) {
    // Wall clocks and unseeded RNGs. `crates/sim/src/profile.rs` is the
    // one sanctioned wall-clock reader: self-profiling measures time by
    // definition and its output never feeds simulation results.
    let clock_exempt = rel == "crates/sim/src/profile.rs";
    for si in 0..m.len() {
        let t = m.text(si);
        if !clock_exempt && (t == "SystemTime" || m.matches(si, &["Instant", ":", ":", "now"])) {
            push(
                out,
                m,
                rel,
                "R1",
                si,
                m.snippet(si, si + 4, 4),
                "wall-clock read in result-bearing code; results must be a function of the seed only".into(),
            );
        }
        if t == "thread_rng" || t == "from_entropy" || m.matches(si, &["rand", ":", ":", "random"])
        {
            push(
                out,
                m,
                rel,
                "R1",
                si,
                m.snippet(si, si + 4, 4),
                "unseeded RNG construction; use SmallRng::seed_from_u64 so runs replay bit-identically".into(),
            );
        }
    }
    // Hash-ordered iteration: collect names declared as HashMap/HashSet,
    // then flag iteration over them. Keyed lookup stays allowed.
    let mut hash_names: Vec<&str> = Vec::new();
    for si in 0..m.len() {
        if !matches!(m.text(si), "HashMap" | "HashSet") {
            continue;
        }
        // `name: [path::]HashMap<...>` — walk back over path segments to
        // the single ascription colon.
        let mut j = si;
        while j >= 3 && m.text(j - 1) == ":" && m.text(j - 2) == ":" {
            j -= 3; // step over `:: segment`
        }
        if j >= 2 && m.text(j - 1) == ":" && m.tok(j - 2).kind == TokKind::Ident {
            hash_names.push(m.text(j - 2));
        }
        // `let [mut] name = HashMap::...`.
        if si >= 2 && m.text(si - 1) == "=" && m.tok(si - 2).kind == TokKind::Ident {
            let name_si = si - 2;
            if si >= 3 && matches!(m.text(si - 3), "let" | "mut") {
                hash_names.push(m.text(name_si));
            }
        }
    }
    hash_names.sort_unstable();
    hash_names.dedup();
    for si in 0..m.len() {
        if m.tok(si).kind != TokKind::Ident || !hash_names.contains(&m.text(si)) {
            continue;
        }
        // Receiver must be the bare name or `self.name`, not `x.name`.
        let plain_receiver = si == 0
            || m.text(si - 1) != "."
            || (si >= 2 && m.text(si - 2) == "self");
        if !plain_receiver {
            continue;
        }
        // `name.iter()` and friends.
        if si + 3 < m.len()
            && m.text(si + 1) == "."
            && HASH_ITER_METHODS.contains(&m.text(si + 2))
            && m.text(si + 3) == "("
        {
            push(
                out,
                m,
                rel,
                "R1",
                si,
                m.snippet(si, si + 5, 6),
                format!(
                    "iteration over hash-ordered `{}`; hash order is nondeterministic — collect into a sorted Vec/BTreeMap instead",
                    m.text(si)
                ),
            );
        }
        // `for x in [&][mut] [self.]name {`.
        let mut j = si;
        if j >= 2 && m.text(j - 1) == "." && m.text(j - 2) == "self" {
            j -= 2;
        }
        while j >= 1 && matches!(m.text(j - 1), "&" | "mut") {
            j -= 1;
        }
        if j >= 1 && m.text(j - 1) == "in" && si + 1 < m.len() && m.text(si + 1) == "{" {
            push(
                out,
                m,
                rel,
                "R1",
                si,
                m.snippet(j - 1, si + 1, 8),
                format!(
                    "`for` loop over hash-ordered `{}`; iterate a sorted projection instead",
                    m.text(si)
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- R2 --

fn r2_timestamps(rel: &str, m: &Matcher, out: &mut Vec<Finding>) {
    for si in 0..m.len() {
        // Stamp minting is forbidden outright outside admission.
        if m.text(si) == "now_slot"
            || m.matches(si, &["Slot", ":", ":", "now"])
            || m.matches(si, &["Timestamp", ":", ":", "now"])
        {
            push(
                out,
                m,
                rel,
                "R2",
                si,
                m.snippet(si, si + 4, 4),
                "fresh timestamp minted outside admission; Theorem 1 weighs the ORIGINAL arrival stamp".into(),
            );
        }
        // `Packet::new(id, <arrival>, ...)` must preserve an existing
        // stamp: the arrival argument has to be an `arrival` projection
        // (`d.arrival`, `p.arrival`, a bound `arrival`), the pattern
        // `restore_destination` established in the retransmission path.
        if !m.matches(si, &["Packet", ":", ":", "new", "("]) {
            continue;
        }
        let open = si + 4;
        let Some(close) = m.matching_close(open) else {
            continue;
        };
        let args = m.split_args(open, close);
        if args.len() < 2 {
            continue;
        }
        let (lo, hi) = args[1];
        let preserved = (lo..hi)
            .rev()
            .find(|&k| m.tok(k).kind == TokKind::Ident)
            .is_some_and(|k| m.text(k) == "arrival");
        if !preserved {
            push(
                out,
                m,
                rel,
                "R2",
                si,
                m.snippet(si, hi + 1, 12),
                format!(
                    "Packet::new with a non-preserved arrival stamp `{}`; outside admission, re-queued packets must carry their original arrival (see restore_destination)",
                    m.snippet(lo, hi, 8)
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- R3 --

const EXPR_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "dyn", "else", "enum", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

fn r3_panic_freedom(rel: &str, m: &Matcher, out: &mut Vec<Finding>) {
    for si in 0..m.len() {
        // `.unwrap()` / `.expect(...)`.
        if si + 2 < m.len()
            && m.text(si) == "."
            && matches!(m.text(si + 1), "unwrap" | "expect")
            && m.text(si + 2) == "("
        {
            push(
                out,
                m,
                rel,
                "R3",
                si + 1,
                m.snippet(si.saturating_sub(3), si + 3, 8),
                format!(
                    "`.{}` in hot-path code; a panic here costs a sweep cell — return a structured error or restructure",
                    m.text(si + 1)
                ),
            );
        }
        // `panic!`-family macros.
        if si + 1 < m.len()
            && matches!(
                m.text(si),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && m.text(si + 1) == "!"
        {
            push(
                out,
                m,
                rel,
                "R3",
                si,
                m.snippet(si, si + 2, 4),
                format!("`{}!` in hot-path code; prefer a structured error or a debug_assert!", m.text(si)),
            );
        }
        // Slice/array indexing: a `[` in index position (directly after a
        // value-producing token). Indexing inside `debug_assert!` is the
        // sanctioned form of the check.
        if m.text(si) == "["
            && si > 0
            && !m.in_debug_assert(m.tok(si).start)
            && (matches!(m.text(si - 1), ")" | "]")
                || (m.tok(si - 1).kind == TokKind::Ident
                    && !EXPR_KEYWORDS.contains(&m.text(si - 1))))
        {
            let close = m.matching_close(si).unwrap_or(si);
            push(
                out,
                m,
                rel,
                "R3",
                si,
                m.snippet(si.saturating_sub(3), close + 1, 10),
                "slice indexing can panic on the hot path; prefer get()/get_mut() or prove the bound with a debug_assert!".into(),
            );
        }
    }
}

// ---------------------------------------------------------------- R4 --

/// Cross-check the `ObsEvent::kind()` vocabulary against the checked-in
/// events schema. `obs_src` is `crates/types/src/obs.rs`; `schema` is the
/// parsed `schemas/events.schema.json`. Returns findings anchored to the
/// given paths.
pub fn check_vocabulary(
    obs_rel: &str,
    obs_src: &str,
    schema_rel: &str,
    schema: &fifoms_obs::Json,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let kinds = event_kinds(obs_src);
    let schema_kinds = schema_event_enum(schema);
    if schema_kinds.is_empty() {
        out.push(Finding {
            rule: "R4",
            path: schema_rel.to_string(),
            line: 1,
            col: 1,
            key: "missing-event-enum".into(),
            message: "events schema declares no properties.event.enum vocabulary".into(),
        });
        return out;
    }
    for (kind, line) in &kinds {
        if !schema_kinds.iter().any(|s| s == kind) {
            out.push(Finding {
                rule: "R4",
                path: obs_rel.to_string(),
                line: *line,
                col: 1,
                key: format!("emit-only {kind}"),
                message: format!(
                    "ObsEvent kind \"{kind}\" is emitted but absent from {schema_rel}; trace consumers cannot validate it"
                ),
            });
        }
    }
    for kind in &schema_kinds {
        if !kinds.iter().any(|(k, _)| k == kind) {
            out.push(Finding {
                rule: "R4",
                path: schema_rel.to_string(),
                line: 1,
                col: 1,
                key: format!("schema-only {kind}"),
                message: format!(
                    "events schema lists \"{kind}\" but no ObsEvent::kind() arm produces it; dead vocabulary"
                ),
            });
        }
    }
    out
}

/// Cross-check a derived event schema (e.g.
/// `schemas/timeseries.schema.json`) against the `ObsEvent::kind()`
/// vocabulary: every kind the derived schema names must exist in the
/// source vocabulary. One-directional — a derived stream carries a
/// *subset* of the event kinds, so kinds absent from it are fine.
pub fn check_derived_vocabulary(
    obs_src: &str,
    schema_rel: &str,
    schema: &fifoms_obs::Json,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let kinds = event_kinds(obs_src);
    let schema_kinds = schema_event_enum(schema);
    if schema_kinds.is_empty() {
        out.push(Finding {
            rule: "R4",
            path: schema_rel.to_string(),
            line: 1,
            col: 1,
            key: "missing-event-enum".into(),
            message: format!("{schema_rel} declares no properties.event.enum vocabulary"),
        });
        return out;
    }
    for kind in &schema_kinds {
        if !kinds.iter().any(|(k, _)| k == kind) {
            out.push(Finding {
                rule: "R4",
                path: schema_rel.to_string(),
                line: 1,
                col: 1,
                key: format!("schema-only {kind}"),
                message: format!(
                    "{schema_rel} lists \"{kind}\" but no ObsEvent::kind() arm produces it; dead vocabulary"
                ),
            });
        }
    }
    out
}

/// Event kinds = string literals inside `fn kind(...) -> ... { ... }`
/// of the observability vocabulary source, with their source lines.
fn event_kinds(obs_src: &str) -> Vec<(String, usize)> {
    let m = Matcher::new(obs_src);
    let mut kinds: Vec<(String, usize)> = Vec::new();
    for si in 0..m.len() {
        if m.text(si) != "fn" || si + 1 >= m.len() || m.text(si + 1) != "kind" {
            continue;
        }
        // First top-level `{` after the signature opens the body.
        let mut depth = 0i64;
        let mut open = None;
        for k in si..m.len() {
            match m.text(k) {
                "(" => depth += 1,
                ")" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(k);
                    break;
                }
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = m.matching_close(open) else {
            continue;
        };
        for k in open..close {
            if m.tok(k).kind == TokKind::Str {
                let text = m.text(k).trim_matches('"').to_string();
                let (line, _) = m.line_col(k);
                kinds.push((text, line));
            }
        }
    }
    kinds
}

/// The `properties.event.enum` vocabulary of a parsed event schema.
fn schema_event_enum(schema: &fifoms_obs::Json) -> Vec<String> {
    schema
        .get("properties")
        .and_then(|p| p.get("event"))
        .and_then(|e| e.get("enum"))
        .and_then(fifoms_obs::Json::as_arr)
        .map(|vals| {
            vals.iter()
                .filter_map(fifoms_obs::Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

// ---------------------------------------------------------------- R5 --

fn r5_justifications(rel: &str, m: &Matcher, out: &mut Vec<Finding>) {
    // `unsafe` needs a SAFETY: justification in a comment within the
    // three lines above it (or on its own line). A line window rather
    // than strict adjacency: the justification conventionally sits above
    // the `fn` while the `unsafe` block opens inside the body.
    let safety_lines: Vec<usize> = (0..m.lexed.toks.len())
        .filter(|&i| {
            matches!(
                m.lexed.toks[i].kind,
                TokKind::LineComment | TokKind::BlockComment
            ) && comment_tail(m.lexed.text(i), "SAFETY:").is_some_and(|t| !t.is_empty())
        })
        .map(|i| m.lexed.line_col(m.lexed.toks[i].end.saturating_sub(1)).0)
        .collect();
    for si in 0..m.len() {
        if m.text(si) != "unsafe" {
            continue;
        }
        let (line, _) = m.line_col(si);
        let justified = safety_lines
            .iter()
            .any(|&sl| sl <= line && sl + 3 >= line);
        if !justified {
            push(
                out,
                m,
                rel,
                "R5",
                si,
                m.snippet(si, si + 3, 4),
                "`unsafe` without a `// SAFETY:` justification in the comment above".into(),
            );
        }
    }
    // `INVARIANT:` tags need non-empty text after the colon.
    for i in 0..m.lexed.toks.len() {
        if !matches!(
            m.lexed.toks[i].kind,
            TokKind::LineComment | TokKind::BlockComment
        ) {
            continue;
        }
        let text = m.lexed.text(i);
        if let Some(tail) = comment_tail(text, "INVARIANT:") {
            if tail.is_empty() {
                let (line, col) = m.lexed.line_col(m.lexed.toks[i].start);
                if !m.in_test_code(m.lexed.toks[i].start) && !m.allowed("R5", line) {
                    out.push(Finding {
                        rule: "R5",
                        path: rel.to_string(),
                        line,
                        col,
                        key: "empty INVARIANT:".into(),
                        message: "INVARIANT: tag with no justification; state the invariant and why it holds".into(),
                    });
                }
            }
        }
    }
}

/// If `comment` contains `tag`, the trimmed text after it (block-comment
/// closers stripped).
fn comment_tail<'a>(comment: &'a str, tag: &str) -> Option<&'a str> {
    comment
        .split_once(tag)
        .map(|(_, tail)| tail.trim_end_matches("*/").trim())
}

// ---------------------------------------------------------------- R6 --

const FINGERPRINT_FNS: &[&str] = &["grid_hash", "fault_fingerprint", "cell_key"];
const FORMAT_SINKS: &[&str] = &["write_str", "write_fmt", "to_string", "push_str"];

fn r6_fingerprint_floats(rel: &str, m: &Matcher, out: &mut Vec<Finding>) {
    for si in 0..m.len() {
        if m.text(si) != "fn" || si + 1 >= m.len() {
            continue;
        }
        let name = m.text(si + 1);
        let marked = {
            // A `// FINGERPRINT` comment run above the fn opts it in.
            let raw_idx = m.sig[si];
            let mut j = raw_idx;
            let mut found = false;
            while j > 0 {
                j -= 1;
                match m.lexed.toks[j].kind {
                    TokKind::Whitespace => continue,
                    TokKind::LineComment | TokKind::BlockComment => {
                        if m.lexed.text(j).contains("FINGERPRINT") {
                            found = true;
                        }
                        continue;
                    }
                    _ => break,
                }
            }
            found
        };
        if !FINGERPRINT_FNS.contains(&name) && !marked {
            continue;
        }
        // Parameter list and body.
        let Some(popen) = (si..m.len()).find(|&k| m.text(k) == "(") else {
            continue;
        };
        let Some(pclose) = m.matching_close(popen) else {
            continue;
        };
        let Some(bopen) = (pclose..m.len()).find(|&k| m.text(k) == "{") else {
            continue;
        };
        let Some(bclose) = m.matching_close(bopen) else {
            continue;
        };
        // Float-typed names: `name: [&][mut] f64` params and
        // `let [mut] name: f64` / `let [mut] name = <float literal>`.
        let mut float_names: Vec<&str> = Vec::new();
        for k in popen..pclose {
            if m.text(k) == ":" {
                let mut v = k + 1;
                while v < pclose && matches!(m.text(v), "&" | "mut") {
                    v += 1;
                }
                if v < pclose
                    && matches!(m.text(v), "f64" | "f32")
                    && k >= 1
                    && m.tok(k - 1).kind == TokKind::Ident
                {
                    float_names.push(m.text(k - 1));
                }
            }
        }
        for k in bopen..bclose {
            if m.text(k) != "let" {
                continue;
            }
            let mut v = k + 1;
            if v < bclose && m.text(v) == "mut" {
                v += 1;
            }
            if v >= bclose || m.tok(v).kind != TokKind::Ident {
                continue;
            }
            let name_si = v;
            if v + 2 < bclose && m.text(v + 1) == ":" && matches!(m.text(v + 2), "f64" | "f32") {
                float_names.push(m.text(name_si));
            }
            if v + 2 < bclose
                && m.text(v + 1) == "="
                && m.tok(v + 2).kind == TokKind::Num
                && is_float_literal(m.text(v + 2))
            {
                float_names.push(m.text(name_si));
            }
        }
        // Statement scan: a formatting sink consuming float evidence must
        // carry a to_bits() in the same statement.
        let mut stmt_lo = bopen + 1;
        let mut depth = 0i64;
        for k in bopen + 1..=bclose {
            match m.text(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            let stmt_ends = (m.text(k) == ";" && depth == 0) || k == bclose;
            if !stmt_ends {
                continue;
            }
            let (lo, hi) = (stmt_lo, k);
            stmt_lo = k + 1;
            let has_sink = (lo..hi).any(|s| {
                FORMAT_SINKS.contains(&m.text(s))
                    || (m.text(s) == "format" && s + 1 < hi && m.text(s + 1) == "!")
            });
            if !has_sink {
                continue;
            }
            let float_evidence = (lo..hi).find(|&s| {
                (m.tok(s).kind == TokKind::Num && is_float_literal(m.text(s)))
                    || (m.tok(s).kind == TokKind::Ident && float_names.contains(&m.text(s)))
                    || (m.tok(s).kind == TokKind::Str && {
                        let text = m.text(s);
                        // Precision specs and inline captures of known
                        // float names ("{load}", "{load:?}") count too.
                        text.contains("{:.")
                            || float_names.iter().any(|n| {
                                text.contains(&format!("{{{n}}}"))
                                    || text.contains(&format!("{{{n}:"))
                            })
                    })
            });
            let has_to_bits = (lo..hi).any(|s| m.text(s) == "to_bits");
            if let Some(ev) = float_evidence {
                if !has_to_bits {
                    push(
                        out,
                        m,
                        rel,
                        "R6",
                        ev,
                        m.snippet(lo, hi, 12),
                        format!(
                            "float value formatted into fingerprint function `{name}` without to_bits(); decimal rendering forks the grid-hash identity across platforms"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        check_file(rel, &Matcher::new(src))
    }

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/core/src/voq.rs"), Some("core"));
        assert_eq!(crate_of("src/lib.rs"), Some("fifoms"));
        assert_eq!(crate_of("README.md"), None);
    }

    #[test]
    fn r1_flags_hash_iteration_not_lookup() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\nimpl S {\n fn get(&self) -> Option<&u32> { self.m.get(&1) }\n fn bad(&self) { for (k, v) in &self.m { let _ = (k, v); } }\n fn also_bad(&self) -> Vec<u32> { self.m.keys().copied().collect() }\n}\n";
        let f = findings("crates/core/src/x.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "R1").count(), 2, "{f:?}");
    }

    #[test]
    fn r1_flags_clocks_and_unseeded_rngs() {
        let src = "fn t() -> std::time::Instant { Instant::now() }\nfn r() { let _ = thread_rng(); }\n";
        let f = findings("crates/sim/src/engine.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "R1").count(), 2, "{f:?}");
        // The self-profiler is the sanctioned wall-clock reader.
        let f = findings("crates/sim/src/profile.rs", "fn t() { Instant::now(); }");
        assert!(f.iter().all(|f| f.rule != "R1"), "{f:?}");
        // Out-of-domain crates are not checked.
        let f = findings("crates/cli/src/main.rs", "fn t() { Instant::now(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r2_accepts_preserved_arrival_and_rejects_minting() {
        let good = "fn requeue(&mut self, d: &Departure) { self.q.push_front(Packet::new(d.packet, d.arrival, d.input, dests)); }";
        assert!(findings("crates/fabric/src/faults.rs", good).is_empty());
        let bad = "fn requeue(&mut self, d: &Departure, now: Slot) { self.q.push_front(Packet::new(d.packet, now, d.input, dests)); }";
        let f = findings("crates/fabric/src/faults.rs", bad);
        assert_eq!(f.iter().filter(|f| f.rule == "R2").count(), 1, "{f:?}");
        let minted = "fn stamp() -> Slot { Timestamp::now() }";
        let f = findings("crates/core/src/voq.rs", minted);
        assert_eq!(f.iter().filter(|f| f.rule == "R2").count(), 1, "{f:?}");
    }

    #[test]
    fn r3_flags_panics_and_indexing_outside_guards() {
        let src = "fn hot(&self, q: &[u32], i: usize) -> u32 {\n debug_assert!(q[i] > 0);\n let x = q[i];\n let y = self.opt.unwrap();\n x + y\n}\n#[cfg(test)]\nmod tests { fn t(q: &[u32]) { q[0]; None::<u32>.unwrap(); } }\n";
        let f = findings("crates/core/src/scheduler.rs", src);
        let r3: Vec<_> = f.iter().filter(|f| f.rule == "R3").collect();
        assert_eq!(r3.len(), 2, "{r3:?}");
        assert!(r3.iter().any(|f| f.key.contains("unwrap")));
        assert!(r3.iter().any(|f| f.key.contains("[ i ]")));
    }

    #[test]
    fn r3_allow_directive_with_reason_suppresses() {
        let src = "fn hot(q: &[u32]) -> u32 {\n // fifoms-lint: allow(R3) index bounded by the N*N grid allocation\n q[0]\n}\n";
        assert!(findings("crates/core/src/voq.rs", src).is_empty());
    }

    #[test]
    fn r5_safety_and_invariant_audit() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n// INVARIANT:\nstruct S;\n";
        let f = findings("crates/stats/src/x.rs", bad);
        assert_eq!(f.iter().filter(|f| f.rule == "R5").count(), 2, "{f:?}");
        let good = "// SAFETY: caller guarantees p is valid for reads\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n// INVARIANT: len <= cap by construction in new()\nstruct S;\n";
        assert!(findings("crates/stats/src/x.rs", good).is_empty());
    }

    #[test]
    fn r6_fingerprint_requires_to_bits() {
        let bad = "fn grid_hash(load: f64) -> u64 { let mut h = Fnv::new(); h.write_str(&format!(\"point={load}\")); h.finish() }";
        let f = findings("crates/sim/src/checkpoint.rs", bad);
        assert_eq!(f.iter().filter(|f| f.rule == "R6").count(), 1, "{f:?}");
        let good = "fn grid_hash(load: f64) -> u64 { let mut h = Fnv::new(); h.write_str(&format!(\"point={}\", load.to_bits())); h.finish() }";
        assert!(findings("crates/sim/src/checkpoint.rs", good).is_empty());
        // Non-fingerprint functions are not constrained.
        let other = "fn render(load: f64) -> String { format!(\"{load}\") }";
        assert!(findings("crates/sim/src/report.rs", other).is_empty());
    }
}
