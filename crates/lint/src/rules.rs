//! The token-level FIFOMS source disciplines.
//!
//! Each rule guards an invariant the simulator's correctness story
//! depends on (DESIGN.md §11 and §16):
//!
//! * **R1 determinism** — result-bearing crates (`core`, `fabric`, `sim`,
//!   `traffic`) must not iterate hash-ordered collections, read wall
//!   clocks, or construct unseeded RNGs. Keyed `HashMap` *lookup* is
//!   deterministic and allowed; *iteration* order is not. Bit-identical
//!   replay (§8) and chaos shrinking (§10) both assume this.
//! * **R2 timestamp discipline** — Theorem 1's starvation-freedom weighs
//!   packets by their *original arrival stamp*. Outside admission code,
//!   `Packet::new` may only be called with a preserved `*.arrival`
//!   stamp, and `now_slot`-style stamp minting is forbidden entirely, so
//!   no retry or requeue path can silently refresh a timestamp.
//! * **R3 panic freedom** — hot-path scheduler/fabric code must not
//!   `unwrap`/`expect`/`panic!` outside `#[cfg(test)]`: the sweep
//!   runner's fault isolation treats a panic as a cell failure, so
//!   every avoidable panic is an avoidable lost cell.
//! * **R4 event vocabulary** — the `ObsEvent::kind()` tags and the
//!   checked-in `schemas/events.schema.json` enum must agree exactly in
//!   both directions, so traces and their consumers cannot drift.
//! * **R5 justification audit** — every `unsafe` block needs a
//!   `// SAFETY:` comment and every `INVARIANT:` tag needs a non-empty
//!   justification.
//! * **R6 fingerprint floats** — functions feeding the checkpoint
//!   journal's grid-hash identity must not format floating-point values
//!   except through `to_bits()`: `0.30000000000000004` and platform
//!   formatting differences would silently fork resume identities.
//! * **R10 guarded indexing** — `x[i]` in hot-path code must be
//!   *discharged*: dominated by a `len` bound check (`assert!`/
//!   `debug_assert!`/`if`) in the same function, or fed by a checked
//!   accessor whose body proves the bound. Undischarged sites are
//!   findings. (R10 took over indexing from R3 once the intra-function
//!   dataflow pass could tell a proven bound from a hopeful one.)
//!
//! The cross-file structural rules R7–R9 live in
//! [`structural`](crate::structural).

use crate::lexer::{is_float_literal, TokKind};
use crate::matcher::Matcher;

/// One lint finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Rule id, `"R1"`..`"R10"`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// 1-based byte column of the finding.
    pub col: usize,
    /// Reformat-stable token snippet the finding is baselined under.
    pub key: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Rule metadata for reports: `(id, name, discipline)`.
pub const RULES: &[(&str, &str, &str)] = &[
    ("R1", "determinism", "no hash-order iteration, wall clocks or unseeded RNGs in result-bearing crates"),
    ("R2", "timestamp-discipline", "arrival stamps are minted at admission only; retries must preserve them"),
    ("R3", "panic-freedom", "no unwrap/expect/panic! in hot-path scheduler and fabric code"),
    ("R4", "event-vocabulary", "ObsEvent kinds and schemas/events.schema.json agree in both directions"),
    ("R5", "justification-audit", "every unsafe block has SAFETY:, every INVARIANT: tag a justification"),
    ("R6", "fingerprint-floats", "grid-hash fingerprint code formats floats only via to_bits()"),
    ("R7", "wrapper-forwarding", "wrapper impls override and delegate every default-bodied trait method"),
    ("R8", "checkpoint-coverage", "Checkpoint impls cover every struct field both ways; field changes need a state_version bump"),
    ("R9", "schema-drift", "derived schemas match their emitters bidirectionally and every schema id is emitted somewhere"),
    ("R10", "guarded-index", "hot-path slice indexing is dominated by a len check or fed by a checked accessor"),
];

/// Extended per-rule documentation for `lint --explain`:
/// `(id, rationale, example violation, escape hatch)`.
pub const RULE_DOCS: &[(&str, &str, &str, &str)] = &[
    (
        "R1",
        "Bit-identical replay (DESIGN.md §8) and chaos shrinking (§10) require results to be a pure function of the seed. Hash-map iteration order, wall clocks and unseeded RNGs all smuggle in ambient state. Keyed HashMap *lookup* is deterministic and stays allowed.",
        "for (port, q) in &self.queues { ... }   // queues: HashMap<Port, Voq>",
        "iterate a sorted projection (BTreeMap / collect-and-sort), or annotate the one sanctioned site with `// fifoms-lint: allow(R1) <reason>`",
    ),
    (
        "R2",
        "Theorem 1's starvation-freedom weighs packets by their ORIGINAL arrival stamp. A retry or requeue path that mints a fresh stamp silently resets a packet's age and breaks the FIFO fairness argument.",
        "self.q.push_front(Packet::new(d.packet, now, d.input, dests));",
        "carry the old stamp (`d.arrival`) through the requeue; `// fifoms-lint: allow(R2) <reason>` for genuine admission sites",
    ),
    (
        "R3",
        "The sweep runner treats a panic as a fault-isolated cell failure, so every avoidable unwrap/expect/panic! in scheduler or fabric code is an avoidable lost sweep cell.",
        "let grant = self.pending.pop_front().unwrap();",
        "return a structured error, or `.expect(\"...\")` + `// fifoms-lint: allow(R3) INVARIANT: <why it cannot fail>`",
    ),
    (
        "R4",
        "Trace consumers validate against schemas/events.schema.json. A kind emitted but not listed fails validation downstream; a kind listed but never emitted is dead vocabulary that hides real drift.",
        "ObsEvent::NewThing { .. } => \"new_thing\"   // absent from the schema enum",
        "add the kind to the schema enum (emit side) or delete it from the enum (schema side); there is no allow for vocabulary drift",
    ),
    (
        "R5",
        "`unsafe` and `INVARIANT:` are claims about non-local facts. An unjustified claim is indistinguishable from a stale one.",
        "unsafe { *ptr }   // no SAFETY: comment above",
        "write the justification: `// SAFETY: <why>` within three lines above, or a non-empty `INVARIANT:` tail",
    ),
    (
        "R6",
        "Checkpoint identity hashes cover formatted parameter values. Decimal float formatting differs across platforms and rounds (0.30000000000000004), silently forking resume identities; to_bits() is exact.",
        "h.write_str(&format!(\"load={load}\"));   // inside grid_hash",
        "format `load.to_bits()` instead; mark additional identity functions with a `// FINGERPRINT` comment",
    ),
    (
        "R7",
        "Default-bodied trait methods are silent no-ops on wrappers that forget to forward them: the wrapped switch's spans/drops/state go undrained and no runtime test fails until that hook matters. Four wrappers were hand-threaded in PRs 6-9; R7 makes the discipline mechanical.",
        "impl<S: Switch> Switch for CheckedSwitch<S> { /* no drain_spans */ }",
        "forward the method (`self.inner.drain_spans(out)`), or `// fifoms-lint: allow(R7) <reason>` on the impl line for a deliberate interception",
    ),
    (
        "R8",
        "A Checkpoint impl that skips a field diverges silently on recovery (PR 9's bit-identity promise). A field-list change without a state_version bump misreads old checkpoints. Fields typed by a generic parameter travel in their own frame; comment-documented exclusions are honored.",
        "fn read_state(..) { self.rng = r.u64()?; /* scoreboard never restored */ }",
        "serialize the field, name it in a comment inside the impl (documented exclusion), or bump state_version and re-run --write-baseline for field changes",
    ),
    (
        "R9",
        "Derived streams (timeseries, snapshot) have their own schemas. A constructed event kind the schema rejects breaks consumers; an admitted-but-never-constructed kind is dead vocabulary; a schema id no emitter produces validates nothing.",
        "ObsEvent::RunEnd { .. }   // constructed in telemetry.rs, absent from timeseries enum",
        "update the schema enum or stop emitting the kind; schema ids must match the emitting literal exactly",
    ),
    (
        "R10",
        "`x[i]` panics on a bad index, and R3's blanket ban produced a 20-entry grandfathered baseline. R10 discharges sites a local dataflow pass can prove safe: a dominating assert!/debug_assert!/if that bounds the index against the base's len in the same function, or an index produced by a checked accessor (a fn whose body asserts the bound).",
        "let cell = self.entries[idx];   // no bound check in this fn",
        "add `debug_assert!(idx < self.entries.len());` above the site, use get()/get_mut(), route through a checked accessor, or `// fifoms-lint: allow(R10) <reason>`",
    ),
];

/// The crate a workspace-relative path belongs to (`crates/core/src/x.rs`
/// → `core`; the root `src/` → `fifoms`).
pub fn crate_of(rel: &str) -> Option<&str> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        return rest.split('/').next();
    }
    if rel.starts_with("src/") {
        return Some("fifoms");
    }
    None
}

/// Run every per-file rule on one lexed file.
pub fn check_file(rel: &str, m: &Matcher) -> Vec<Finding> {
    let mut out = Vec::new();
    let krate = crate_of(rel).unwrap_or("");
    if matches!(krate, "core" | "fabric" | "sim" | "traffic") {
        r1_determinism(rel, m, &mut out);
    }
    if matches!(krate, "core" | "fabric" | "baselines") {
        r2_timestamps(rel, m, &mut out);
    }
    if matches!(krate, "core" | "fabric") {
        r3_panic_freedom(rel, m, &mut out);
        r10_guarded_index(rel, m, &mut out);
    }
    r5_justifications(rel, m, &mut out);
    r6_fingerprint_floats(rel, m, &mut out);
    out
}

/// Push a finding unless it sits in test code or under an allow
/// directive.
fn push(
    out: &mut Vec<Finding>,
    m: &Matcher,
    rel: &str,
    rule: &'static str,
    si: usize,
    key: String,
    message: String,
) {
    let offset = m.tok(si).start;
    if m.in_test_code(offset) {
        return;
    }
    let (line, col) = m.line_col(si);
    if m.allowed(rule, line) {
        return;
    }
    out.push(Finding {
        rule,
        path: rel.to_string(),
        line,
        col,
        key,
        message,
    });
}

// ---------------------------------------------------------------- R1 --

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn r1_determinism(rel: &str, m: &Matcher, out: &mut Vec<Finding>) {
    // Wall clocks and unseeded RNGs. `crates/sim/src/profile.rs` is the
    // one sanctioned wall-clock reader: self-profiling measures time by
    // definition and its output never feeds simulation results.
    let clock_exempt = rel == "crates/sim/src/profile.rs";
    for si in 0..m.len() {
        let t = m.text(si);
        if !clock_exempt && (t == "SystemTime" || m.matches(si, &["Instant", ":", ":", "now"])) {
            push(
                out,
                m,
                rel,
                "R1",
                si,
                m.snippet(si, si + 4, 4),
                "wall-clock read in result-bearing code; results must be a function of the seed only".into(),
            );
        }
        if t == "thread_rng" || t == "from_entropy" || m.matches(si, &["rand", ":", ":", "random"])
        {
            push(
                out,
                m,
                rel,
                "R1",
                si,
                m.snippet(si, si + 4, 4),
                "unseeded RNG construction; use SmallRng::seed_from_u64 so runs replay bit-identically".into(),
            );
        }
    }
    // Hash-ordered iteration: collect names declared as HashMap/HashSet,
    // then flag iteration over them. Keyed lookup stays allowed.
    let mut hash_names: Vec<&str> = Vec::new();
    for si in 0..m.len() {
        if !matches!(m.text(si), "HashMap" | "HashSet") {
            continue;
        }
        // `name: [path::]HashMap<...>` — walk back over path segments to
        // the single ascription colon.
        let mut j = si;
        while j >= 3 && m.text(j - 1) == ":" && m.text(j - 2) == ":" {
            j -= 3; // step over `:: segment`
        }
        if j >= 2 && m.text(j - 1) == ":" && m.tok(j - 2).kind == TokKind::Ident {
            hash_names.push(m.text(j - 2));
        }
        // `let [mut] name = HashMap::...`.
        if si >= 2 && m.text(si - 1) == "=" && m.tok(si - 2).kind == TokKind::Ident {
            let name_si = si - 2;
            if si >= 3 && matches!(m.text(si - 3), "let" | "mut") {
                hash_names.push(m.text(name_si));
            }
        }
    }
    hash_names.sort_unstable();
    hash_names.dedup();
    for si in 0..m.len() {
        if m.tok(si).kind != TokKind::Ident || !hash_names.contains(&m.text(si)) {
            continue;
        }
        // Receiver must be the bare name or `self.name`, not `x.name`.
        let plain_receiver = si == 0
            || m.text(si - 1) != "."
            || (si >= 2 && m.text(si - 2) == "self");
        if !plain_receiver {
            continue;
        }
        // `name.iter()` and friends.
        if si + 3 < m.len()
            && m.text(si + 1) == "."
            && HASH_ITER_METHODS.contains(&m.text(si + 2))
            && m.text(si + 3) == "("
        {
            push(
                out,
                m,
                rel,
                "R1",
                si,
                m.snippet(si, si + 5, 6),
                format!(
                    "iteration over hash-ordered `{}`; hash order is nondeterministic — collect into a sorted Vec/BTreeMap instead",
                    m.text(si)
                ),
            );
        }
        // `for x in [&][mut] [self.]name {`.
        let mut j = si;
        if j >= 2 && m.text(j - 1) == "." && m.text(j - 2) == "self" {
            j -= 2;
        }
        while j >= 1 && matches!(m.text(j - 1), "&" | "mut") {
            j -= 1;
        }
        if j >= 1 && m.text(j - 1) == "in" && si + 1 < m.len() && m.text(si + 1) == "{" {
            push(
                out,
                m,
                rel,
                "R1",
                si,
                m.snippet(j - 1, si + 1, 8),
                format!(
                    "`for` loop over hash-ordered `{}`; iterate a sorted projection instead",
                    m.text(si)
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- R2 --

fn r2_timestamps(rel: &str, m: &Matcher, out: &mut Vec<Finding>) {
    for si in 0..m.len() {
        // Stamp minting is forbidden outright outside admission.
        if m.text(si) == "now_slot"
            || m.matches(si, &["Slot", ":", ":", "now"])
            || m.matches(si, &["Timestamp", ":", ":", "now"])
        {
            push(
                out,
                m,
                rel,
                "R2",
                si,
                m.snippet(si, si + 4, 4),
                "fresh timestamp minted outside admission; Theorem 1 weighs the ORIGINAL arrival stamp".into(),
            );
        }
        // `Packet::new(id, <arrival>, ...)` must preserve an existing
        // stamp: the arrival argument has to be an `arrival` projection
        // (`d.arrival`, `p.arrival`, a bound `arrival`), the pattern
        // `restore_destination` established in the retransmission path.
        if !m.matches(si, &["Packet", ":", ":", "new", "("]) {
            continue;
        }
        let open = si + 4;
        let Some(close) = m.matching_close(open) else {
            continue;
        };
        let args = m.split_args(open, close);
        if args.len() < 2 {
            continue;
        }
        let (lo, hi) = args[1];
        let preserved = (lo..hi)
            .rev()
            .find(|&k| m.tok(k).kind == TokKind::Ident)
            .is_some_and(|k| m.text(k) == "arrival");
        if !preserved {
            push(
                out,
                m,
                rel,
                "R2",
                si,
                m.snippet(si, hi + 1, 12),
                format!(
                    "Packet::new with a non-preserved arrival stamp `{}`; outside admission, re-queued packets must carry their original arrival (see restore_destination)",
                    m.snippet(lo, hi, 8)
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- R3 --

const EXPR_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "dyn", "else", "enum", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

fn r3_panic_freedom(rel: &str, m: &Matcher, out: &mut Vec<Finding>) {
    for si in 0..m.len() {
        // `.unwrap()` / `.expect(...)`.
        if si + 2 < m.len()
            && m.text(si) == "."
            && matches!(m.text(si + 1), "unwrap" | "expect")
            && m.text(si + 2) == "("
        {
            push(
                out,
                m,
                rel,
                "R3",
                si + 1,
                m.snippet(si.saturating_sub(3), si + 3, 8),
                format!(
                    "`.{}` in hot-path code; a panic here costs a sweep cell — return a structured error or restructure",
                    m.text(si + 1)
                ),
            );
        }
        // `panic!`-family macros.
        if si + 1 < m.len()
            && matches!(
                m.text(si),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && m.text(si + 1) == "!"
        {
            push(
                out,
                m,
                rel,
                "R3",
                si,
                m.snippet(si, si + 2, 4),
                format!("`{}!` in hot-path code; prefer a structured error or a debug_assert!", m.text(si)),
            );
        }
    }
}

// --------------------------------------------------------------- R10 --

/// A bound-check span a guard can discharge index sites from: the
/// argument group of `assert!`/`debug_assert!` or the condition of an
/// `if`/`while`, as a significant-token range.
struct Guard {
    lo: usize,
    hi: usize,
}

/// Function bodies of the file, as `(body_open, body_close)` spans —
/// the dominance scope of the R10 dataflow pass.
fn fn_bodies(m: &Matcher) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for si in 0..m.len() {
        if m.text(si) != "fn" || si + 1 >= m.len() || m.tok(si + 1).kind != TokKind::Ident {
            continue;
        }
        let Some(popen) = (si..m.len()).find(|&k| m.text(k) == "(") else {
            continue;
        };
        let Some(pclose) = m.matching_close(popen) else {
            continue;
        };
        let mut open = None;
        for k in pclose..m.len() {
            match m.text(k) {
                "{" => {
                    open = Some(k);
                    break;
                }
                ";" => break, // required trait method / extern decl
                _ => {}
            }
        }
        let Some(bopen) = open else { continue };
        if let Some(bclose) = m.matching_close(bopen) {
            out.push((bopen, bclose));
        }
    }
    out
}

/// The bound-check spans inside `lo..hi`.
fn guards_in(m: &Matcher, lo: usize, hi: usize) -> Vec<Guard> {
    let mut out = Vec::new();
    let mut k = lo;
    while k < hi {
        if matches!(m.text(k), "assert" | "debug_assert")
            && k + 2 < hi
            && m.text(k + 1) == "!"
            && m.text(k + 2) == "("
        {
            if let Some(close) = m.matching_close(k + 2) {
                out.push(Guard {
                    lo: k + 3,
                    hi: close,
                });
                k += 3;
                continue;
            }
        }
        if matches!(m.text(k), "if" | "while") {
            // Condition runs to the block-opening `{` at depth 0.
            let mut depth = 0i64;
            for j in k + 1..hi {
                match m.text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        out.push(Guard { lo: k + 1, hi: j });
                        break;
                    }
                    ";" if depth == 0 => break, // `if` never materialized
                    _ => {}
                }
            }
        }
        k += 1;
    }
    out
}

/// Whether the token texts `needle` occur contiguously inside
/// `lo..hi`, returning the match position.
fn find_seq(m: &Matcher, lo: usize, hi: usize, needle: &[&str]) -> Option<usize> {
    if needle.is_empty() || hi < needle.len() {
        return None;
    }
    (lo..=hi.saturating_sub(needle.len()))
        .find(|&p| needle.iter().enumerate().all(|(i, t)| m.text(p + i) == *t))
}

/// Whether a guard span proves `base[idx]` in bounds: it compares the
/// index tokens with `<` (or `>` the other way round) and mentions
/// `base.len`.
fn guard_discharges(m: &Matcher, g: &Guard, base: &[&str], idx: &[&str]) -> bool {
    let Some(at) = find_seq(m, g.lo, g.hi, idx) else {
        return false;
    };
    let mut after = at + idx.len();
    while after < g.hi && m.text(after) == ")" {
        after += 1;
    }
    let mut before = at;
    while before > g.lo && m.text(before - 1) == "(" {
        before -= 1;
    }
    let compared = (after < g.hi && matches!(m.text(after), "<"))
        || (before > g.lo && matches!(m.text(before - 1), ">"));
    if !compared {
        return false;
    }
    // The bound side must reference the indexed base's len.
    (g.lo..g.hi.saturating_sub(base.len() + 1)).any(|p| {
        base.iter().enumerate().all(|(i, t)| m.text(p + i) == *t)
            && m.text(p + base.len()) == "."
            && m.text(p + base.len() + 1) == "len"
    })
}

/// Names of functions in this file whose bodies assert a `<` bound —
/// the "checked accessor" set (`fn idx(..) { debug_assert!(i < n); .. }`).
fn checked_accessors<'m>(m: &'m Matcher) -> Vec<&'m str> {
    let mut out = Vec::new();
    for si in 0..m.len() {
        if m.text(si) != "fn" || si + 1 >= m.len() || m.tok(si + 1).kind != TokKind::Ident {
            continue;
        }
        let name = m.text(si + 1);
        let Some(popen) = (si..m.len()).find(|&k| m.text(k) == "(") else {
            continue;
        };
        let Some(pclose) = m.matching_close(popen) else {
            continue;
        };
        let Some(bopen) = (pclose..m.len()).find(|&k| m.text(k) == "{") else {
            continue;
        };
        let Some(bclose) = m.matching_close(bopen) else {
            continue;
        };
        let asserts_bound = (bopen..bclose).any(|k| {
            matches!(m.text(k), "assert" | "debug_assert")
                && k + 2 < bclose
                && m.text(k + 1) == "!"
                && m.text(k + 2) == "("
                && m
                    .matching_close(k + 2)
                    .is_some_and(|c| (k + 3..c).any(|j| m.text(j) == "<"))
        });
        if asserts_bound {
            out.push(name);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Whether the index expression `idx` (tokens `si+1..close`) is the
/// value of a checked accessor: directly `[self.]F(..)`, or a single
/// local bound earlier in the body via `let v = [self.]F(..)`.
fn accessor_discharges(
    m: &Matcher,
    body_lo: usize,
    si: usize,
    close: usize,
    checked: &[&str],
) -> bool {
    let call_of = |at: usize| -> Option<&str> {
        if at >= m.len() {
            return None;
        }
        let f = if m.text(at) == "self" && at + 1 < m.len() && m.text(at + 1) == "." {
            at + 2
        } else {
            at
        };
        if f + 1 >= m.len() {
            return None;
        }
        (m.tok(f).kind == TokKind::Ident && m.text(f + 1) == "(").then(|| m.text(f))
    };
    if call_of(si + 1).is_some_and(|f| checked.binary_search(&f).is_ok()) {
        return true;
    }
    // Single-ident index: trace one `let v = [self.]F(..)` binding back.
    if close != si + 2 || m.tok(si + 1).kind != TokKind::Ident {
        return false;
    }
    let v = m.text(si + 1);
    for k in body_lo..si {
        if m.text(k) != "let" {
            continue;
        }
        let mut at = k + 1;
        if at < si && m.text(at) == "mut" {
            at += 1;
        }
        if at + 1 >= si || m.text(at) != v || m.text(at + 1) != "=" {
            continue;
        }
        if call_of(at + 2).is_some_and(|f| checked.binary_search(&f).is_ok()) {
            return true;
        }
    }
    false
}

/// R10: flag `x[i]` sites no local proof discharges. Indexing inside
/// `debug_assert!` is itself the sanctioned check and exempt.
fn r10_guarded_index(rel: &str, m: &Matcher, out: &mut Vec<Finding>) {
    let bodies = fn_bodies(m);
    let checked = checked_accessors(m);
    for si in 0..m.len() {
        if m.text(si) != "["
            || si == 0
            || m.in_debug_assert(m.tok(si).start)
            || !(matches!(m.text(si - 1), ")" | "]")
                || (m.tok(si - 1).kind == TokKind::Ident
                    && !EXPR_KEYWORDS.contains(&m.text(si - 1))))
        {
            continue;
        }
        let close = m.matching_close(si).unwrap_or(si);
        // The indexed base: the `ident`/`self`/`.` chain ending at `[`.
        let mut base_lo = si;
        while base_lo > 0
            && (m.text(base_lo - 1) == "."
                || m.text(base_lo - 1) == "self"
                || (m.tok(base_lo - 1).kind == TokKind::Ident
                    && !EXPR_KEYWORDS.contains(&m.text(base_lo - 1))))
        {
            base_lo -= 1;
        }
        let base: Vec<&str> = (base_lo..si).map(|k| m.text(k)).collect();
        let idx: Vec<&str> = (si + 1..close).map(|k| m.text(k)).collect();
        // The innermost enclosing fn body scopes the dominance search.
        let body = bodies
            .iter()
            .filter(|(lo, hi)| *lo < si && si < *hi)
            .max_by_key(|(lo, _)| *lo)
            .copied();
        let discharged = body.is_some_and(|(blo, bhi)| {
            let dominated = !base.is_empty()
                && !idx.is_empty()
                && guards_in(m, blo, bhi)
                    .iter()
                    .filter(|g| g.lo <= si)
                    .any(|g| guard_discharges(m, g, &base, &idx));
            dominated || accessor_discharges(m, blo, si, close, &checked)
        });
        if !discharged {
            push(
                out,
                m,
                rel,
                "R10",
                si,
                m.snippet(si.saturating_sub(3), close + 1, 10),
                "slice indexing can panic on the hot path and no dominating bound check was found; prove the bound with assert!/debug_assert!/if against .len(), use get()/get_mut(), or route through a checked accessor".into(),
            );
        }
    }
}

// ---------------------------------------------------------------- R4 --

/// Cross-check the `ObsEvent::kind()` vocabulary against the checked-in
/// events schema. `obs_src` is `crates/types/src/obs.rs`; `schema` is the
/// parsed `schemas/events.schema.json`. Returns findings anchored to the
/// given paths.
pub fn check_vocabulary(
    obs_rel: &str,
    obs_src: &str,
    schema_rel: &str,
    schema: &fifoms_obs::Json,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let kinds = event_kinds(obs_src);
    let schema_kinds = schema_event_enum(schema);
    if schema_kinds.is_empty() {
        out.push(Finding {
            rule: "R4",
            path: schema_rel.to_string(),
            line: 1,
            col: 1,
            key: "missing-event-enum".into(),
            message: "events schema declares no properties.event.enum vocabulary".into(),
        });
        return out;
    }
    for (kind, line) in &kinds {
        if !schema_kinds.iter().any(|s| s == kind) {
            out.push(Finding {
                rule: "R4",
                path: obs_rel.to_string(),
                line: *line,
                col: 1,
                key: format!("emit-only {kind}"),
                message: format!(
                    "ObsEvent kind \"{kind}\" is emitted but absent from {schema_rel}; trace consumers cannot validate it"
                ),
            });
        }
    }
    for kind in &schema_kinds {
        if !kinds.iter().any(|(k, _)| k == kind) {
            out.push(Finding {
                rule: "R4",
                path: schema_rel.to_string(),
                line: 1,
                col: 1,
                key: format!("schema-only {kind}"),
                message: format!(
                    "events schema lists \"{kind}\" but no ObsEvent::kind() arm produces it; dead vocabulary"
                ),
            });
        }
    }
    out
}

/// Event kinds = string literals inside `fn kind(...) -> ... { ... }`
/// of the observability vocabulary source, with their source lines.
fn event_kinds(obs_src: &str) -> Vec<(String, usize)> {
    let m = Matcher::new(obs_src);
    let mut kinds: Vec<(String, usize)> = Vec::new();
    for si in 0..m.len() {
        if m.text(si) != "fn" || si + 1 >= m.len() || m.text(si + 1) != "kind" {
            continue;
        }
        // First top-level `{` after the signature opens the body.
        let mut depth = 0i64;
        let mut open = None;
        for k in si..m.len() {
            match m.text(k) {
                "(" => depth += 1,
                ")" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(k);
                    break;
                }
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = m.matching_close(open) else {
            continue;
        };
        for k in open..close {
            if m.tok(k).kind == TokKind::Str {
                let text = m.text(k).trim_matches('"').to_string();
                let (line, _) = m.line_col(k);
                kinds.push((text, line));
            }
        }
    }
    kinds
}

/// The `properties.event.enum` vocabulary of a parsed event schema.
/// Shared with the R9 drift checks in [`crate::structural`].
pub(crate) fn schema_event_enum(schema: &fifoms_obs::Json) -> Vec<String> {
    schema
        .get("properties")
        .and_then(|p| p.get("event"))
        .and_then(|e| e.get("enum"))
        .and_then(fifoms_obs::Json::as_arr)
        .map(|vals| {
            vals.iter()
                .filter_map(fifoms_obs::Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

// ---------------------------------------------------------------- R5 --

fn r5_justifications(rel: &str, m: &Matcher, out: &mut Vec<Finding>) {
    // `unsafe` needs a SAFETY: justification in a comment within the
    // three lines above it (or on its own line). A line window rather
    // than strict adjacency: the justification conventionally sits above
    // the `fn` while the `unsafe` block opens inside the body.
    let safety_lines: Vec<usize> = (0..m.lexed.toks.len())
        .filter(|&i| {
            matches!(
                m.lexed.toks[i].kind,
                TokKind::LineComment | TokKind::BlockComment
            ) && comment_tail(m.lexed.text(i), "SAFETY:").is_some_and(|t| !t.is_empty())
        })
        .map(|i| m.lexed.line_col(m.lexed.toks[i].end.saturating_sub(1)).0)
        .collect();
    for si in 0..m.len() {
        if m.text(si) != "unsafe" {
            continue;
        }
        let (line, _) = m.line_col(si);
        let justified = safety_lines
            .iter()
            .any(|&sl| sl <= line && sl + 3 >= line);
        if !justified {
            push(
                out,
                m,
                rel,
                "R5",
                si,
                m.snippet(si, si + 3, 4),
                "`unsafe` without a `// SAFETY:` justification in the comment above".into(),
            );
        }
    }
    // `INVARIANT:` tags need non-empty text after the colon.
    for i in 0..m.lexed.toks.len() {
        if !matches!(
            m.lexed.toks[i].kind,
            TokKind::LineComment | TokKind::BlockComment
        ) {
            continue;
        }
        let text = m.lexed.text(i);
        if let Some(tail) = comment_tail(text, "INVARIANT:") {
            if tail.is_empty() {
                let (line, col) = m.lexed.line_col(m.lexed.toks[i].start);
                if !m.in_test_code(m.lexed.toks[i].start) && !m.allowed("R5", line) {
                    out.push(Finding {
                        rule: "R5",
                        path: rel.to_string(),
                        line,
                        col,
                        key: "empty INVARIANT:".into(),
                        message: "INVARIANT: tag with no justification; state the invariant and why it holds".into(),
                    });
                }
            }
        }
    }
}

/// If `comment` contains `tag`, the trimmed text after it (block-comment
/// closers stripped).
fn comment_tail<'a>(comment: &'a str, tag: &str) -> Option<&'a str> {
    comment
        .split_once(tag)
        .map(|(_, tail)| tail.trim_end_matches("*/").trim())
}

// ---------------------------------------------------------------- R6 --

const FINGERPRINT_FNS: &[&str] = &["grid_hash", "fault_fingerprint", "cell_key"];
const FORMAT_SINKS: &[&str] = &["write_str", "write_fmt", "to_string", "push_str"];

fn r6_fingerprint_floats(rel: &str, m: &Matcher, out: &mut Vec<Finding>) {
    for si in 0..m.len() {
        if m.text(si) != "fn" || si + 1 >= m.len() {
            continue;
        }
        let name = m.text(si + 1);
        let marked = {
            // A `// FINGERPRINT` comment run above the fn opts it in.
            let raw_idx = m.sig[si];
            let mut j = raw_idx;
            let mut found = false;
            while j > 0 {
                j -= 1;
                match m.lexed.toks[j].kind {
                    TokKind::Whitespace => continue,
                    TokKind::LineComment | TokKind::BlockComment => {
                        if m.lexed.text(j).contains("FINGERPRINT") {
                            found = true;
                        }
                        continue;
                    }
                    _ => break,
                }
            }
            found
        };
        if !FINGERPRINT_FNS.contains(&name) && !marked {
            continue;
        }
        // Parameter list and body.
        let Some(popen) = (si..m.len()).find(|&k| m.text(k) == "(") else {
            continue;
        };
        let Some(pclose) = m.matching_close(popen) else {
            continue;
        };
        let Some(bopen) = (pclose..m.len()).find(|&k| m.text(k) == "{") else {
            continue;
        };
        let Some(bclose) = m.matching_close(bopen) else {
            continue;
        };
        // Float-typed names: `name: [&][mut] f64` params and
        // `let [mut] name: f64` / `let [mut] name = <float literal>`.
        let mut float_names: Vec<&str> = Vec::new();
        for k in popen..pclose {
            if m.text(k) == ":" {
                let mut v = k + 1;
                while v < pclose && matches!(m.text(v), "&" | "mut") {
                    v += 1;
                }
                if v < pclose
                    && matches!(m.text(v), "f64" | "f32")
                    && k >= 1
                    && m.tok(k - 1).kind == TokKind::Ident
                {
                    float_names.push(m.text(k - 1));
                }
            }
        }
        for k in bopen..bclose {
            if m.text(k) != "let" {
                continue;
            }
            let mut v = k + 1;
            if v < bclose && m.text(v) == "mut" {
                v += 1;
            }
            if v >= bclose || m.tok(v).kind != TokKind::Ident {
                continue;
            }
            let name_si = v;
            if v + 2 < bclose && m.text(v + 1) == ":" && matches!(m.text(v + 2), "f64" | "f32") {
                float_names.push(m.text(name_si));
            }
            if v + 2 < bclose
                && m.text(v + 1) == "="
                && m.tok(v + 2).kind == TokKind::Num
                && is_float_literal(m.text(v + 2))
            {
                float_names.push(m.text(name_si));
            }
        }
        // Statement scan: a formatting sink consuming float evidence must
        // carry a to_bits() in the same statement.
        let mut stmt_lo = bopen + 1;
        let mut depth = 0i64;
        for k in bopen + 1..=bclose {
            match m.text(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            let stmt_ends = (m.text(k) == ";" && depth == 0) || k == bclose;
            if !stmt_ends {
                continue;
            }
            let (lo, hi) = (stmt_lo, k);
            stmt_lo = k + 1;
            let has_sink = (lo..hi).any(|s| {
                FORMAT_SINKS.contains(&m.text(s))
                    || (m.text(s) == "format" && s + 1 < hi && m.text(s + 1) == "!")
            });
            if !has_sink {
                continue;
            }
            let float_evidence = (lo..hi).find(|&s| {
                (m.tok(s).kind == TokKind::Num && is_float_literal(m.text(s)))
                    || (m.tok(s).kind == TokKind::Ident && float_names.contains(&m.text(s)))
                    || (m.tok(s).kind == TokKind::Str && {
                        let text = m.text(s);
                        // Precision specs and inline captures of known
                        // float names ("{load}", "{load:?}") count too.
                        text.contains("{:.")
                            || float_names.iter().any(|n| {
                                text.contains(&format!("{{{n}}}"))
                                    || text.contains(&format!("{{{n}:"))
                            })
                    })
            });
            let has_to_bits = (lo..hi).any(|s| m.text(s) == "to_bits");
            if let Some(ev) = float_evidence {
                if !has_to_bits {
                    push(
                        out,
                        m,
                        rel,
                        "R6",
                        ev,
                        m.snippet(lo, hi, 12),
                        format!(
                            "float value formatted into fingerprint function `{name}` without to_bits(); decimal rendering forks the grid-hash identity across platforms"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        check_file(rel, &Matcher::new(src))
    }

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/core/src/voq.rs"), Some("core"));
        assert_eq!(crate_of("src/lib.rs"), Some("fifoms"));
        assert_eq!(crate_of("README.md"), None);
    }

    #[test]
    fn r1_flags_hash_iteration_not_lookup() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\nimpl S {\n fn get(&self) -> Option<&u32> { self.m.get(&1) }\n fn bad(&self) { for (k, v) in &self.m { let _ = (k, v); } }\n fn also_bad(&self) -> Vec<u32> { self.m.keys().copied().collect() }\n}\n";
        let f = findings("crates/core/src/x.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "R1").count(), 2, "{f:?}");
    }

    #[test]
    fn r1_flags_clocks_and_unseeded_rngs() {
        let src = "fn t() -> std::time::Instant { Instant::now() }\nfn r() { let _ = thread_rng(); }\n";
        let f = findings("crates/sim/src/engine.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "R1").count(), 2, "{f:?}");
        // The self-profiler is the sanctioned wall-clock reader.
        let f = findings("crates/sim/src/profile.rs", "fn t() { Instant::now(); }");
        assert!(f.iter().all(|f| f.rule != "R1"), "{f:?}");
        // Out-of-domain crates are not checked.
        let f = findings("crates/cli/src/main.rs", "fn t() { Instant::now(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r2_accepts_preserved_arrival_and_rejects_minting() {
        let good = "fn requeue(&mut self, d: &Departure) { self.q.push_front(Packet::new(d.packet, d.arrival, d.input, dests)); }";
        assert!(findings("crates/fabric/src/faults.rs", good).is_empty());
        let bad = "fn requeue(&mut self, d: &Departure, now: Slot) { self.q.push_front(Packet::new(d.packet, now, d.input, dests)); }";
        let f = findings("crates/fabric/src/faults.rs", bad);
        assert_eq!(f.iter().filter(|f| f.rule == "R2").count(), 1, "{f:?}");
        let minted = "fn stamp() -> Slot { Timestamp::now() }";
        let f = findings("crates/core/src/voq.rs", minted);
        assert_eq!(f.iter().filter(|f| f.rule == "R2").count(), 1, "{f:?}");
    }

    #[test]
    fn r3_flags_panics_and_r10_flags_unproven_indexing() {
        let src = "fn hot(&self, q: &[u32], i: usize) -> u32 {\n debug_assert!(q[i] > 0);\n let x = q[i];\n let y = self.opt.unwrap();\n x + y\n}\n#[cfg(test)]\nmod tests { fn t(q: &[u32]) { q[0]; None::<u32>.unwrap(); } }\n";
        let f = findings("crates/core/src/scheduler.rs", src);
        let r3: Vec<_> = f.iter().filter(|f| f.rule == "R3").collect();
        assert_eq!(r3.len(), 1, "{r3:?}");
        assert!(r3[0].key.contains("unwrap"));
        // `q[i] > 0` proves non-emptiness, not the bound — R10 fires.
        let r10: Vec<_> = f.iter().filter(|f| f.rule == "R10").collect();
        assert_eq!(r10.len(), 1, "{r10:?}");
        assert!(r10[0].key.contains("[ i ]"));
    }

    #[test]
    fn r10_dominating_len_guards_discharge() {
        // assert!/debug_assert! bound in the same function.
        let src = "fn hot(q: &[u32], i: usize) -> u32 { debug_assert!(i < q.len()); q[i] }";
        assert!(findings("crates/core/src/scheduler.rs", src).is_empty());
        // `if` bound, site inside the guarded block.
        let src = "fn hot(q: &[u32], i: usize) -> u32 { if i < q.len() { q[i] } else { 0 } }";
        assert!(findings("crates/core/src/scheduler.rs", src).is_empty());
        // Reversed comparison (`len > i`) counts too.
        let src = "fn hot(q: &[u32], i: usize) -> u32 { assert!(q.len() > i); q[i] }";
        assert!(findings("crates/core/src/scheduler.rs", src).is_empty());
        // A guard over a DIFFERENT base does not discharge.
        let src = "fn hot(q: &[u32], r: &[u32], i: usize) -> u32 { debug_assert!(i < r.len()); q[i] }";
        let f = findings("crates/core/src/scheduler.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "R10").count(), 1, "{f:?}");
        // A guard in a DIFFERENT function does not dominate.
        let src = "fn a(q: &[u32], i: usize) { debug_assert!(i < q.len()); }\nfn b(q: &[u32], i: usize) -> u32 { q[i] }";
        let f = findings("crates/core/src/scheduler.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "R10").count(), 1, "{f:?}");
        // Field bases work: `self.entries[idx]` under `idx < self.entries.len()`.
        let src = "impl S { fn get(&self, idx: usize) -> u8 { assert!(idx < self.entries.len(), \"stale\"); self.entries[idx] } }";
        assert!(findings("crates/core/src/slab.rs", src).is_empty());
    }

    #[test]
    fn r10_checked_accessors_discharge() {
        // Direct accessor call in index position.
        let src = "impl S {\n fn idx(&self, a: usize, b: usize) -> usize { debug_assert!(a < self.ports && b < self.ports); a * self.ports + b }\n fn look(&self, a: usize, b: usize) -> u64 { self.last[self.idx(a, b)] }\n}";
        assert!(findings("crates/fabric/src/scoreboard.rs", src).is_empty());
        // Accessor value bound to a local first.
        let src = "impl S {\n fn idx(&self, a: usize) -> usize { debug_assert!(a < self.n); a }\n fn look(&self, a: usize) -> u64 { let k = self.idx(a); self.last[k] }\n}";
        assert!(findings("crates/fabric/src/scoreboard.rs", src).is_empty());
        // An unchecked helper does not discharge.
        let src = "impl S {\n fn idx(&self, a: usize) -> usize { a * 2 }\n fn look(&self, a: usize) -> u64 { self.last[self.idx(a)] }\n}";
        let f = findings("crates/fabric/src/scoreboard.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "R10").count(), 1, "{f:?}");
    }

    #[test]
    fn r10_allow_directive_with_reason_suppresses() {
        let src = "fn hot(q: &[u32]) -> u32 {\n // fifoms-lint: allow(R10) index bounded by the N*N grid allocation\n q[0]\n}\n";
        assert!(findings("crates/core/src/voq.rs", src).is_empty());
    }

    #[test]
    fn r5_safety_and_invariant_audit() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n// INVARIANT:\nstruct S;\n";
        let f = findings("crates/stats/src/x.rs", bad);
        assert_eq!(f.iter().filter(|f| f.rule == "R5").count(), 2, "{f:?}");
        let good = "// SAFETY: caller guarantees p is valid for reads\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n// INVARIANT: len <= cap by construction in new()\nstruct S;\n";
        assert!(findings("crates/stats/src/x.rs", good).is_empty());
    }

    #[test]
    fn r6_fingerprint_requires_to_bits() {
        let bad = "fn grid_hash(load: f64) -> u64 { let mut h = Fnv::new(); h.write_str(&format!(\"point={load}\")); h.finish() }";
        let f = findings("crates/sim/src/checkpoint.rs", bad);
        assert_eq!(f.iter().filter(|f| f.rule == "R6").count(), 1, "{f:?}");
        let good = "fn grid_hash(load: f64) -> u64 { let mut h = Fnv::new(); h.write_str(&format!(\"point={}\", load.to_bits())); h.finish() }";
        assert!(findings("crates/sim/src/checkpoint.rs", good).is_empty());
        // Non-fingerprint functions are not constrained.
        let other = "fn render(load: f64) -> String { format!(\"{load}\") }";
        assert!(findings("crates/sim/src/report.rs", other).is_empty());
    }
}
