//! The cross-file program model: every workspace file's AST, with
//! lookup by name across crate boundaries.
//!
//! The structural rules (R7/R8) reason about relationships no single
//! file shows: an `impl Switch for CheckedSwitch<S>` in
//! `crates/fabric` forwarding a trait defined in the same crate but a
//! different file, a `Checkpoint` impl in `crates/obs` covering a
//! struct declared 300 lines earlier. The model is name-keyed rather
//! than path-resolved — the workspace has no name collisions among the
//! items the rules care about, and a full resolver would be most of a
//! compiler.

use crate::ast::{FileAst, StructDef, TraitDef};
use crate::matcher::Matcher;
use crate::parser;

/// One parsed file: its workspace-relative path, retained source text
/// (spans index into its token stream) and AST.
pub struct ProgramFile {
    /// Workspace-relative path (`crates/fabric/src/switch.rs`).
    pub rel: String,
    /// The file's full source text.
    pub src: String,
    /// The parsed item-level AST.
    pub ast: FileAst,
}

impl ProgramFile {
    /// Re-lex the file for token-level scans inside item spans.
    pub fn matcher(&self) -> Matcher<'_> {
        Matcher::new(&self.src)
    }
}

/// The whole-workspace program model.
#[derive(Default)]
pub struct Program {
    /// Every parsed file, in walk order (sorted by path).
    pub files: Vec<ProgramFile>,
}

impl Program {
    /// Parse `(rel, src)` pairs into a program model.
    pub fn build(files: Vec<(String, String)>) -> Program {
        let parsed = files
            .into_iter()
            .map(|(rel, src)| {
                let ast = parser::parse(&Matcher::new(&src));
                ProgramFile { rel, src, ast }
            })
            .collect();
        Program { files: parsed }
    }

    /// Add one pre-read file to the model.
    pub fn push(&mut self, rel: String, src: String) {
        let ast = parser::parse(&Matcher::new(&src));
        self.files.push(ProgramFile { rel, src, ast });
    }

    /// The first trait definition named `name`, with its file.
    pub fn trait_def(&self, name: &str) -> Option<(&ProgramFile, &TraitDef)> {
        self.files.iter().find_map(|f| {
            f.ast
                .traits
                .iter()
                .find(|t| t.name == name)
                .map(|t| (f, t))
        })
    }

    /// The first struct definition named `name`, with its file.
    pub fn struct_def(&self, name: &str) -> Option<(&ProgramFile, &StructDef)> {
        self.files.iter().find_map(|f| {
            f.ast
                .structs
                .iter()
                .find(|s| s.name == name)
                .map(|s| (f, s))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_file_lookup_by_name() {
        let p = Program::build(vec![
            (
                "crates/a/src/lib.rs".into(),
                "pub trait Switch { fn go(&self) {} }".into(),
            ),
            (
                "crates/b/src/wrap.rs".into(),
                "pub struct W<S> { inner: S }\nimpl<S: Switch> Switch for W<S> { fn go(&self) { self.inner.go() } }".into(),
            ),
        ]);
        let (tf, t) = p.trait_def("Switch").expect("trait found");
        assert_eq!(tf.rel, "crates/a/src/lib.rs");
        assert_eq!(t.methods.len(), 1);
        let (sf, s) = p.struct_def("W").expect("struct found");
        assert_eq!(sf.rel, "crates/b/src/wrap.rs");
        assert_eq!(s.fields[0].name, "inner");
        assert!(p.trait_def("Nope").is_none());
    }
}
