//! The structural disciplines R7–R9, run over the cross-file
//! [`Program`] model rather than single token streams.
//!
//! * **R7 wrapper-forwarding completeness** — any `impl T for W` where
//!   `W` wraps an inner `T` (an impl generic parameter bounded by `T`
//!   appearing in the self type or a field type) must override *and
//!   delegate* every trait method that has a default body. A missed
//!   override silently runs the trait's no-op default on the wrapper
//!   while the wrapped switch's state goes undrained — the exact bug
//!   class PRs 6–9 hand-threaded across four wrappers per hook.
//! * **R8 checkpoint field coverage** — every `impl Checkpoint` must
//!   reference each field of its struct in both `write_state` and
//!   `read_state`, unless the field's type is a generic parameter (the
//!   wrapped inner switch travels in its own frame) or a comment inside
//!   the impl names the field (the documented-exclusion convention:
//!   serialize it or say why not). A fingerprint of the field list is
//!   registered in `lint-state-fingerprints.json`; changing the fields
//!   without bumping `state_version` is an error the manifest refuses
//!   to paper over.
//! * **R9 schema drift** — derived event schemas must stay in lock-step
//!   with their emitters in *both* directions: the timeseries schema's
//!   `event` enum equals the set of kinds the telemetry layer
//!   constructs, and every derived schema's `schema` id constant is a
//!   string the obs crate actually emits.

use fifoms_obs::Json;

use crate::ast::{ImplDef, ImplMethod, Span};
use crate::lexer::TokKind;
use crate::matcher::Matcher;
use crate::model::Program;
use crate::rules::Finding;

/// Whether `word` occurs in `text` delimited by non-identifier chars.
fn mentions_word(text: &str, word: &str) -> bool {
    if word.is_empty() {
        return false;
    }
    let mut from = 0;
    while let Some(i) = text[from..].find(word) {
        let at = from + i;
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= text.len()
            || !text[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = after;
    }
    false
}

/// Whether the body span mentions `name` as an identifier token.
fn body_mentions(m: &Matcher, body: &Span, name: &str) -> bool {
    (body.lo..body.hi.min(m.len()))
        .any(|si| m.tok(si).kind == TokKind::Ident && m.text(si) == name)
}

/// Whether the body span contains `. name` — the delegation signature
/// (`self.inner.name(...)`, `(**self).name(...)`).
fn body_delegates(m: &Matcher, body: &Span, name: &str) -> bool {
    (body.lo..body.hi.min(m.len()).saturating_sub(1))
        .any(|si| m.text(si) == "." && m.text(si + 1) == name)
}

/// Delegation evidence with one hop through same-type helpers: the
/// method body either contains `. dm (` directly, or calls
/// `self.helper(..)` where `helper` — defined in any impl block for the
/// same self type in the same file — contains it (the
/// `absorb_inner_drops` pattern: the wrapper drains the inner switch
/// inside a shared bookkeeping helper).
fn delegates(m: &Matcher, file: &crate::model::ProgramFile, imp: &ImplDef, body: &Span, dm: &str) -> bool {
    if body_delegates(m, body, dm) {
        return true;
    }
    let hi = body.hi.min(m.len());
    for si in body.lo..hi.saturating_sub(3) {
        if m.text(si) != "self"
            || m.text(si + 1) != "."
            || m.tok(si + 2).kind != TokKind::Ident
            || m.text(si + 3) != "("
        {
            continue;
        }
        let helper = m.text(si + 2);
        if helper == dm {
            continue;
        }
        let found = file
            .ast
            .impls
            .iter()
            .filter(|other| other.self_ty_name == imp.self_ty_name)
            .filter_map(|other| other.method(helper))
            .any(|hm| body_delegates(m, &hm.body, dm));
        if found {
            return true;
        }
    }
    false
}

/// Push a finding unless an allow directive suppresses it.
#[allow(clippy::too_many_arguments)]
fn push(
    out: &mut Vec<Finding>,
    m: &Matcher,
    rel: &str,
    rule: &'static str,
    line: usize,
    key: String,
    message: String,
) {
    if m.allowed(rule, line) {
        return;
    }
    out.push(Finding {
        rule,
        path: rel.to_string(),
        line,
        col: 1,
        key,
        message,
    });
}

// ---------------------------------------------------------------- R7 --

/// An impl is a *wrapper* of `trait_name` when one of its generic
/// parameters is bounded by that trait and the parameter appears in the
/// self type (`Box<T>`) or in a field type of the resolved struct
/// (`CheckedSwitch<S> { inner: S, .. }`).
fn is_wrapper(program: &Program, imp: &ImplDef, trait_name: &str) -> bool {
    let Some(param) = imp.param_bounded_by(trait_name) else {
        return false;
    };
    if imp
        .self_ty
        .split_whitespace()
        .any(|w| w == param.name)
    {
        return true;
    }
    program
        .struct_def(&imp.self_ty_name)
        .is_some_and(|(_, s)| {
            s.fields
                .iter()
                .any(|f| f.ty.split_whitespace().any(|w| w == param.name))
        })
}

/// R7: every default-bodied method of a workspace trait must be
/// overridden and delegated by every wrapper impl of that trait.
pub fn r7_wrapper_forwarding(program: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    // Collect (trait name, default-bodied method names) pairs first so
    // the borrow of `program` is released before the impl walk.
    let traits: Vec<(String, Vec<String>)> = program
        .files
        .iter()
        .flat_map(|f| f.ast.traits.iter())
        .map(|t| {
            (
                t.name.clone(),
                t.methods
                    .iter()
                    .filter(|m| m.has_default_body)
                    .map(|m| m.name.clone())
                    .collect::<Vec<_>>(),
            )
        })
        .filter(|(_, defaulted)| !defaulted.is_empty())
        .collect();
    for file in &program.files {
        if file.ast.impls.iter().all(|i| i.test_only || i.trait_name.is_none()) {
            continue;
        }
        let m = file.matcher();
        for imp in &file.ast.impls {
            if imp.test_only {
                continue;
            }
            let Some(tn) = imp.trait_name.as_deref() else {
                continue;
            };
            let Some((_, defaulted)) = traits.iter().find(|(name, _)| name == tn) else {
                continue;
            };
            if !is_wrapper(program, imp, tn) {
                continue;
            }
            for dm in defaulted {
                match imp.method(dm) {
                    None => push(
                        &mut out,
                        &m,
                        &file.rel,
                        "R7",
                        imp.line,
                        format!("missing-forward {dm}"),
                        format!(
                            "wrapper `{}` does not override default-bodied `{tn}::{dm}`; \
                             the trait's no-op default swallows the wrapped switch's behavior — forward it",
                            imp.self_ty
                        ),
                    ),
                    Some(method) => {
                        if !delegates(&m, file, imp, &method.body, dm) {
                            push(
                                &mut out,
                                &m,
                                &file.rel,
                                "R7",
                                method.line,
                                format!("no-delegate {dm}"),
                                format!(
                                    "wrapper `{}` overrides `{tn}::{dm}` but never calls `.{dm}(..)` \
                                     on the wrapped value; the inner switch's hook is silently dropped",
                                    imp.self_ty
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------- R8 --

/// One `impl Checkpoint` as the manifest sees it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StateEntry {
    /// The `state_kind()` tag (`"fifoms-core"`).
    pub kind: String,
    /// The declared `state_version()` (trait default 1 when absent).
    pub version: u64,
    /// FNV-1a 64 hex fingerprint over the ordered `(name, type)` field
    /// list of the checkpointed struct.
    pub fingerprint: String,
    /// The struct the impl checkpoints.
    pub struct_name: String,
    /// File and line of the impl, for finding anchors.
    pub rel: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
}

/// FNV-1a 64 over `bytes`, as a 16-digit hex string.
fn fnv1a_hex(parts: &[(&str, &str)]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (name, ty) in parts {
        eat(name.as_bytes());
        eat(b":");
        eat(ty.as_bytes());
        eat(b";");
    }
    format!("{h:016x}")
}

/// The first string literal inside the body of `method`, unquoted.
fn first_str(m: &Matcher, method: &ImplMethod) -> Option<String> {
    (method.body.lo..method.body.hi.min(m.len()))
        .find(|&si| m.tok(si).kind == TokKind::Str)
        .map(|si| m.text(si).trim_matches('"').to_string())
}

/// The first integer literal inside the body of `method`.
fn first_num(m: &Matcher, method: &ImplMethod) -> Option<u64> {
    (method.body.lo..method.body.hi.min(m.len()))
        .find(|&si| m.tok(si).kind == TokKind::Num)
        .and_then(|si| m.text(si).replace('_', "").parse().ok())
}

/// Every non-test `impl Checkpoint` in the program, with kind, version
/// and field fingerprint. Impls whose struct or `state_kind` literal
/// cannot be resolved are skipped (nothing to fingerprint).
pub fn state_entries(program: &Program) -> Vec<StateEntry> {
    let mut out = Vec::new();
    for file in &program.files {
        if file
            .ast
            .impls
            .iter()
            .all(|i| i.test_only || i.trait_name.as_deref() != Some("Checkpoint"))
        {
            continue;
        }
        let m = file.matcher();
        for imp in &file.ast.impls {
            if imp.test_only || imp.trait_name.as_deref() != Some("Checkpoint") {
                continue;
            }
            let Some((_, st)) = program.struct_def(&imp.self_ty_name) else {
                continue;
            };
            let Some(kind) = imp.method("state_kind").and_then(|me| first_str(&m, me)) else {
                continue;
            };
            let version = imp
                .method("state_version")
                .and_then(|me| first_num(&m, me))
                .unwrap_or(1);
            let parts: Vec<(&str, &str)> = st
                .fields
                .iter()
                .map(|f| (f.name.as_str(), f.ty.as_str()))
                .collect();
            out.push(StateEntry {
                kind,
                version,
                fingerprint: fnv1a_hex(&parts),
                struct_name: st.name.clone(),
                rel: file.rel.clone(),
                line: imp.line,
            });
        }
    }
    out.sort_by(|a, b| a.kind.cmp(&b.kind));
    out
}

/// The comment text concatenated from all comments inside an impl's
/// byte span.
fn impl_comments(m: &Matcher, imp: &ImplDef) -> String {
    if imp.span.lo >= m.len() {
        return String::new();
    }
    let lo = m.tok(imp.span.lo).start;
    let hi = if imp.span.hi == 0 || imp.span.hi > m.len() {
        m.lexed.src.len()
    } else {
        m.tok(imp.span.hi - 1).end
    };
    let mut text = String::new();
    for i in 0..m.lexed.toks.len() {
        let t = &m.lexed.toks[i];
        if t.start >= lo
            && t.end <= hi
            && matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
        {
            text.push_str(m.lexed.text(i));
            text.push('\n');
        }
    }
    text
}

/// R8 (coverage half): every field of a checkpointed struct must be
/// referenced in both `write_state` and `read_state`, be typed as a
/// generic parameter, or be named in a comment inside the impl.
pub fn r8_checkpoint_coverage(program: &Program) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &program.files {
        if file
            .ast
            .impls
            .iter()
            .all(|i| i.test_only || i.trait_name.as_deref() != Some("Checkpoint"))
        {
            continue;
        }
        let m = file.matcher();
        for imp in &file.ast.impls {
            if imp.test_only || imp.trait_name.as_deref() != Some("Checkpoint") {
                continue;
            }
            let Some((_, st)) = program.struct_def(&imp.self_ty_name) else {
                continue;
            };
            let comments = impl_comments(&m, imp);
            for (dir, verb, consequence) in [
                ("write_state", "unsaved", "checkpoints silently omit it"),
                (
                    "read_state",
                    "unrestored",
                    "recovery silently diverges from the saved run",
                ),
            ] {
                let Some(method) = imp.method(dir) else {
                    continue; // required method; the compiler enforces it
                };
                for field in &st.fields {
                    if st.generics.contains(&field.ty) {
                        continue; // the wrapped inner value has its own frame
                    }
                    if mentions_word(&comments, &field.name) {
                        continue; // documented exclusion
                    }
                    if body_mentions(&m, &method.body, &field.name) {
                        continue;
                    }
                    push(
                        &mut out,
                        &m,
                        &file.rel,
                        "R8",
                        method.line,
                        format!("{verb} {}", field.name),
                        format!(
                            "`{}::{}` never references field `{}` — {consequence}; \
                             serialize it or document the exclusion in a comment inside the impl",
                            st.name, dir, field.name
                        ),
                    );
                }
            }
        }
    }
    out
}

/// R8 (drift half): compare the program's checkpoint impls against the
/// committed fingerprint manifest. `manifest` is `None` when the file
/// does not exist yet.
pub fn r8_state_drift(
    program: &Program,
    manifest_rel: &str,
    manifest: Option<&Json>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let entries = state_entries(program);
    let recorded = manifest.map(parse_manifest).unwrap_or_default();
    for e in &entries {
        let m = program
            .files
            .iter()
            .find(|f| f.rel == e.rel)
            .map(|f| f.matcher());
        let allowed = m.as_ref().is_some_and(|m| m.allowed("R8", e.line));
        if allowed {
            continue;
        }
        match recorded.iter().find(|(k, _, _)| k == &e.kind) {
            None => out.push(Finding {
                rule: "R8",
                path: e.rel.clone(),
                line: e.line,
                col: 1,
                key: format!("unregistered {}", e.kind),
                message: format!(
                    "checkpoint state kind \"{}\" is not registered in {manifest_rel}; \
                     run `fifoms-repro lint --write-baseline` to register it",
                    e.kind
                ),
            }),
            Some((_, mv, mf)) => {
                if *mv == e.version && *mf != e.fingerprint {
                    out.push(Finding {
                        rule: "R8",
                        path: e.rel.clone(),
                        line: e.line,
                        col: 1,
                        key: format!("fingerprint-drift {}", e.kind),
                        message: format!(
                            "checkpointed fields of `{}` changed but state_version is still {}; \
                             old \"{}\" checkpoints would be misread — bump state_version, then \
                             re-run --write-baseline",
                            e.struct_name, e.version, e.kind
                        ),
                    });
                } else if *mv != e.version {
                    out.push(Finding {
                        rule: "R8",
                        path: e.rel.clone(),
                        line: e.line,
                        col: 1,
                        key: format!("version-drift {}", e.kind),
                        message: format!(
                            "state_version of \"{}\" is {} but {manifest_rel} records {}; \
                             run --write-baseline to re-register the new version",
                            e.kind, e.version, mv
                        ),
                    });
                }
            }
        }
    }
    for (kind, _, _) in &recorded {
        if !entries.iter().any(|e| &e.kind == kind) {
            out.push(Finding {
                rule: "R8",
                path: manifest_rel.to_string(),
                line: 1,
                col: 1,
                key: format!("retired {kind}"),
                message: format!(
                    "{manifest_rel} registers \"{kind}\" but no Checkpoint impl produces it; \
                     run --write-baseline to drop the dead entry"
                ),
            });
        }
    }
    out
}

/// `(kind, version, fingerprint)` rows of a parsed manifest document.
fn parse_manifest(doc: &Json) -> Vec<(String, u64, String)> {
    doc.get("entries")
        .and_then(Json::as_arr)
        .map(|entries| {
            entries
                .iter()
                .filter_map(|e| {
                    let kind = e.get("kind").and_then(Json::as_str)?;
                    let version = e.get("state_version").and_then(Json::as_f64)?;
                    let fp = e.get("fingerprint").and_then(Json::as_str)?;
                    Some((kind.to_string(), version as u64, fp.to_string()))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Render the fingerprint manifest (`fifoms-lint-state-v1`), one entry
/// per line. The manifest is itself a ratchet: an old entry whose
/// fingerprint changed at an *unchanged* version is kept as-is, so
/// `--write-baseline` cannot silently bless a field change that skipped
/// the version bump — the only ways out are bumping `state_version` or
/// reverting the fields.
pub fn render_state_manifest(entries: &[StateEntry], old: Option<&Json>) -> String {
    let recorded = old.map(parse_manifest).unwrap_or_default();
    let mut rows: Vec<(String, u64, String)> = entries
        .iter()
        .map(|e| {
            match recorded.iter().find(|(k, _, _)| k == &e.kind) {
                Some((_, mv, mf)) if *mv == e.version && *mf != e.fingerprint => {
                    (e.kind.clone(), *mv, mf.clone()) // refused: bump the version
                }
                _ => (e.kind.clone(), e.version, e.fingerprint.clone()),
            }
        })
        .collect();
    rows.sort();
    let mut out =
        String::from("{\n  \"schema\": \"fifoms-lint-state-v1\",\n  \"entries\": [\n");
    for (i, (kind, version, fp)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"kind\": {}, \"state_version\": {version}, \"fingerprint\": {}}}{comma}\n",
            Json::Str(kind.clone()),
            Json::Str(fp.clone()),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------- R9 --

/// The `ObsEvent` variant → kind-string map, from the `fn kind` match
/// arms of the vocabulary source (`ObsEvent::WindowMeta { .. } =>
/// "window_meta"`).
fn variant_kind_map(obs_src: &str) -> Vec<(String, String)> {
    let m = Matcher::new(obs_src);
    let mut map = Vec::new();
    for si in 0..m.len() {
        if m.text(si) != "fn" || si + 1 >= m.len() || m.text(si + 1) != "kind" {
            continue;
        }
        let mut depth = 0i64;
        let mut open = None;
        for k in si..m.len() {
            match m.text(k) {
                "(" => depth += 1,
                ")" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(k);
                    break;
                }
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = m.matching_close(open) else {
            continue;
        };
        // Arms: ObsEvent :: Variant { .. } = > "kind".
        let mut k = open + 1;
        while k + 3 < close {
            if m.text(k) == "ObsEvent" && m.text(k + 1) == ":" && m.text(k + 2) == ":" {
                let variant = m.text(k + 3).to_string();
                let mut j = k + 4;
                if j < close && m.text(j) == "{" {
                    match m.matching_close(j) {
                        Some(c) => j = c + 1,
                        None => break,
                    }
                }
                // Skip the `=` `>` arrow, then expect the kind literal.
                while j < close && matches!(m.text(j), "=" | ">") {
                    j += 1;
                }
                if j < close && m.tok(j).kind == TokKind::Str {
                    map.push((variant, m.text(j).trim_matches('"').to_string()));
                }
                k = j + 1;
                continue;
            }
            k += 1;
        }
    }
    map
}

/// `ObsEvent` variants *constructed* (not pattern-matched) in non-test
/// code of `src`, with their lines. A variant use followed by `=` after
/// its brace group is a pattern (`=> arm` or `if let ... =`); anything
/// else is a construction.
fn constructed_variants(src: &str) -> Vec<(String, usize)> {
    let m = Matcher::new(src);
    let mut out = Vec::new();
    for si in 0..m.len().saturating_sub(3) {
        if m.text(si) != "ObsEvent" || m.text(si + 1) != ":" || m.text(si + 2) != ":" {
            continue;
        }
        if m.in_test_code(m.tok(si).start) {
            continue;
        }
        let variant = m.text(si + 3);
        if m.tok(si + 3).kind != TokKind::Ident {
            continue;
        }
        let mut j = si + 4;
        if j < m.len() && m.text(j) == "{" {
            match m.matching_close(j) {
                Some(c) => j = c + 1,
                None => continue,
            }
        }
        if j < m.len() && m.text(j) == "=" {
            continue; // match arm or `if let` binding: a pattern
        }
        let (line, _) = m.line_col(si);
        out.push((variant.to_string(), line));
    }
    out
}

/// The `properties.schema.enum` id of a schema document, if declared.
fn schema_id(schema: &Json) -> Option<String> {
    schema
        .get("properties")
        .and_then(|p| p.get("schema"))
        .and_then(|s| s.get("enum"))
        .and_then(Json::as_arr)
        .and_then(|vals| vals.first())
        .and_then(Json::as_str)
        .map(str::to_string)
}

/// R9: bidirectional drift check between the telemetry emitter and the
/// timeseries schema, plus schema-id liveness for every derived schema.
///
/// * `obs_src` — the `ObsEvent` vocabulary source (variant → kind map);
/// * `telemetry` — `(rel, src)` of the telemetry layer whose
///   constructed events make up the timeseries stream;
/// * `timeseries` — `(rel, parsed schema)` of the stream's schema;
/// * `derived` — `(rel, parsed schema)` of every derived schema whose
///   `schema` id constant must be emitted somewhere in `emitter_srcs`.
pub fn r9_schema_drift(
    obs_src: &str,
    telemetry: (&str, &str),
    timeseries: (&str, &Json),
    derived: &[(&str, &Json)],
    emitter_srcs: &[(String, String)],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let kind_of = variant_kind_map(obs_src);
    let (tele_rel, tele_src) = telemetry;
    let (ts_rel, ts_schema) = timeseries;
    let enum_kinds = crate::rules::schema_event_enum(ts_schema);
    if enum_kinds.is_empty() {
        out.push(Finding {
            rule: "R9",
            path: ts_rel.to_string(),
            line: 1,
            col: 1,
            key: "missing-event-enum".into(),
            message: format!("{ts_rel} declares no properties.event.enum vocabulary"),
        });
    } else {
        let emitted: Vec<(String, usize)> = constructed_variants(tele_src)
            .into_iter()
            .filter_map(|(variant, line)| {
                kind_of
                    .iter()
                    .find(|(v, _)| *v == variant)
                    .map(|(_, kind)| (kind.clone(), line))
            })
            .collect();
        for (kind, line) in &emitted {
            if !enum_kinds.iter().any(|k| k == kind) {
                out.push(Finding {
                    rule: "R9",
                    path: tele_rel.to_string(),
                    line: *line,
                    col: 1,
                    key: format!("emit-only {kind}"),
                    message: format!(
                        "telemetry emits \"{kind}\" into the timeseries stream but {ts_rel} \
                         does not admit it; stream consumers reject valid records"
                    ),
                });
            }
        }
        for kind in &enum_kinds {
            if !emitted.iter().any(|(k, _)| k == kind) {
                out.push(Finding {
                    rule: "R9",
                    path: ts_rel.to_string(),
                    line: 1,
                    col: 1,
                    key: format!("schema-only {kind}"),
                    message: format!(
                        "{ts_rel} admits \"{kind}\" but the telemetry layer never constructs \
                         it; dead vocabulary"
                    ),
                });
            }
        }
    }
    for (rel, schema) in derived {
        let Some(id) = schema_id(schema) else { continue };
        let live = emitter_srcs.iter().any(|(_, src)| {
            let m = Matcher::new(src);
            (0..m.len()).any(|si| {
                m.tok(si).kind == TokKind::Str
                    && m.text(si).trim_matches('"') == id
                    && !m.in_test_code(m.tok(si).start)
            })
        });
        if !live {
            out.push(Finding {
                rule: "R9",
                path: rel.to_string(),
                line: 1,
                col: 1,
                key: format!("dead-schema-id {id}"),
                message: format!(
                    "{rel} declares schema id \"{id}\" but no emitting source produces that \
                     literal; the schema validates nothing"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAIT: &str = "pub trait Switch {\n fn name(&self) -> String;\n fn drain_spans(&mut self, out: &mut Vec<u8>) { let _ = out; }\n fn recycle(&mut self, x: u8) { let _ = x; }\n}";

    fn program(files: &[(&str, &str)]) -> Program {
        Program::build(
            files
                .iter()
                .map(|(r, s)| (r.to_string(), s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn r7_flags_missing_forward_and_non_delegating_override() {
        let wrapper = "pub struct W<S> { inner: S }\nimpl<S: Switch> Switch for W<S> {\n fn name(&self) -> String { self.inner.name() }\n fn drain_spans(&mut self, out: &mut Vec<u8>) { let _ = out; }\n}";
        let p = program(&[
            ("crates/fabric/src/switch.rs", TRAIT),
            ("crates/fabric/src/wrap.rs", wrapper),
        ]);
        let f = r7_wrapper_forwarding(&p);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.key == "missing-forward recycle"));
        assert!(f.iter().any(|x| x.key == "no-delegate drain_spans"));
    }

    #[test]
    fn r7_accepts_complete_wrappers_and_skips_plain_impls() {
        let good = "pub struct W<S> { inner: S }\nimpl<S: Switch> Switch for W<S> {\n fn name(&self) -> String { self.inner.name() }\n fn drain_spans(&mut self, out: &mut Vec<u8>) { self.inner.drain_spans(out) }\n fn recycle(&mut self, x: u8) { self.inner.recycle(x) }\n}\nimpl<T: Switch + ?Sized> Switch for Box<T> {\n fn name(&self) -> String { (**self).name() }\n fn drain_spans(&mut self, out: &mut Vec<u8>) { (**self).drain_spans(out) }\n fn recycle(&mut self, x: u8) { (**self).recycle(x) }\n}\npub struct Plain { q: u8 }\nimpl Switch for Plain {\n fn name(&self) -> String { String::new() }\n}";
        let p = program(&[
            ("crates/fabric/src/switch.rs", TRAIT),
            ("crates/fabric/src/wrap.rs", good),
        ]);
        let f = r7_wrapper_forwarding(&p);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r7_accepts_delegation_through_same_type_helpers() {
        let src = "pub struct W<S> { inner: S, buf: Vec<u8> }\nimpl<S: Switch> W<S> {\n fn absorb(&mut self) { let mut d = Vec::new(); self.inner.drain_spans(&mut d); self.buf.extend(d); }\n}\nimpl<S: Switch> Switch for W<S> {\n fn name(&self) -> String { self.inner.name() }\n fn drain_spans(&mut self, out: &mut Vec<u8>) { self.absorb(); out.append(&mut self.buf); }\n fn recycle(&mut self, x: u8) { self.inner.recycle(x) }\n}";
        let p = program(&[
            ("crates/fabric/src/switch.rs", TRAIT),
            ("crates/fabric/src/wrap.rs", src),
        ]);
        let f = r7_wrapper_forwarding(&p);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r7_skips_test_only_impls() {
        let toy = "#[cfg(test)]\nmod tests {\n struct Toy<S> { inner: S }\n impl<S: Switch> Switch for Toy<S> {\n  fn name(&self) -> String { String::new() }\n }\n}";
        let p = program(&[
            ("crates/fabric/src/switch.rs", TRAIT),
            ("crates/fabric/src/toy.rs", toy),
        ]);
        assert!(r7_wrapper_forwarding(&p).is_empty());
    }

    const CKPT: &str = "pub struct S { a: u32, b: u64, cap: usize }\nimpl Checkpoint for S {\n fn state_kind(&self) -> &'static str { \"s\" }\n fn state_version(&self) -> u32 { 2 }\n fn write_state(&self, w: &mut W) { w.u32(self.a); w.u64(self.b); }\n fn read_state(&mut self, r: &mut R) { self.a = r.u32(); self.b = r.u64(); }\n}";

    #[test]
    fn r8_flags_uncovered_fields_in_both_directions() {
        let p = program(&[("crates/core/src/s.rs", CKPT)]);
        let f = r8_checkpoint_coverage(&p);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.key == "unsaved cap"));
        assert!(f.iter().any(|x| x.key == "unrestored cap"));
    }

    #[test]
    fn r8_comment_mention_and_generic_fields_are_exempt() {
        let src = "pub struct S<T> { inner: T, a: u32, cap: usize }\nimpl<T> Checkpoint for S<T> {\n fn state_kind(&self) -> &'static str { \"s\" }\n // cap is configuration, rebuilt by the constructor\n fn write_state(&self, w: &mut W) { w.u32(self.a); }\n fn read_state(&mut self, r: &mut R) { self.a = r.u32(); }\n}";
        let p = program(&[("crates/core/src/s.rs", src)]);
        let f = r8_checkpoint_coverage(&p);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r8_word_boundaries_prevent_substring_exemption() {
        assert!(mentions_word("n, p and b are configuration", "p"));
        assert!(!mentions_word("capacity is configuration", "cap"));
        assert!(!mentions_word("the ports field", "port"));
        assert!(mentions_word("`ring_cap` is sizing", "ring_cap"));
    }

    #[test]
    fn r8_drift_detects_fingerprint_change_without_version_bump() {
        let p = program(&[("crates/core/src/s.rs", CKPT)]);
        let entries = state_entries(&p);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kind, "s");
        assert_eq!(entries[0].version, 2);

        // No manifest at all: unregistered.
        let f = r8_state_drift(&p, "lint-state-fingerprints.json", None);
        assert!(f.iter().any(|x| x.key == "unregistered s"), "{f:?}");

        // Matching manifest: clean.
        let manifest = render_state_manifest(&entries, None);
        let doc = Json::parse(&manifest).expect("manifest parses");
        assert!(r8_state_drift(&p, "m.json", Some(&doc)).is_empty());

        // Same version, different fingerprint: drift.
        let tampered = manifest.replace(&entries[0].fingerprint, "0000000000000000");
        let doc = Json::parse(&tampered).expect("parses");
        let f = r8_state_drift(&p, "m.json", Some(&doc));
        assert!(f.iter().any(|x| x.key == "fingerprint-drift s"), "{f:?}");

        // The manifest ratchet refuses to re-bless at the same version.
        let rewritten = render_state_manifest(&entries, Some(&doc));
        assert!(
            rewritten.contains("0000000000000000"),
            "same-version fingerprint change must not be silently re-registered"
        );

        // Version bumped in code: the manifest regenerates cleanly.
        let bumped = CKPT.replace("{ 2 }", "{ 3 }");
        let p2 = program(&[("crates/core/src/s.rs", &bumped)]);
        let e2 = state_entries(&p2);
        let f = r8_state_drift(&p2, "m.json", Some(&doc));
        assert!(f.iter().any(|x| x.key == "version-drift s"), "{f:?}");
        let refreshed = render_state_manifest(&e2, Some(&doc));
        assert!(refreshed.contains("\"state_version\": 3"));
    }

    #[test]
    fn r8_retired_kinds_are_reported() {
        let p = program(&[("crates/core/src/s.rs", CKPT)]);
        let doc = Json::parse(
            "{\"schema\":\"fifoms-lint-state-v1\",\"entries\":[{\"kind\":\"s\",\"state_version\":2,\"fingerprint\":\"x\"},{\"kind\":\"gone\",\"state_version\":1,\"fingerprint\":\"y\"}]}",
        )
        .expect("parses");
        let f = r8_state_drift(&p, "m.json", Some(&doc));
        assert!(f.iter().any(|x| x.key == "retired gone"), "{f:?}");
    }

    const OBS: &str = "impl ObsEvent { pub fn kind(&self) -> &'static str { match self { ObsEvent::WindowMeta { .. } => \"window_meta\", ObsEvent::WindowSummary { .. } => \"window_summary\", ObsEvent::RunEnd { .. } => \"run_end\" } } }";

    #[test]
    fn r9_bidirectional_timeseries_check() {
        let tele = "fn meta(&self) -> ObsEvent { ObsEvent::WindowMeta { ports: self.ports } }\nfn fold(&mut self, ev: &ObsEvent) { match ev { ObsEvent::RunEnd { .. } => {} _ => {} } }";
        let schema =
            Json::parse("{\"properties\":{\"event\":{\"enum\":[\"window_meta\",\"window_summary\"]}}}")
                .expect("parses");
        let f = r9_schema_drift(
            OBS,
            ("crates/obs/src/telemetry.rs", tele),
            ("schemas/timeseries.schema.json", &schema),
            &[],
            &[],
        );
        // window_summary is admitted but never constructed; the matched
        // (not constructed) RunEnd must NOT count as emitted.
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].key, "schema-only window_summary");

        let tele_full = "fn meta(&self) -> ObsEvent { ObsEvent::WindowMeta { ports: 1 } }\nfn close(&self) -> ObsEvent { ObsEvent::WindowSummary { slots: 1 } }";
        let f = r9_schema_drift(
            OBS,
            ("crates/obs/src/telemetry.rs", tele_full),
            ("schemas/timeseries.schema.json", &schema),
            &[],
            &[],
        );
        assert!(f.is_empty(), "{f:?}");

        let tele_extra = "fn meta(&self) -> ObsEvent { ObsEvent::WindowMeta { ports: 1 } }\nfn close(&self) -> ObsEvent { ObsEvent::WindowSummary { slots: 1 } }\nfn leak(&self) -> ObsEvent { ObsEvent::RunEnd { slots_run: 1 } }";
        let f = r9_schema_drift(
            OBS,
            ("crates/obs/src/telemetry.rs", tele_extra),
            ("schemas/timeseries.schema.json", &schema),
            &[],
            &[],
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].key, "emit-only run_end");
    }

    #[test]
    fn r9_dead_schema_id_is_flagged() {
        let snap = Json::parse(
            "{\"properties\":{\"schema\":{\"enum\":[\"fifoms-telemetry-snapshot-v1\"]}}}",
        )
        .expect("parses");
        let ts = Json::parse("{\"properties\":{\"event\":{\"enum\":[]}}}").expect("parses");
        let live = vec![(
            "crates/obs/src/t.rs".to_string(),
            "fn publish(&self) { doc.set(\"schema\", \"fifoms-telemetry-snapshot-v1\"); }"
                .to_string(),
        )];
        let f = r9_schema_drift(
            OBS,
            ("t.rs", ""),
            ("ts.json", &ts),
            &[("schemas/snapshot.schema.json", &snap)],
            &live,
        );
        assert!(
            !f.iter().any(|x| x.key.starts_with("dead-schema-id")),
            "{f:?}"
        );
        let f = r9_schema_drift(OBS, ("t.rs", ""), ("ts.json", &ts), &[("schemas/snapshot.schema.json", &snap)], &[]);
        assert!(f.iter().any(|x| x.key == "dead-schema-id fifoms-telemetry-snapshot-v1"));
    }
}
