//! Workspace walking, baseline gating and report assembly.
//!
//! The walker scans the workspace's own source — the root `src/` and
//! every `crates/*/src/` — in sorted order (so the report itself is
//! deterministic), skipping `target/`, `vendor/` (offline stand-ins, not
//! ours to lint), `tests/` and `benches/` (test-only by construction).
//!
//! Gating follows the ratchet model: a checked-in baseline file
//! grandfathers known findings by `(rule, path, key)` with a count;
//! anything beyond the baseline fails the run, anything below it is a
//! celebrated shrink (and `--write-baseline` re-tightens the file).
//! Keys are reformat-stable token snippets, so line drift does not churn
//! the baseline.

use std::fs;
use std::path::{Path, PathBuf};

use fifoms_obs::Json;

use crate::matcher::Matcher;
use crate::model::Program;
use crate::rules::{check_file, check_vocabulary, Finding, RULES};
use crate::structural;

/// Workspace-relative path of the checkpoint fingerprint manifest the
/// R8 drift check reads and `--write-baseline` regenerates.
pub const STATE_MANIFEST_REL: &str = "lint-state-fingerprints.json";

/// The outcome of linting a workspace.
pub struct Report {
    /// Every finding, sorted by `(path, line, col, rule)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The regenerated checkpoint fingerprint manifest
    /// (`fifoms-lint-state-v1`), ratchet-merged against the committed
    /// one — what `--write-baseline` writes to [`STATE_MANIFEST_REL`].
    pub state_manifest: String,
}

/// A `(rule, path, key) -> count` aggregation of findings.
pub type KeyCounts = Vec<((String, String, String), usize)>;

/// The result of comparing a report against a baseline.
pub struct Gate {
    /// Findings not covered by the baseline — these fail the run.
    pub new: Vec<Finding>,
    /// Findings covered (grandfathered) by the baseline.
    pub baselined: usize,
    /// Baseline entries whose count shrank or vanished: progress.
    pub stale: Vec<(String, String, String, usize, usize)>,
}

/// Lint the workspace rooted at `root`.
pub fn lint_root(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<PathBuf> = fs::read_dir(&crates)
            .map_err(|e| format!("{}: {e}", crates.display()))?
            .filter_map(|entry| entry.ok().map(|d| d.path()))
            .collect();
        names.sort();
        for krate in names {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();

    // Read everything once: the per-file rules and the cross-file
    // program model both run over the same contents.
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &files {
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        sources.push((rel_of(root, path), text));
    }

    let mut findings = Vec::new();
    for (rel, text) in &sources {
        let m = Matcher::new(text);
        findings.extend(check_file(rel, &m));
    }

    // The structural rules run over the whole-workspace program model.
    let program = Program::build(sources.clone());
    findings.extend(structural::r7_wrapper_forwarding(&program));
    findings.extend(structural::r8_checkpoint_coverage(&program));
    let manifest_path = root.join(STATE_MANIFEST_REL);
    let old_manifest = if manifest_path.is_file() {
        let text = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
        Some(
            Json::parse(&text).map_err(|e| format!("{}: {e}", manifest_path.display()))?,
        )
    } else {
        None
    };
    findings.extend(structural::r8_state_drift(
        &program,
        STATE_MANIFEST_REL,
        old_manifest.as_ref(),
    ));
    let state_manifest =
        structural::render_state_manifest(&structural::state_entries(&program), old_manifest.as_ref());

    // R4: event vocabulary, when both sides exist.
    let obs_rel = "crates/types/src/obs.rs";
    let schema_path = root.join("schemas/events.schema.json");
    let obs_src = sources
        .iter()
        .find(|(rel, _)| rel == obs_rel)
        .map(|(_, src)| src.clone());
    if let (Some(obs_src), true) = (&obs_src, schema_path.is_file()) {
        let schema_text = fs::read_to_string(&schema_path)
            .map_err(|e| format!("{}: {e}", schema_path.display()))?;
        let schema = Json::parse(&schema_text)
            .map_err(|e| format!("{}: {e}", schema_path.display()))?;
        findings.extend(check_vocabulary(
            obs_rel,
            obs_src,
            "schemas/events.schema.json",
            &schema,
        ));
    }

    // R9: derived schemas vs their emitters, when all parts exist.
    let tele_rel = "crates/obs/src/telemetry.rs";
    let tele_src = sources.iter().find(|(rel, _)| rel == tele_rel);
    let read_schema = |rel: &str| -> Result<Option<Json>, String> {
        let path = root.join(rel);
        if !path.is_file() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        Json::parse(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    };
    let ts_schema = read_schema("schemas/timeseries.schema.json")?;
    let snap_schema = read_schema("schemas/snapshot.schema.json")?;
    if let (Some(obs_src), Some((_, tele_src)), Some(ts)) = (&obs_src, tele_src, &ts_schema) {
        let obs_sources: Vec<(String, String)> = sources
            .iter()
            .filter(|(rel, _)| rel.starts_with("crates/obs/"))
            .cloned()
            .collect();
        let mut derived: Vec<(&str, &Json)> = vec![("schemas/timeseries.schema.json", ts)];
        if let Some(snap) = &snap_schema {
            derived.push(("schemas/snapshot.schema.json", snap));
        }
        findings.extend(structural::r9_schema_drift(
            obs_src,
            (tele_rel, tele_src),
            ("schemas/timeseries.schema.json", ts),
            &derived,
            &obs_sources,
        ));
    }

    findings.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
    });
    Ok(Report {
        findings,
        files_scanned: files.len(),
        state_manifest,
    })
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|d| d.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | "vendor" | "tests" | "benches" | "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Aggregate findings into `(rule, path, key) -> count`, sorted.
pub fn key_counts(findings: &[Finding]) -> KeyCounts {
    let mut counts: KeyCounts = Vec::new();
    for f in findings {
        let key = (f.rule.to_string(), f.path.clone(), f.key.clone());
        match counts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => *n += 1,
            None => counts.push((key, 1)),
        }
    }
    counts.sort();
    counts
}

/// Compare a report against baseline key counts. Within one `(rule,
/// path, key)` bucket the first `allowed` occurrences (in report order)
/// are grandfathered and the rest are new.
pub fn gate(report: &Report, baseline: &KeyCounts) -> Gate {
    let mut used: Vec<((String, String, String), usize)> = Vec::new();
    let mut new = Vec::new();
    let mut baselined = 0usize;
    for f in &report.findings {
        let key = (f.rule.to_string(), f.path.clone(), f.key.clone());
        let allowed = baseline
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |(_, n)| *n);
        let used_so_far = match used.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => {
                *n += 1;
                *n
            }
            None => {
                used.push((key.clone(), 1));
                1
            }
        };
        if used_so_far <= allowed {
            baselined += 1;
        } else {
            new.push(f.clone());
        }
    }
    let current = key_counts(&report.findings);
    let mut stale = Vec::new();
    for ((rule, path, key), base_n) in baseline {
        let cur_n = current
            .iter()
            .find(|((r, p, k), _)| r == rule && p == path && k == key)
            .map_or(0, |(_, n)| *n);
        if cur_n < *base_n {
            stale.push((rule.clone(), path.clone(), key.clone(), *base_n, cur_n));
        }
    }
    Gate {
        new,
        baselined,
        stale,
    }
}

/// Parse a baseline document (`fifoms-lint-baseline-v1`).
pub fn parse_baseline(text: &str) -> Result<KeyCounts, String> {
    let doc = Json::parse(text)?;
    if doc.get("schema").and_then(Json::as_str) != Some("fifoms-lint-baseline-v1") {
        return Err("baseline: expected schema \"fifoms-lint-baseline-v1\"".into());
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline: missing entries array")?;
    let mut out: KeyCounts = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let field = |name: &str| {
            e.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("baseline: entry {i} missing string {name:?}"))
        };
        let count = e
            .get("count")
            .and_then(Json::as_f64)
            .filter(|n| n.fract() == 0.0 && *n >= 1.0)
            .ok_or(format!("baseline: entry {i} needs a positive integer count"))?;
        out.push(((field("rule")?, field("path")?, field("key")?), count as usize));
    }
    out.sort();
    Ok(out)
}

/// Render key counts as a baseline document: one entry per line, so
/// baseline shrinks show up as clean one-line diffs in review.
pub fn render_baseline(counts: &KeyCounts) -> String {
    let mut out = String::from("{\n  \"schema\": \"fifoms-lint-baseline-v1\",\n  \"entries\": [\n");
    for (i, ((rule, path, key), n)) in counts.iter().enumerate() {
        let comma = if i + 1 == counts.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"key\": {}, \"count\": {n}}}{comma}\n",
            Json::Str(rule.clone()),
            Json::Str(path.clone()),
            Json::Str(key.clone()),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the machine-readable report (`fifoms-lint-v1`), marking each
/// finding as baselined or new per `gate`.
pub fn render_json(report: &Report, g: &Gate) -> Json {
    let mut doc = Json::object();
    doc.set("schema", "fifoms-lint-v1");
    doc.set("files_scanned", report.files_scanned as f64);
    doc.set("total_findings", report.findings.len() as f64);
    doc.set("new_findings", g.new.len() as f64);
    doc.set("baselined_findings", g.baselined as f64);
    doc.set("stale_baseline_entries", g.stale.len() as f64);
    let rules: Vec<Json> = RULES
        .iter()
        .map(|(id, name, discipline)| {
            let mut r = Json::object();
            r.set("id", *id);
            r.set("name", *name);
            r.set("discipline", *discipline);
            r.set(
                "findings",
                report.findings.iter().filter(|f| f.rule == *id).count() as f64,
            );
            r
        })
        .collect();
    doc.set("rules", Json::Arr(rules));
    let findings: Vec<Json> = report
        .findings
        .iter()
        .map(|f| {
            let mut j = Json::object();
            j.set("rule", f.rule);
            j.set("path", f.path.as_str());
            j.set("line", f.line as f64);
            j.set("col", f.col as f64);
            j.set("key", f.key.as_str());
            j.set("message", f.message.as_str());
            j.set("baselined", !g.new.contains(f));
            j
        })
        .collect();
    doc.set("findings", Json::Arr(findings));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, key: &str, line: usize) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            col: 1,
            key: key.into(),
            message: "m".into(),
        }
    }

    #[test]
    fn gate_splits_new_from_baselined_by_count() {
        let report = Report {
            findings: vec![
                finding("R3", "a.rs", "q [ i ]", 1),
                finding("R3", "a.rs", "q [ i ]", 9),
                finding("R1", "b.rs", "m . keys ( )", 3),
            ],
            files_scanned: 2,
            state_manifest: String::new(),
        };
        let baseline = key_counts(&[finding("R3", "a.rs", "q [ i ]", 1)]);
        let g = gate(&report, &baseline);
        assert_eq!(g.baselined, 1);
        assert_eq!(g.new.len(), 2);
        assert!(g.stale.is_empty());
    }

    #[test]
    fn gate_reports_shrinkage_as_stale() {
        let report = Report {
            findings: vec![],
            files_scanned: 1,
            state_manifest: String::new(),
        };
        let baseline = key_counts(&[finding("R3", "a.rs", "x", 1)]);
        let g = gate(&report, &baseline);
        assert!(g.new.is_empty());
        assert_eq!(g.stale.len(), 1);
        assert_eq!(g.stale[0].3, 1);
        assert_eq!(g.stale[0].4, 0);
    }

    #[test]
    fn baseline_round_trips() {
        let counts = key_counts(&[
            finding("R3", "a.rs", "q [ i ]", 1),
            finding("R3", "a.rs", "q [ i ]", 2),
            finding("R1", "b.rs", "k", 1),
        ]);
        let text = render_baseline(&counts);
        let back = parse_baseline(&text).expect("parses");
        assert_eq!(back, counts);
    }

    #[test]
    fn baseline_rejects_malformed_documents() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"schema\":\"fifoms-lint-baseline-v1\"}").is_err());
        assert!(parse_baseline(
            "{\"schema\":\"fifoms-lint-baseline-v1\",\"entries\":[{\"rule\":\"R1\"}]}"
        )
        .is_err());
        assert!(parse_baseline(
            "{\"schema\":\"fifoms-lint-baseline-v1\",\"entries\":[{\"rule\":\"R1\",\"path\":\"a\",\"key\":\"k\",\"count\":0}]}"
        )
        .is_err());
    }
}
