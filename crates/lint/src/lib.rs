//! `fifoms-lint` — workspace-aware static analysis for the FIFOMS
//! reproduction.
//!
//! The simulator's headline guarantees are *source-level disciplines*:
//! bit-identical replay when observability is off (DESIGN.md §8) assumes
//! nothing in a result-bearing crate reads a clock or iterates a hash
//! map; Theorem 1's starvation-freedom (§9) assumes no code path mints a
//! fresh arrival stamp after admission; fault-isolated sweeps (§7)
//! assume the hot path does not panic where it could return structure.
//! None of those were mechanically checked — this crate checks them, in
//! CI, on every change.
//!
//! Layers (bottom to top):
//!
//! * [`lexer`] — a hand-rolled, dependency-free Rust lexer (raw strings,
//!   nested block comments, byte/char literals, lifetimes). Total: every
//!   byte lands in a token, so lex → re-emit is byte-identical — the
//!   property the round-trip tests pin.
//! * [`matcher`] — a token-tree matcher: balanced-delimiter spans,
//!   top-level argument splitting, `#[cfg(test)]` / `debug_assert!` span
//!   exclusion, and the `// fifoms-lint: allow(Rk) reason` escape hatch.
//! * [`rules`] — the six disciplines R1–R6 (see [`rules::RULES`] and
//!   DESIGN.md §11).
//! * [`engine`] — the workspace walker, the baseline ratchet
//!   (grandfathered findings fail only when they *grow*; shrinks are
//!   celebrated), and the `fifoms-lint-v1` JSON report consumed by
//!   `schemas/lint.schema.json` validation.
//!
//! The user-facing entry point is `fifoms-repro lint` in the CLI crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod matcher;
pub mod rules;

pub use engine::{
    gate, key_counts, lint_root, parse_baseline, render_baseline, render_json, Gate, Report,
};
pub use rules::{Finding, RULES};
