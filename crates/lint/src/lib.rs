//! `fifoms-lint` — workspace-aware static analysis for the FIFOMS
//! reproduction.
//!
//! The simulator's headline guarantees are *source-level disciplines*:
//! bit-identical replay when observability is off (DESIGN.md §8) assumes
//! nothing in a result-bearing crate reads a clock or iterates a hash
//! map; Theorem 1's starvation-freedom (§9) assumes no code path mints a
//! fresh arrival stamp after admission; fault-isolated sweeps (§7)
//! assume the hot path does not panic where it could return structure.
//! None of those were mechanically checked — this crate checks them, in
//! CI, on every change.
//!
//! Layers (bottom to top):
//!
//! * [`lexer`] — a hand-rolled, dependency-free Rust lexer (raw strings,
//!   nested block comments, byte/char literals, lifetimes). Total: every
//!   byte lands in a token, so lex → re-emit is byte-identical — the
//!   property the round-trip tests pin.
//! * [`matcher`] — a token-tree matcher: balanced-delimiter spans,
//!   top-level argument splitting, `#[cfg(test)]` / `debug_assert!` span
//!   exclusion, and the `// fifoms-lint: allow(Rk) reason` escape hatch.
//! * [`parser`] + [`ast`] — a recursive-descent, total (never-panicking)
//!   item-level parser over the token stream: structs with fields,
//!   traits with default-body flags, impl blocks with per-method body
//!   spans.
//! * [`model`] — the cross-file [`model::Program`]: every workspace
//!   file's AST, with trait/struct lookup across crate boundaries.
//! * [`rules`] — the token-level disciplines (see [`rules::RULES`] and
//!   DESIGN.md §11), including the R10 guarded-index dataflow pass.
//! * [`structural`] — the program-model disciplines: R7 wrapper
//!   forwarding, R8 checkpoint field coverage + state fingerprints, R9
//!   schema drift.
//! * [`engine`] — the workspace walker, the baseline ratchet
//!   (grandfathered findings fail only when they *grow*; shrinks are
//!   celebrated), and the `fifoms-lint-v1` JSON report consumed by
//!   `schemas/lint.schema.json` validation.
//!
//! The user-facing entry point is `fifoms-repro lint` in the CLI crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod engine;
pub mod lexer;
pub mod matcher;
pub mod model;
pub mod parser;
pub mod rules;
pub mod structural;

pub use engine::{
    gate, key_counts, lint_root, parse_baseline, render_baseline, render_json, Gate, Report,
};
pub use model::Program;
pub use rules::{Finding, RULES, RULE_DOCS};
pub use structural::{render_state_manifest, state_entries, StateEntry};
