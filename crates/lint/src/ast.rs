//! The item-level AST the structural rules run on.
//!
//! [`parser`](crate::parser) produces one [`FileAst`] per source file:
//! structs with their fields, traits with their methods (and whether
//! each has a default body), and impl blocks with per-method body spans.
//! Spans are *significant-token index ranges* into the file's
//! [`Matcher`](crate::matcher::Matcher), so rules can drop back to token
//! scans inside any item without the AST having to model expressions —
//! the rules need "does this body mention field `rng`", not an
//! expression tree.
//!
//! Everything is owned (`String`, not `&str`): the cross-file
//! [`model`](crate::model) outlives the per-file lexers.

/// A half-open range `lo..hi` of significant-token indices.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    /// First significant-token index of the item.
    pub lo: usize,
    /// One past the last significant-token index.
    pub hi: usize,
}

impl Span {
    /// Whether `other` lies entirely within `self`.
    pub fn contains(&self, other: &Span) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }
}

/// One named struct field.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// The field's type as normalized token text (`Vec < u32 >`).
    pub ty: String,
    /// 1-based source line of the field name.
    pub line: usize,
}

/// A struct definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Generic parameter names (`S` for `struct W<S: Switch>`).
    pub generics: Vec<String>,
    /// Named fields, in declaration order. Tuple and unit structs have
    /// none.
    pub fields: Vec<Field>,
    /// 1-based source line of the `struct` keyword.
    pub line: usize,
    /// Significant-token span of the whole item.
    pub span: Span,
}

/// A method declared in a trait body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraitMethod {
    /// Method name.
    pub name: String,
    /// Whether the trait supplies a default body (`fn f() { ... }`
    /// rather than `fn f();`).
    pub has_default_body: bool,
    /// 1-based source line of the `fn` keyword.
    pub line: usize,
}

/// A trait definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraitDef {
    /// Trait name.
    pub name: String,
    /// Declared methods, in order.
    pub methods: Vec<TraitMethod>,
    /// 1-based source line of the `trait` keyword.
    pub line: usize,
    /// Significant-token span of the whole item.
    pub span: Span,
}

/// One generic parameter of an impl, with its inline bounds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GenericParam {
    /// Parameter name (`S`, `T`, `'a` for lifetimes).
    pub name: String,
    /// Normalized bound text after the `:`, empty when unbounded.
    /// Where-clause bounds on the same name are appended.
    pub bounds: String,
}

/// A method defined inside an impl block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImplMethod {
    /// Method name.
    pub name: String,
    /// Significant-token span of the body (including its braces).
    pub body: Span,
    /// 1-based source line of the `fn` keyword.
    pub line: usize,
}

/// An impl block (`impl T for X` or inherent `impl X`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImplDef {
    /// The implemented trait's name (path tail, generics stripped);
    /// `None` for inherent impls.
    pub trait_name: Option<String>,
    /// The self type as normalized token text (`CheckedSwitch < S >`).
    pub self_ty: String,
    /// The self type's head identifier (`CheckedSwitch`, `Box`).
    pub self_ty_name: String,
    /// The impl's generic parameters with bounds (incl. where clause).
    pub generics: Vec<GenericParam>,
    /// Methods defined in the block, in order.
    pub methods: Vec<ImplMethod>,
    /// 1-based source line of the `impl` keyword.
    pub line: usize,
    /// Significant-token span of the whole block.
    pub span: Span,
    /// Whether the block sits inside `#[cfg(test)]` / `#[test]` code.
    pub test_only: bool,
}

impl ImplDef {
    /// The method named `name`, if the block defines one.
    pub fn method(&self, name: &str) -> Option<&ImplMethod> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Whether some impl generic parameter is bounded by `trait_name`
    /// (inline or via the where clause) — the "wraps an inner
    /// implementor" signal the forwarding rule keys on.
    pub fn param_bounded_by(&self, trait_name: &str) -> Option<&GenericParam> {
        self.generics
            .iter()
            .find(|p| p.bounds.split_whitespace().any(|w| w == trait_name))
    }
}

/// Everything the parser extracted from one file.
#[derive(Clone, Default, Debug)]
pub struct FileAst {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Trait definitions.
    pub traits: Vec<TraitDef>,
    /// Impl blocks.
    pub impls: Vec<ImplDef>,
}
