//! A small token-tree matcher over the lexer's output.
//!
//! Rules do not walk raw tokens: this layer strips trivia (whitespace and
//! comments) into a *significant token* index, finds balanced delimiter
//! spans, splits argument lists at top-level commas, and computes the
//! byte spans of `#[cfg(test)]` / `#[test]` items and `debug_assert!`
//! invocations so rules can exempt them. It also resolves the inline
//! escape hatch: a `// fifoms-lint: allow(Rk) <reason>` comment
//! suppresses rule `Rk` on its own and the following line, but only when
//! a non-empty reason is given.

use crate::lexer::{Lexed, Tok, TokKind};

/// A lexed file plus the derived indices rules match against.
pub struct Matcher<'a> {
    /// The underlying lexed file.
    pub lexed: Lexed<'a>,
    /// Indices (into `lexed.toks`) of non-trivia tokens.
    pub sig: Vec<usize>,
    /// Byte spans of test-only code (`#[cfg(test)]` / `#[test]` items).
    pub test_spans: Vec<(usize, usize)>,
    /// Byte spans of `debug_assert*!(...)` invocations.
    pub debug_assert_spans: Vec<(usize, usize)>,
    /// `(rule, line)` pairs from `fifoms-lint: allow(...)` directives.
    pub allows: Vec<(String, usize)>,
}

impl<'a> Matcher<'a> {
    /// Lex and index `src`.
    pub fn new(src: &'a str) -> Matcher<'a> {
        let lexed = Lexed::new(src);
        let sig: Vec<usize> = (0..lexed.toks.len())
            .filter(|&i| {
                !matches!(
                    lexed.toks[i].kind,
                    TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
                )
            })
            .collect();
        let mut m = Matcher {
            lexed,
            sig,
            test_spans: Vec::new(),
            debug_assert_spans: Vec::new(),
            allows: Vec::new(),
        };
        m.index_test_spans();
        m.index_debug_asserts();
        m.index_allows();
        m
    }

    /// The token behind significant index `si`.
    pub fn tok(&self, si: usize) -> &Tok {
        &self.lexed.toks[self.sig[si]]
    }

    /// The text of significant token `si`.
    pub fn text(&self, si: usize) -> &'a str {
        self.lexed.text(self.sig[si])
    }

    /// Number of significant tokens.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// Whether the file has no significant tokens.
    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// 1-based `(line, col)` of significant token `si`.
    pub fn line_col(&self, si: usize) -> (usize, usize) {
        self.lexed.line_col(self.tok(si).start)
    }

    /// Whether the texts at `si..` equal `pattern` exactly.
    pub fn matches(&self, si: usize, pattern: &[&str]) -> bool {
        pattern.len() <= self.len() - si
            && pattern
                .iter()
                .enumerate()
                .all(|(k, want)| self.text(si + k) == *want)
    }

    /// For an opening `(`/`[`/`{` at `si`, the significant index of its
    /// matching closer, respecting all three delimiter kinds.
    pub fn matching_close(&self, open: usize) -> Option<usize> {
        let mut depth = 0i64;
        for si in open..self.len() {
            match self.text(si) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(si);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Split the argument region `(open, close)` (exclusive bounds) at
    /// top-level commas; returns `(start, end)` significant-index ranges,
    /// end exclusive. Empty argument lists yield no ranges.
    pub fn split_args(&self, open: usize, close: usize) -> Vec<(usize, usize)> {
        let mut args = Vec::new();
        let mut depth = 0i64;
        let mut start = open + 1;
        for si in open + 1..close {
            match self.text(si) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    args.push((start, si));
                    start = si + 1;
                }
                _ => {}
            }
        }
        if start < close {
            args.push((start, close));
        }
        args
    }

    /// A compact normalized snippet of significant tokens `lo..hi`
    /// (end exclusive), capped at `max` tokens — the stable *key* a
    /// finding is baselined under, immune to reformatting and line drift.
    pub fn snippet(&self, lo: usize, hi: usize, max: usize) -> String {
        let hi = hi.min(self.len()).min(lo + max);
        let mut out = String::new();
        for si in lo..hi {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.text(si));
        }
        if hi < self.len() && hi == lo + max {
            out.push_str(" ...");
        }
        out
    }

    /// Whether byte `offset` falls inside test-only code.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(lo, hi)| offset >= lo && offset < hi)
    }

    /// Whether byte `offset` falls inside a `debug_assert*!` invocation.
    pub fn in_debug_assert(&self, offset: usize) -> bool {
        self.debug_assert_spans
            .iter()
            .any(|&(lo, hi)| offset >= lo && offset < hi)
    }

    /// Whether `rule` is suppressed at `line` by an allow directive.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|(r, l)| r == rule && (line == *l || line == *l + 1))
    }

    /// Record the byte spans of items guarded by `#[cfg(test)]` or
    /// `#[test]`-family attributes. The item body is taken to end at the
    /// matching `}` of its first top-level `{`, or at the first `;` if
    /// one comes sooner (e.g. `#[cfg(test)] use ...;`).
    fn index_test_spans(&mut self) {
        let mut si = 0;
        while si + 1 < self.len() {
            if self.text(si) == "#" && self.text(si + 1) == "[" {
                if let Some(close) = self.matching_close(si + 1) {
                    if self.attr_is_testy(si + 2, close) {
                        let start = self.tok(si).start;
                        let end = self.item_end(close + 1);
                        self.test_spans.push((start, end));
                        // Skip past the item so nested attributes inside
                        // it don't re-trigger.
                        si = self.sig_at_or_after(end);
                        continue;
                    }
                    si = close + 1;
                    continue;
                }
            }
            si += 1;
        }
    }

    /// Whether attribute tokens `lo..hi` mark test-only code: `test`,
    /// `cfg(test)` (or any `cfg(...)` mentioning `test`), `bench`.
    fn attr_is_testy(&self, lo: usize, hi: usize) -> bool {
        if hi == lo + 1 && matches!(self.text(lo), "test" | "bench") {
            return true;
        }
        self.text(lo) == "cfg" && (lo + 1..hi).any(|si| self.text(si) == "test")
    }

    /// The byte offset one past the end of the item starting at
    /// significant index `si` (skipping further attributes and doc
    /// comments between the attribute and the item keyword).
    fn item_end(&self, mut si: usize) -> usize {
        // Skip stacked attributes: # [ ... ] # [ ... ] item.
        while si + 1 < self.len() && self.text(si) == "#" && self.text(si + 1) == "[" {
            match self.matching_close(si + 1) {
                Some(close) => si = close + 1,
                None => return self.lexed.src.len(),
            }
        }
        let mut depth = 0i64;
        for k in si..self.len() {
            match self.text(k) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth == 0 && self.text(k) == "}" {
                        return self.tok(k).end;
                    }
                }
                ";" if depth == 0 => return self.tok(k).end,
                _ => {}
            }
        }
        self.lexed.src.len()
    }

    /// First significant index whose token starts at or after `offset`.
    fn sig_at_or_after(&self, offset: usize) -> usize {
        (0..self.len())
            .find(|&si| self.tok(si).start >= offset)
            .unwrap_or(self.len())
    }

    /// Record spans of `debug_assert*!(...)` invocations.
    fn index_debug_asserts(&mut self) {
        for si in 0..self.len().saturating_sub(2) {
            if self.text(si).starts_with("debug_assert")
                && self.text(si + 1) == "!"
                && matches!(self.text(si + 2), "(" | "[" | "{")
            {
                if let Some(close) = self.matching_close(si + 2) {
                    self.debug_assert_spans
                        .push((self.tok(si).start, self.tok(close).end));
                }
            }
        }
    }

    /// Record `// fifoms-lint: allow(Rk) <reason>` directives. A
    /// directive with an empty reason is ignored (and rule R5-adjacent:
    /// the lint run reports it as unexplained via the rules that consult
    /// it finding nothing suppressed).
    fn index_allows(&mut self) {
        for i in 0..self.lexed.toks.len() {
            if self.lexed.toks[i].kind != TokKind::LineComment {
                continue;
            }
            let text = self.lexed.text(i);
            let Some(rest) = text.split("fifoms-lint:").nth(1) else {
                continue;
            };
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix("allow(") else {
                continue;
            };
            let Some((rule, reason)) = rest.split_once(')') else {
                continue;
            };
            if reason.trim().is_empty() {
                continue; // an allow without a justification is no allow
            }
            let (line, _) = self.lexed.line_col(self.lexed.toks[i].start);
            self.allows.push((rule.trim().to_string(), line));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significant_tokens_skip_trivia() {
        let m = Matcher::new("let x = 1; // comment\n/* block */ let y = 2;");
        let texts: Vec<&str> = (0..m.len()).map(|si| m.text(si)).collect();
        assert_eq!(texts, ["let", "x", "=", "1", ";", "let", "y", "=", "2", ";"]);
    }

    #[test]
    fn balanced_close_and_args() {
        let m = Matcher::new("f(a, g(b, c), [d, e])");
        // sig: f ( a , g ( b , c ) , [ d , e ] )
        let open = 1;
        let close = m.matching_close(open).unwrap();
        assert_eq!(m.text(close), ")");
        assert_eq!(close, m.len() - 1);
        let args = m.split_args(open, close);
        assert_eq!(args.len(), 3);
        assert_eq!(m.snippet(args[1].0, args[1].1, 16), "g ( b , c )");
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn after() {}";
        let m = Matcher::new(src);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(m.in_test_code(unwrap_at));
        assert!(!m.in_test_code(src.find("live").unwrap()));
        assert!(!m.in_test_code(src.find("after").unwrap()));
    }

    #[test]
    fn test_attribute_on_fn() {
        let src = "#[test]\nfn check() { a[0]; }\nfn hot() { b[1]; }";
        let m = Matcher::new(src);
        assert!(m.in_test_code(src.find("a[0]").unwrap()));
        assert!(!m.in_test_code(src.find("b[1]").unwrap()));
    }

    #[test]
    fn stacked_attributes_extend_to_the_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t() { x[0]; }\nfn live() {}";
        let m = Matcher::new(src);
        assert!(m.in_test_code(src.find("x[0]").unwrap()));
        assert!(!m.in_test_code(src.find("live").unwrap()));
    }

    #[test]
    fn debug_assert_spans() {
        let src = "debug_assert!(q[0] > 1); let x = q[1];";
        let m = Matcher::new(src);
        assert!(m.in_debug_assert(src.find("q[0]").unwrap()));
        assert!(!m.in_debug_assert(src.find("q[1]").unwrap()));
    }

    #[test]
    fn allow_directive_requires_a_reason() {
        let src = "// fifoms-lint: allow(R3) slot index proven in bounds by ctor\nlet x = q[0];\n// fifoms-lint: allow(R1)\nlet y = 1;";
        let m = Matcher::new(src);
        assert!(m.allowed("R3", 2));
        assert!(!m.allowed("R3", 4));
        assert!(!m.allowed("R1", 4), "reason-less allow is ignored");
    }
}
