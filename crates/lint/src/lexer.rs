//! A hand-rolled Rust lexer.
//!
//! The lint rules need to see *source structure* — which `unwrap` is in a
//! string literal, which `HashMap` is in a comment, where a `#[cfg(test)]`
//! module ends — so the first layer is a real lexer, not a line-regex
//! scan. It is total: every byte of the input lands in exactly one token,
//! so concatenating the token texts reproduces the file byte-for-byte
//! (the property the round-trip tests pin). Unrecognised bytes become
//! [`TokKind::Unknown`] tokens rather than errors; a lint pass must never
//! abort on a file it merely fails to understand.
//!
//! Covered Rust surface: line and (nested) block comments, string / byte
//! string / raw string / raw byte string literals with arbitrary `#`
//! fences, char and byte-char literals, lifetimes (disambiguated from
//! char literals), raw identifiers (`r#match`), and numeric literals
//! including hex/octal/binary, underscores, exponents and type suffixes.
//! Multi-character operators are emitted as runs of single-character
//! [`TokKind::Punct`] tokens; the matcher layer reassembles `::` and
//! friends where it cares.

/// The kind of one lexed token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// A run of whitespace (spaces, tabs, newlines, CR).
    Whitespace,
    /// A `//`-to-end-of-line comment (including `///` and `//!` docs).
    LineComment,
    /// A `/* ... */` comment; nesting is handled.
    BlockComment,
    /// An identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static` (quote included).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A string or byte-string literal: `"..."`, `b"..."`.
    Str,
    /// A raw (byte) string literal: `r"..."`, `r#"..."#`, `br#"..."#`.
    RawStr,
    /// A numeric literal: `42`, `0xff_u32`, `1.5`, `1e-9`, `2.0f64`.
    Num,
    /// A single punctuation / operator character.
    Punct,
    /// A byte the lexer does not recognise (kept for totality).
    Unknown,
}

/// One token: a kind plus the byte span it occupies in the source.
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

/// A lexed source file: the text, its tokens, and a line table.
pub struct Lexed<'a> {
    /// The source text the spans index into.
    pub src: &'a str,
    /// The tokens, tiling `src` exactly.
    pub toks: Vec<Tok>,
    line_starts: Vec<usize>,
}

impl<'a> Lexed<'a> {
    /// Lex `src` completely.
    pub fn new(src: &'a str) -> Lexed<'a> {
        let toks = lex(src);
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Lexed {
            src,
            toks,
            line_starts,
        }
    }

    /// The text of token `i`.
    pub fn text(&self, i: usize) -> &'a str {
        let t = &self.toks[i];
        &self.src[t.start..t.end]
    }

    /// 1-based `(line, column)` of a byte offset (column in bytes).
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }
}

/// Tokenise `src`. Total: the returned tokens tile the input exactly.
pub fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let kind = match bytes[i] {
            b' ' | b'\t' | b'\n' | b'\r' => {
                while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
                    i += 1;
                }
                TokKind::Whitespace
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                TokKind::LineComment
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                TokKind::BlockComment
            }
            b'r' | b'b' if string_prefix(bytes, i).is_some() => {
                let (raw, fence, quote_at) = string_prefix(bytes, i).expect("checked above");
                if raw {
                    i = scan_raw_string(bytes, quote_at, fence);
                    TokKind::RawStr
                } else if bytes[quote_at] == b'"' {
                    i = scan_string(bytes, quote_at + 1, b'"');
                    TokKind::Str
                } else {
                    i = scan_string(bytes, quote_at + 1, b'\'');
                    TokKind::Char
                }
            }
            b'r' if bytes.get(i + 1) == Some(&b'#')
                && bytes.get(i + 2).is_some_and(|&b| is_ident_start(b)) =>
            {
                // Raw identifier r#match.
                i += 2;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                TokKind::Ident
            }
            b if is_ident_start(b) => {
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                TokKind::Ident
            }
            b'0'..=b'9' => {
                i = scan_number(bytes, i);
                TokKind::Num
            }
            b'"' => {
                i = scan_string(bytes, i + 1, b'"');
                TokKind::Str
            }
            b'\'' => {
                let (kind, end) = scan_quote(src, i);
                i = end;
                kind
            }
            b if b.is_ascii_punctuation() => {
                i += 1;
                TokKind::Punct
            }
            _ => {
                // Advance one whole UTF-8 scalar so spans stay on char
                // boundaries.
                let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                i += ch_len;
                TokKind::Unknown
            }
        };
        toks.push(Tok {
            kind,
            start,
            end: i,
        });
    }
    toks
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// If position `i` starts a string-ish literal prefix (`r"`, `r#"`, `b"`,
/// `b'`, `br"`, `br#"`), return `(is_raw, fence_hashes, quote_offset)`.
fn string_prefix(bytes: &[u8], i: usize) -> Option<(bool, usize, usize)> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'\'') {
            return Some((false, 0, j));
        }
        if bytes.get(j) == Some(&b'"') {
            return Some((false, 0, j));
        }
        if bytes.get(j) == Some(&b'r') {
            j += 1;
        } else {
            return None;
        }
    } else if bytes[j] == b'r' {
        j += 1;
    } else {
        return None;
    }
    // raw: expect #* then ".
    let mut fence = 0;
    while bytes.get(j) == Some(&b'#') {
        fence += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((true, fence, j))
    } else {
        None
    }
}

/// Scan a non-raw string/char literal body starting just after the opening
/// quote; returns the offset past the closing quote (or EOF if
/// unterminated).
fn scan_string(bytes: &[u8], mut i: usize, close: u8) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b if b == close => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Scan a raw string whose opening quote is at `quote_at` with `fence`
/// hashes; returns the offset past the closing fence.
fn scan_raw_string(bytes: &[u8], quote_at: usize, fence: usize) -> usize {
    let mut i = quote_at + 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0;
            while k < fence && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == fence {
                return i + 1 + fence;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// Scan a numeric literal starting at `i` (first byte is a digit).
fn scan_number(bytes: &[u8], mut i: usize) -> usize {
    let radix_prefixed = bytes[i] == b'0'
        && matches!(bytes.get(i + 1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
    // Greedy alphanumeric run covers digits, hex digits, underscores,
    // in-word exponents (1e9) and suffixes (u64, f32).
    while i < bytes.len() && (is_ident_continue(bytes[i])) {
        i += 1;
    }
    // Fractional part: `.` followed by a digit, or a trailing `.` that is
    // neither a range (`..`) nor a method/field access (`1.max(2)`).
    if !radix_prefixed && bytes.get(i) == Some(&b'.') {
        let next = bytes.get(i + 1);
        let is_range = next == Some(&b'.');
        let is_access = next.is_some_and(|&b| is_ident_start(b));
        if !is_range && !is_access {
            i += 1;
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
        }
    }
    // Signed exponent: greedy stops before `+`/`-`; resume if the run so
    // far ends in e/E and a digit follows the sign (1e+9, 2.5E-3).
    if !radix_prefixed
        && i > 0
        && matches!(bytes[i - 1], b'e' | b'E')
        && matches!(bytes.get(i), Some(b'+' | b'-'))
        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
    {
        i += 2;
        while i < bytes.len() && is_ident_continue(bytes[i]) {
            i += 1;
        }
    }
    i
}

/// Disambiguate a bare `'`: char literal vs lifetime.
fn scan_quote(src: &str, i: usize) -> (TokKind, usize) {
    let bytes = src.as_bytes();
    match bytes.get(i + 1) {
        // Escape: definitely a char literal ('\n', '\u{1F980}').
        Some(b'\\') => (TokKind::Char, scan_string(bytes, i + 1, b'\'')),
        Some(&b) => {
            // One scalar then a closing quote → char literal (covers
            // multibyte scalars like 'é').
            let ch_len = src[i + 1..].chars().next().map_or(1, char::len_utf8);
            if bytes.get(i + 1 + ch_len) == Some(&b'\'') {
                (TokKind::Char, i + 2 + ch_len)
            } else if is_ident_start(b) {
                // 'a in <'a, T> — a lifetime, no closing quote.
                let mut j = i + 1;
                while j < bytes.len() && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                (TokKind::Lifetime, j)
            } else {
                (TokKind::Unknown, i + 1)
            }
        }
        None => (TokKind::Unknown, i + 1),
    }
}

/// Whether a [`TokKind::Num`] token's text denotes a floating-point value.
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text
            .bytes()
            .zip(text.bytes().skip(1))
            .any(|(a, b)| matches!(a, b'e' | b'E') && (b.is_ascii_digit() || b == b'+' || b == b'-'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        let lexed = Lexed::new(src);
        (0..lexed.toks.len())
            .map(|i| (lexed.toks[i].kind, lexed.text(i)))
            .filter(|(k, _)| *k != TokKind::Whitespace)
            .collect()
    }

    #[test]
    fn round_trips_basic_source() {
        let src = "fn main() { let x = 1.5; /* hi /* nested */ */ }\n";
        let lexed = Lexed::new(src);
        let rebuilt: String = (0..lexed.toks.len()).map(|i| lexed.text(i)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn strings_and_raw_strings() {
        let got = kinds(r###"let s = r#"raw "inner" text"#; let t = "esc\"aped";"###);
        assert!(got.contains(&(TokKind::RawStr, r##"r#"raw "inner" text"#"##)));
        assert!(got.contains(&(TokKind::Str, "\"esc\\\"aped\"")));
    }

    #[test]
    fn byte_literals() {
        let got = kinds(r##"let a = b'x'; let b = b"bytes"; let c = br#"raw"#;"##);
        assert!(got.contains(&(TokKind::Char, "b'x'")));
        assert!(got.contains(&(TokKind::Str, "b\"bytes\"")));
        assert!(got.contains(&(TokKind::RawStr, "br#\"raw\"#")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let got = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(got.contains(&(TokKind::Lifetime, "'a")));
        assert!(got.contains(&(TokKind::Char, "'x'")));
        let got = kinds("let c = '\\n'; let s: &'static str = \"\";");
        assert!(got.contains(&(TokKind::Char, "'\\n'")));
        assert!(got.contains(&(TokKind::Lifetime, "'static")));
    }

    #[test]
    fn numbers() {
        let got = kinds("let x = 0xff_u32 + 1_000 + 1.5e-3 + 2f64 + 1e9;");
        assert!(got.contains(&(TokKind::Num, "0xff_u32")));
        assert!(got.contains(&(TokKind::Num, "1_000")));
        assert!(got.contains(&(TokKind::Num, "1.5e-3")));
        assert!(got.contains(&(TokKind::Num, "2f64")));
        assert!(got.contains(&(TokKind::Num, "1e9")));
        // Range and method-call dots stay out of the number.
        let got = kinds("for i in 0..5 { 1.max(2); }");
        assert!(got.contains(&(TokKind::Num, "0")));
        assert!(got.contains(&(TokKind::Num, "5")));
        assert!(got.contains(&(TokKind::Num, "1")));
        assert!(got.contains(&(TokKind::Ident, "max")));
    }

    #[test]
    fn float_literal_detection() {
        assert!(is_float_literal("1.5"));
        assert!(is_float_literal("1."));
        assert!(is_float_literal("1e9"));
        assert!(is_float_literal("2.5E-3"));
        assert!(is_float_literal("2f64"));
        assert!(!is_float_literal("42"));
        assert!(!is_float_literal("0xff"));
        assert!(!is_float_literal("0xEE"));
        assert!(!is_float_literal("1_000u64"));
    }

    #[test]
    fn raw_identifiers() {
        let got = kinds("let r#match = 1;");
        assert!(got.contains(&(TokKind::Ident, "r#match")));
    }

    #[test]
    fn unterminated_inputs_still_tile() {
        for src in ["\"abc", "/* open", "r#\"open", "'", "b'"] {
            let lexed = Lexed::new(src);
            let rebuilt: String = (0..lexed.toks.len()).map(|i| lexed.text(i)).collect();
            assert_eq!(rebuilt, src, "input {src:?} must tile");
        }
    }

    #[test]
    fn line_col() {
        let lexed = Lexed::new("ab\ncd\nef");
        assert_eq!(lexed.line_col(0), (1, 1));
        assert_eq!(lexed.line_col(3), (2, 1));
        assert_eq!(lexed.line_col(7), (3, 2));
    }
}
