//! R2 regression fixture (bad): a retransmission path that re-stamps the
//! retried copy with the *current* slot. This is exactly the bug class
//! Theorem 1 forbids — a re-stamped copy re-enters arbitration with
//! reset priority, so an unlucky flow can starve forever. The rule must
//! catch both the fresh mint and the non-preserving `Packet::new`.
//! Never compiled — lexed and matched by `tests/rules.rs`.

fn requeue_after_fault(d: &Departure, clock: &SlotClock) -> Packet {
    let fresh = clock.now_slot();
    Packet::new(d.packet, fresh, d.input, d.dests.clone())
}

fn requeue_with_inline_mint(d: &Departure) -> Packet {
    Packet::new(d.packet, Slot::now(), d.input, d.dests.clone())
}

fn restamp(ts: &mut Slot) {
    *ts = Timestamp::now();
}
