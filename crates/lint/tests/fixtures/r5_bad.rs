//! R5 fixture (bad): an `unsafe` block with no SAFETY justification and
//! an INVARIANT tag with nothing after the colon.
//! Never compiled — lexed and matched by `tests/rules.rs`.

struct Meta {
    // INVARIANT:
    live: usize,
}

fn touch(p: *mut u8) {
    unsafe {
        *p = 0;
    }
}
