//! R4 fixture (bad): emits a kind the schema has never heard of and
//! fails to emit one the schema promises. Both directions must flag.
//! Never compiled — lexed by `tests/rules.rs`.

impl ObsEvent {
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::RunMeta { .. } => "run_meta",
            ObsEvent::Mystery { .. } => "mystery_event",
        }
    }
}
