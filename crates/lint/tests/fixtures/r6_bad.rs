//! R6 fixture (bad): fingerprint functions that feed rounded decimal
//! float text into identity strings. Decimal formatting is a lossy,
//! locale-of-the-formatter view of the value; resume matching must use
//! the exact bit pattern. Never compiled — lexed by `tests/rules.rs`.

fn grid_hash(load: f64, n: usize) -> String {
    let mut key = String::new();
    key.push_str(&format!("{n}x"));
    key.push_str(&format!("{load:.3}"));
    key
}

// FINGERPRINT: cell identity for the resume journal.
fn cell_identity(load: f64) -> String {
    let key = format!("{load}");
    key
}
