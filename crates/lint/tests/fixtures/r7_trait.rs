//! R7 fixture: the trait the wrapper fixtures implement — one required
//! method and two default-bodied hooks. Never compiled.

pub trait Switch {
    fn name(&self) -> String;

    fn drain_spans(&mut self, out: &mut Vec<u64>) {
        let _ = out;
    }

    fn recycle(&mut self, cell: u64) {
        let _ = cell;
    }
}
