//! R6 fixture (good): identity text built from `to_bits()`, never from
//! rounded decimal float formatting — the discipline `grid_hash` in
//! `crates/sim/src/checkpoint.rs` actually follows.
//! Never compiled — lexed and matched by `tests/rules.rs`.

fn grid_hash(load: f64, n: usize) -> String {
    let bits = load.to_bits();
    let mut key = String::new();
    key.push_str(&format!("{n}x{bits}"));
    key
}

/// Not a fingerprint function: free to format floats for humans.
fn progress_line(load: f64) -> String {
    format!("load {load:.2}")
}
