//! R5 fixture (good): the same shapes with real justifications — a
//! SAFETY comment within three lines of the `unsafe`, and an INVARIANT
//! tag that states the invariant and why it holds.
//! Never compiled — lexed and matched by `tests/rules.rs`.

struct Meta {
    // INVARIANT: live equals the number of Live entries; every mutation
    // path re-establishes it before returning.
    live: usize,
}

fn touch(p: *mut u8) {
    // SAFETY: the caller guarantees `p` points into the arena and the
    // arena outlives this call; no other alias exists during the write.
    unsafe {
        *p = 0;
    }
}
