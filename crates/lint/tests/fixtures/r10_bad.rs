//! R10 fixture (bad): index sites no local proof discharges — a bare
//! index, a guard over the wrong base, a guard in another function, and
//! an unchecked helper. Never compiled.

fn bare(grants: &[usize], winner: usize) -> usize {
    grants[winner]
}

fn wrong_base(grants: &[usize], free: &[bool], winner: usize) -> usize {
    debug_assert!(winner < free.len());
    grants[winner]
}

fn elsewhere(grants: &[usize], winner: usize) {
    debug_assert!(winner < grants.len());
    let _ = grants;
    let _ = winner;
}

fn not_dominated(grants: &[usize], winner: usize) -> usize {
    grants[winner]
}

struct Grid {
    ports: usize,
    cells: Vec<u64>,
}

impl Grid {
    fn idx(&self, input: usize, output: usize) -> usize {
        input * self.ports + output
    }

    fn unchecked_helper(&self, input: usize, output: usize) -> u64 {
        self.cells[self.idx(input, output)]
    }
}
