//! R8 fixture (good): full field coverage, a generic-typed inner value
//! (travels in its own frame), and a comment-documented exclusion.
//! Never compiled.

pub struct Counters<S> {
    inner: S,
    served: u64,
    dropped: u64,
    ring_cap: usize,
}

impl<S> Checkpoint for Counters<S> {
    fn state_kind(&self) -> &'static str {
        "counters"
    }

    fn state_version(&self) -> u32 {
        2
    }

    // ring_cap is configuration, re-established by the constructor.
    fn write_state(&self, w: &mut StateWriter) {
        w.u64(self.served);
        w.u64(self.dropped);
    }

    fn read_state(&mut self, r: &mut StateReader) -> Result<(), StateError> {
        self.served = r.u64()?;
        self.dropped = r.u64()?;
        Ok(())
    }
}
