//! R7 fixture (bad): a wrapper that forgets one default-bodied forward
//! and overrides another without delegating. Never compiled — parsed
//! into the program model by `tests/rules.rs` together with
//! `r7_trait.rs`.

pub struct LoggingSwitch<S> {
    inner: S,
    log: Vec<String>,
}

impl<S: Switch> Switch for LoggingSwitch<S> {
    fn name(&self) -> String {
        format!("logging({})", self.inner.name())
    }

    // drain_spans is never overridden: the trait's no-op default
    // swallows the inner switch's spans.

    // recycle is overridden but never delegated: the inner switch leaks
    // its retired cells.
    fn recycle(&mut self, cell: u64) {
        self.log.push(format!("recycle {cell}"));
    }
}
