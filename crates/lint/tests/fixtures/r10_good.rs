//! R10 fixture (good): every discharge form — assert!/debug_assert!
//! dominance, `if` bounds, reversed comparisons, checked accessors
//! (direct and let-bound), get()-based access, and the allow hatch.
//! Never compiled.

fn asserted(grants: &[usize], winner: usize) -> usize {
    debug_assert!(winner < grants.len() && grants[winner] > 0);
    grants[winner]
}

fn hard_asserted(grants: &[usize], winner: usize) -> usize {
    assert!(winner < grants.len(), "scheduler grant out of range");
    grants[winner]
}

fn if_bounded(grants: &[usize], winner: usize) -> usize {
    if winner < grants.len() {
        grants[winner]
    } else {
        0
    }
}

fn reversed(grants: &[usize], winner: usize) -> usize {
    debug_assert!(grants.len() > winner);
    grants[winner]
}

fn via_get(grants: &[usize], winner: usize) -> Option<usize> {
    grants.get(winner).copied()
}

struct Grid {
    ports: usize,
    cells: Vec<u64>,
}

impl Grid {
    fn idx(&self, input: usize, output: usize) -> usize {
        debug_assert!(input < self.ports && output < self.ports);
        input * self.ports + output
    }

    fn direct(&self, input: usize, output: usize) -> u64 {
        self.cells[self.idx(input, output)]
    }

    fn let_bound(&self, input: usize, output: usize) -> u64 {
        let k = self.idx(input, output);
        self.cells[k]
    }
}

fn justified(xs: &[u64]) -> u64 {
    // fifoms-lint: allow(R10) nonempty by caller contract, checked at admission
    xs[0]
}
