//! R2 fixture (good): the retransmission path re-queues a killed copy
//! with its ORIGINAL arrival stamp — the `restore_destination` pattern.
//! Theorem 1's starvation bound survives because the retried copy keeps
//! its place in the global FIFO order.
//! Never compiled — lexed and matched by `tests/rules.rs`.

fn requeue_preserving(d: &Departure) -> Packet {
    Packet::new(d.packet, d.arrival, d.input, d.dests.clone())
}

fn requeue_from_binding(d: &Departure) -> Packet {
    let arrival = d.arrival;
    Packet::new(d.packet, arrival, d.input, d.dests.clone())
}
