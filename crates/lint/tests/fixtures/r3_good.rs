//! R3 fixture (good): the sanctioned forms — `get()` with `?`, bounds
//! proven inside `debug_assert!`, a justified allow directive, and free
//! use of panicky helpers inside test code.
//! Never compiled — lexed and matched by `tests/rules.rs`.

fn hot_path(xs: &[u64], i: usize) -> Option<u64> {
    debug_assert!(xs[0] <= xs[xs.len() - 1], "caller passes sorted slices");
    let first = xs.first()?;
    let rest = xs.get(i)?;
    Some(first + rest)
}

fn justified(xs: &[u64]) -> u64 {
    // fifoms-lint: allow(R10) nonempty by caller contract, checked at admission
    xs[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn panicky_assertions_are_fine_in_tests() {
        let xs = vec![1u64, 2];
        assert_eq!(xs[0], 1);
        assert_eq!(xs.get(1).copied().unwrap(), 2);
    }
}
