//! R3 fixture (bad): every panic path the rule must catch in hot-path
//! scheduler code. Never compiled — lexed and matched by `tests/rules.rs`.

fn hot_path(xs: &[u64], i: usize) -> u64 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("needs two entries");
    if i > xs.len() {
        panic!("index out of range");
    }
    match i {
        0 => unreachable!(),
        _ => first + second + xs[i],
    }
}
