//! R4 fixture (good): an ObsEvent whose kind() vocabulary exactly
//! matches the schema fixture. Never compiled — lexed by `tests/rules.rs`.

impl ObsEvent {
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::RunMeta { .. } => "run_meta",
            ObsEvent::RunEnd { .. } => "run_end",
        }
    }
}
