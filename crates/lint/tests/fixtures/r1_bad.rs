//! R1 fixture (bad): every nondeterminism source the rule must catch.
//! Never compiled — lexed and matched by `tests/rules.rs`.

struct Registry {
    seen: HashSet<u64>,
}

impl Registry {
    fn loop_over_set(&self) -> usize {
        let mut n = 0;
        for _k in &self.seen {
            n += 1;
        }
        n
    }
}

fn iterate_hash_order(counts: HashMap<String, u64>) -> u64 {
    let mut total = 0;
    // Hash iteration order varies run to run: findings must fire here.
    for (_name, c) in counts.iter() {
        total += c;
    }
    let keys = counts.keys().count() as u64;
    total + keys
}

fn wall_clock_seed() -> u64 {
    let t = Instant::now();
    let s = SystemTime::now();
    let rng = rand::thread_rng();
    drop((t, s, rng));
    rand::random()
}
