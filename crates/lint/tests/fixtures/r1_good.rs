//! R1 fixture (good): the deterministic forms of everything `r1_bad.rs`
//! does wrong. Keyed hash lookup, sorted projections, seeded RNG.
//! Never compiled — lexed and matched by `tests/rules.rs`.

struct Registry {
    seen: HashSet<u64>,
    retries: HashMap<u64, u32>,
}

impl Registry {
    /// Keyed access is order-free and stays legal.
    fn lookup(&mut self, key: u64) -> u32 {
        if self.seen.contains(&key) {
            return self.retries.get(&key).copied().unwrap_or(0);
        }
        self.retries.entry(key).or_insert(0);
        *self.retries.entry(key).or_insert(0)
    }

    /// Iterating a sorted projection is the sanctioned pattern.
    fn ordered(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = Vec::new();
        for k in 0..64 {
            if self.seen.contains(&k) {
                keys.push(k);
            }
        }
        keys
    }
}

fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    /// Test code may iterate hash order freely — assertions sort first.
    #[test]
    fn hash_iteration_is_fine_in_tests() {
        let m: HashMap<u32, u32> = HashMap::new();
        let mut v: Vec<u32> = m.keys().copied().collect();
        v.sort_unstable();
        assert!(v.is_empty());
        let t = Instant::now();
        drop(t);
    }
}
