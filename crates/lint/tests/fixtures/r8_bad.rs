//! R8 fixture (bad): a Checkpoint impl that saves a field it never
//! restores and skips another entirely, with no documented exclusion.
//! Never compiled.

pub struct Counters {
    served: u64,
    dropped: u64,
    high_water: u64,
}

impl Checkpoint for Counters {
    fn state_kind(&self) -> &'static str {
        "counters"
    }

    fn write_state(&self, w: &mut StateWriter) {
        w.u64(self.served);
        w.u64(self.dropped);
        // (the third counter is forgotten here)
    }

    fn read_state(&mut self, r: &mut StateReader) -> Result<(), StateError> {
        self.served = r.u64()?;
        // (the second counter is never restored)
        Ok(())
    }
}
