//! R2 regression fixture (bad): a buffer-pushout policy that re-mints
//! the arrival stamp of a copy it moves aside. A pushout that demotes a
//! victim to the tail of another VOQ — or re-admits it later — MUST
//! carry the victim's ORIGINAL arrival stamp; re-stamping it with the
//! eviction slot resets its Theorem 1 priority and reopens the
//! starvation window the FIFO stamp order exists to close. The rule must
//! catch both the fresh mint and the non-preserving `Packet::new`.
//! Never compiled — lexed and matched by `tests/rules.rs`.

fn push_out_and_restamp(victim: &AddressCell, clock: &SlotClock) -> Packet {
    // BUG: the evicted copy is re-minted at the eviction slot, so it
    // re-enters arbitration as if it had just arrived.
    let eviction_slot = clock.now_slot();
    Packet::new(victim.packet, eviction_slot, victim.input, victim.dests.clone())
}

fn requeue_evicted_inline(victim: &AddressCell) -> Packet {
    Packet::new(victim.packet, Slot::now(), victim.input, victim.dests.clone())
}
