//! R7 fixture (good): a complete wrapper (every default-bodied method
//! overridden and delegated), a blanket `Box` forward, and a plain
//! non-wrapper impl R7 must leave alone. Never compiled.

pub struct LoggingSwitch<S> {
    inner: S,
    log: Vec<String>,
}

impl<S: Switch> Switch for LoggingSwitch<S> {
    fn name(&self) -> String {
        format!("logging({})", self.inner.name())
    }

    fn drain_spans(&mut self, out: &mut Vec<u64>) {
        self.inner.drain_spans(out);
    }

    fn recycle(&mut self, cell: u64) {
        self.log.push(format!("recycle {cell}"));
        self.inner.recycle(cell);
    }
}

impl<T: Switch + ?Sized> Switch for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn drain_spans(&mut self, out: &mut Vec<u64>) {
        (**self).drain_spans(out);
    }

    fn recycle(&mut self, cell: u64) {
        (**self).recycle(cell);
    }
}

/// A terminal switch implements the trait without wrapping anything:
/// default bodies are exactly what it wants.
pub struct NullSwitch {
    ports: usize,
}

impl Switch for NullSwitch {
    fn name(&self) -> String {
        format!("null({})", self.ports)
    }
}
