//! Fixture tests for the fifoms-lint rules: one good and one bad
//! exemplar per rule under `tests/fixtures/`. The fixtures are data, not
//! code — the engine's walker skips `fixtures/` directories, and cargo
//! never compiles them — so they can contain arbitrary violations.
//!
//! Fixtures are checked through `check_file` with a *synthetic* relative
//! path: the path picks the crate domain, so the same source can be
//! asserted flagged inside a rule's domain and ignored outside it. The
//! structural rules (R7/R8) run the same fixtures through the program
//! model instead.

use fifoms_lint::matcher::Matcher;
use fifoms_lint::rules::{check_file, check_vocabulary, Finding};
use fifoms_lint::structural::{r7_wrapper_forwarding, r8_checkpoint_coverage, r9_schema_drift};
use fifoms_lint::Program;
use fifoms_obs::Json;

fn run(rel: &str, src: &str) -> Vec<Finding> {
    let m = Matcher::new(src);
    check_file(rel, &m)
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

// ---------------------------------------------------------------- R1 --

#[test]
fn r1_flags_every_nondeterminism_source() {
    let f = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/r1_bad.rs"),
    );
    // for over self.seen, counts.iter(), counts.keys(),
    // Instant::now, SystemTime::now, thread_rng, rand::random.
    assert_eq!(count(&f, "R1"), 7, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("hash-ordered `counts`")));
    assert!(f.iter().any(|x| x.message.contains("wall-clock")));
    assert!(f.iter().any(|x| x.message.contains("unseeded RNG")));
}

#[test]
fn r1_accepts_keyed_access_sorted_projections_and_tests() {
    let f = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/r1_good.rs"),
    );
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}

#[test]
fn r1_does_not_apply_outside_its_domain() {
    // The same nondeterminism soup in an analysis crate is legal: only
    // result-bearing crates carry the determinism contract.
    let f = run(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/r1_bad.rs"),
    );
    assert_eq!(count(&f, "R1"), 0, "{f:#?}");
}

// ---------------------------------------------------------------- R2 --

/// The regression the rule exists for: an egress-fault retry path that
/// re-stamps the retried copy. Both the fresh mint and the
/// non-preserving `Packet::new` must flag.
#[test]
fn r2_catches_stamp_minting_retransmission() {
    let f = run(
        "crates/fabric/src/fixture.rs",
        include_str!("fixtures/r2_bad.rs"),
    );
    // now_slot, Slot::now, Timestamp::now mints + two bad Packet::new.
    assert_eq!(count(&f, "R2"), 5, "{f:#?}");
    assert!(f
        .iter()
        .any(|x| x.message.contains("non-preserved arrival stamp `fresh`")));
    assert!(f.iter().any(|x| x.message.contains("ORIGINAL arrival")));
}

/// The overload-protection variant of the same bug class: a pushout
/// admission policy that re-mints the evicted copy's arrival stamp at
/// the eviction slot. Stamp-preserving pushout is what keeps finite
/// buffers inside Theorem 1; the rule must flag the re-mint in the core
/// domain where pushout lives.
#[test]
fn r2_catches_pushout_restamping_evicted_copies() {
    let f = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r2_pushout_bad.rs"),
    );
    // now_slot + Slot::now mints, plus two non-preserving Packet::new.
    assert_eq!(count(&f, "R2"), 4, "{f:#?}");
    assert!(f
        .iter()
        .any(|x| x.message.contains("non-preserved arrival stamp `eviction_slot`")));
    assert!(f.iter().any(|x| x.message.contains("ORIGINAL arrival")));
}

#[test]
fn r2_accepts_preserved_arrival_stamps() {
    let f = run(
        "crates/fabric/src/fixture.rs",
        include_str!("fixtures/r2_good.rs"),
    );
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}

#[test]
fn r2_exempts_admission_modules_by_domain() {
    // Admission (sim/traffic/cli) legitimately mints stamps: the same
    // minting source outside core/fabric/baselines is clean.
    let f = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/r2_bad.rs"),
    );
    assert_eq!(count(&f, "R2"), 0, "{f:#?}");
}

// ---------------------------------------------------------------- R3 --

#[test]
fn r3_flags_unwrap_expect_and_panics() {
    let f = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r3_bad.rs"),
    );
    // unwrap, expect, panic!, unreachable! — indexing moved to R10.
    assert_eq!(count(&f, "R3"), 4, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("`.unwrap`")));
    assert!(f.iter().any(|x| x.message.contains("`panic!`")));
    // `xs[i]` is guarded only by `if i > xs.len()`, which still admits
    // i == xs.len(): R10 keeps flagging it.
    assert_eq!(count(&f, "R10"), 1, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("slice indexing")));
}

#[test]
fn r3_accepts_get_debug_assert_allow_and_test_code() {
    let f = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r3_good.rs"),
    );
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}

#[test]
fn r3_does_not_apply_outside_hot_path_crates() {
    let f = run(
        "crates/cli/src/fixture.rs",
        include_str!("fixtures/r3_bad.rs"),
    );
    assert_eq!(count(&f, "R3"), 0, "{f:#?}");
    assert_eq!(count(&f, "R10"), 0, "{f:#?}");
}

// ---------------------------------------------------------------- R4 --

fn schema() -> Json {
    Json::parse(
        r#"{"type": "object", "required": ["event"],
            "properties": {"event": {"enum": ["run_meta", "run_end"]}}}"#,
    )
    .expect("fixture schema parses")
}

#[test]
fn r4_accepts_matching_vocabulary() {
    let f = check_vocabulary(
        "crates/types/src/obs.rs",
        include_str!("fixtures/r4_obs_good.rs"),
        "schemas/events.schema.json",
        &schema(),
    );
    assert_eq!(f, Vec::new(), "{f:#?}");
}

#[test]
fn r4_flags_drift_in_both_directions() {
    let f = check_vocabulary(
        "crates/types/src/obs.rs",
        include_str!("fixtures/r4_obs_bad.rs"),
        "schemas/events.schema.json",
        &schema(),
    );
    assert_eq!(count(&f, "R4"), 2, "{f:#?}");
    // Emitted but not in the schema: consumers cannot validate it.
    assert!(f
        .iter()
        .any(|x| x.message.contains("\"mystery_event\" is emitted but absent")));
    // Promised by the schema but never emitted: dead vocabulary.
    assert!(f
        .iter()
        .any(|x| x.message.contains("\"run_end\" but no ObsEvent::kind() arm")));
}

// ---------------------------------------------------------------- R9 --

#[test]
fn r9_derived_schema_tracks_constructed_events_bidirectionally() {
    // r4_obs_good's vocabulary: run_meta and run_end. A telemetry layer
    // constructing only RunEnd, with a schema admitting exactly run_end,
    // is in lock-step.
    let obs = include_str!("fixtures/r4_obs_good.rs");
    let tele = "fn close(&self) -> ObsEvent { ObsEvent::RunEnd { slots_run: 1 } }";
    let exact = Json::parse(
        r#"{"type": "object", "required": ["event"],
            "properties": {"event": {"enum": ["run_end"]}}}"#,
    )
    .unwrap();
    let f = r9_schema_drift(
        obs,
        ("crates/obs/src/telemetry.rs", tele),
        ("schemas/timeseries.schema.json", &exact),
        &[],
        &[],
    );
    assert_eq!(f, Vec::new(), "{f:#?}");

    // Admitting a kind the telemetry layer never constructs is drift
    // (this was legal under PR 8's one-way subset check).
    let dead = Json::parse(
        r#"{"type": "object", "required": ["event"],
            "properties": {"event": {"enum": ["run_end", "run_meta"]}}}"#,
    )
    .unwrap();
    let f = r9_schema_drift(
        obs,
        ("crates/obs/src/telemetry.rs", tele),
        ("schemas/timeseries.schema.json", &dead),
        &[],
        &[],
    );
    assert_eq!(count(&f, "R9"), 1, "{f:#?}");
    assert!(f.iter().any(|x| x.key == "schema-only run_meta"));

    // Constructing a kind the schema rejects is the other direction.
    let tele_extra = "fn close(&self) -> ObsEvent { ObsEvent::RunEnd { slots_run: 1 } }\nfn meta(&self) -> ObsEvent { ObsEvent::RunMeta { seed: 7 } }";
    let f = r9_schema_drift(
        obs,
        ("crates/obs/src/telemetry.rs", tele_extra),
        ("schemas/timeseries.schema.json", &exact),
        &[],
        &[],
    );
    assert_eq!(count(&f, "R9"), 1, "{f:#?}");
    assert!(f.iter().any(|x| x.key == "emit-only run_meta"));

    // Pattern-matching a variant (match arms, if-let) is not emission.
    let tele_match = "fn close(&self) -> ObsEvent { ObsEvent::RunEnd { slots_run: 1 } }\nfn fold(&mut self, ev: &ObsEvent) { if let ObsEvent::RunMeta { seed } = ev { self.seed = *seed; } }";
    let f = r9_schema_drift(
        obs,
        ("crates/obs/src/telemetry.rs", tele_match),
        ("schemas/timeseries.schema.json", &exact),
        &[],
        &[],
    );
    assert_eq!(f, Vec::new(), "{f:#?}");
}

#[test]
fn r9_schema_ids_must_be_emitted_somewhere() {
    let obs = include_str!("fixtures/r4_obs_good.rs");
    let ts = Json::parse(
        r#"{"properties": {"event": {"enum": ["run_end"]},
            "schema": {"enum": ["fifoms-timeseries-v1"]}}}"#,
    )
    .unwrap();
    let tele = "fn close(&self) -> ObsEvent { ObsEvent::RunEnd { slots_run: 1 } }";
    let emitters = vec![(
        "crates/obs/src/sink.rs".to_string(),
        "fn header() { row.set(\"schema\", \"fifoms-timeseries-v1\"); }".to_string(),
    )];
    let derived = [("schemas/timeseries.schema.json", &ts)];
    let f = r9_schema_drift(
        obs,
        ("crates/obs/src/telemetry.rs", tele),
        ("schemas/timeseries.schema.json", &ts),
        &derived,
        &emitters,
    );
    assert_eq!(f, Vec::new(), "{f:#?}");

    // Same schema with no emitter producing the id literal: dead schema.
    let f = r9_schema_drift(
        obs,
        ("crates/obs/src/telemetry.rs", tele),
        ("schemas/timeseries.schema.json", &ts),
        &derived,
        &[],
    );
    assert_eq!(count(&f, "R9"), 1, "{f:#?}");
    assert!(f
        .iter()
        .any(|x| x.key == "dead-schema-id fifoms-timeseries-v1"));
}

// ---------------------------------------------------------------- R7 --

fn program(files: &[(&str, &str)]) -> Program {
    Program::build(
        files
            .iter()
            .map(|(rel, src)| (rel.to_string(), src.to_string()))
            .collect(),
    )
}

#[test]
fn r7_flags_missed_forwards_and_non_delegating_overrides() {
    let p = program(&[
        (
            "crates/fabric/src/switch.rs",
            include_str!("fixtures/r7_trait.rs"),
        ),
        (
            "crates/fabric/src/logging.rs",
            include_str!("fixtures/r7_bad.rs"),
        ),
    ]);
    let f = r7_wrapper_forwarding(&p);
    assert_eq!(count(&f, "R7"), 2, "{f:#?}");
    assert!(f.iter().any(|x| x.key == "missing-forward drain_spans"));
    assert!(f.iter().any(|x| x.key == "no-delegate recycle"));
    assert!(f.iter().any(|x| x.message.contains("LoggingSwitch")));
}

#[test]
fn r7_accepts_complete_wrappers_boxes_and_plain_impls() {
    let p = program(&[
        (
            "crates/fabric/src/switch.rs",
            include_str!("fixtures/r7_trait.rs"),
        ),
        (
            "crates/fabric/src/logging.rs",
            include_str!("fixtures/r7_good.rs"),
        ),
    ]);
    let f = r7_wrapper_forwarding(&p);
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}

// ---------------------------------------------------------------- R8 --

#[test]
fn r8_flags_unsaved_and_unrestored_fields() {
    let p = program(&[(
        "crates/core/src/counters.rs",
        include_str!("fixtures/r8_bad.rs"),
    )]);
    let f = r8_checkpoint_coverage(&p);
    // high_water missing both ways, dropped missing on restore only.
    assert_eq!(count(&f, "R8"), 3, "{f:#?}");
    assert!(f.iter().any(|x| x.key == "unsaved high_water"));
    assert!(f.iter().any(|x| x.key == "unrestored high_water"));
    assert!(f.iter().any(|x| x.key == "unrestored dropped"));
}

#[test]
fn r8_accepts_full_coverage_generics_and_documented_exclusions() {
    let p = program(&[(
        "crates/core/src/counters.rs",
        include_str!("fixtures/r8_good.rs"),
    )]);
    let f = r8_checkpoint_coverage(&p);
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}

// --------------------------------------------------------------- R10 --

#[test]
fn r10_flags_undischarged_index_sites() {
    let f = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r10_bad.rs"),
    );
    // bare, wrong_base, not_dominated, unchecked_helper.
    assert_eq!(count(&f, "R10"), 4, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("dominating bound check")));
}

#[test]
fn r10_accepts_every_discharge_form() {
    let f = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r10_good.rs"),
    );
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}

#[test]
fn r10_does_not_apply_outside_hot_path_crates() {
    let f = run(
        "crates/cli/src/fixture.rs",
        include_str!("fixtures/r10_bad.rs"),
    );
    assert_eq!(count(&f, "R10"), 0, "{f:#?}");
}

// ---------------------------------------------------------------- R5 --

#[test]
fn r5_flags_unjustified_unsafe_and_empty_invariant() {
    let f = run(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/r5_bad.rs"),
    );
    assert_eq!(count(&f, "R5"), 2, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("SAFETY")));
    assert!(f.iter().any(|x| x.message.contains("INVARIANT")));
}

#[test]
fn r5_accepts_justified_unsafe_and_invariants() {
    let f = run(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/r5_good.rs"),
    );
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}

// ---------------------------------------------------------------- R6 --

#[test]
fn r6_flags_float_text_in_fingerprints() {
    let f = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/r6_bad.rs"),
    );
    // grid_hash (named) and cell_identity (FINGERPRINT-marked).
    assert_eq!(count(&f, "R6"), 2, "{f:#?}");
    assert!(f.iter().any(|x| x.line < 13), "named fn finding {f:#?}");
    assert!(f.iter().any(|x| x.line > 13), "marked fn finding {f:#?}");
}

#[test]
fn r6_accepts_to_bits_and_non_fingerprint_formatting() {
    let f = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/r6_good.rs"),
    );
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}
