//! Fixture tests for the six fifoms-lint rules: one good and one bad
//! exemplar per rule under `tests/fixtures/`. The fixtures are data, not
//! code — the engine's walker skips `fixtures/` directories, and cargo
//! never compiles them — so they can contain arbitrary violations.
//!
//! Fixtures are checked through `check_file` with a *synthetic* relative
//! path: the path picks the crate domain, so the same source can be
//! asserted flagged inside a rule's domain and ignored outside it.

use fifoms_lint::matcher::Matcher;
use fifoms_lint::rules::{check_derived_vocabulary, check_file, check_vocabulary, Finding};
use fifoms_obs::Json;

fn run(rel: &str, src: &str) -> Vec<Finding> {
    let m = Matcher::new(src);
    check_file(rel, &m)
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

// ---------------------------------------------------------------- R1 --

#[test]
fn r1_flags_every_nondeterminism_source() {
    let f = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/r1_bad.rs"),
    );
    // for over self.seen, counts.iter(), counts.keys(),
    // Instant::now, SystemTime::now, thread_rng, rand::random.
    assert_eq!(count(&f, "R1"), 7, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("hash-ordered `counts`")));
    assert!(f.iter().any(|x| x.message.contains("wall-clock")));
    assert!(f.iter().any(|x| x.message.contains("unseeded RNG")));
}

#[test]
fn r1_accepts_keyed_access_sorted_projections_and_tests() {
    let f = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/r1_good.rs"),
    );
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}

#[test]
fn r1_does_not_apply_outside_its_domain() {
    // The same nondeterminism soup in an analysis crate is legal: only
    // result-bearing crates carry the determinism contract.
    let f = run(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/r1_bad.rs"),
    );
    assert_eq!(count(&f, "R1"), 0, "{f:#?}");
}

// ---------------------------------------------------------------- R2 --

/// The regression the rule exists for: an egress-fault retry path that
/// re-stamps the retried copy. Both the fresh mint and the
/// non-preserving `Packet::new` must flag.
#[test]
fn r2_catches_stamp_minting_retransmission() {
    let f = run(
        "crates/fabric/src/fixture.rs",
        include_str!("fixtures/r2_bad.rs"),
    );
    // now_slot, Slot::now, Timestamp::now mints + two bad Packet::new.
    assert_eq!(count(&f, "R2"), 5, "{f:#?}");
    assert!(f
        .iter()
        .any(|x| x.message.contains("non-preserved arrival stamp `fresh`")));
    assert!(f.iter().any(|x| x.message.contains("ORIGINAL arrival")));
}

/// The overload-protection variant of the same bug class: a pushout
/// admission policy that re-mints the evicted copy's arrival stamp at
/// the eviction slot. Stamp-preserving pushout is what keeps finite
/// buffers inside Theorem 1; the rule must flag the re-mint in the core
/// domain where pushout lives.
#[test]
fn r2_catches_pushout_restamping_evicted_copies() {
    let f = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r2_pushout_bad.rs"),
    );
    // now_slot + Slot::now mints, plus two non-preserving Packet::new.
    assert_eq!(count(&f, "R2"), 4, "{f:#?}");
    assert!(f
        .iter()
        .any(|x| x.message.contains("non-preserved arrival stamp `eviction_slot`")));
    assert!(f.iter().any(|x| x.message.contains("ORIGINAL arrival")));
}

#[test]
fn r2_accepts_preserved_arrival_stamps() {
    let f = run(
        "crates/fabric/src/fixture.rs",
        include_str!("fixtures/r2_good.rs"),
    );
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}

#[test]
fn r2_exempts_admission_modules_by_domain() {
    // Admission (sim/traffic/cli) legitimately mints stamps: the same
    // minting source outside core/fabric/baselines is clean.
    let f = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/r2_bad.rs"),
    );
    assert_eq!(count(&f, "R2"), 0, "{f:#?}");
}

// ---------------------------------------------------------------- R3 --

#[test]
fn r3_flags_unwrap_expect_panics_and_indexing() {
    let f = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r3_bad.rs"),
    );
    // unwrap, expect, panic!, unreachable!, xs[i].
    assert_eq!(count(&f, "R3"), 5, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("`.unwrap`")));
    assert!(f.iter().any(|x| x.message.contains("`panic!`")));
    assert!(f.iter().any(|x| x.message.contains("slice indexing")));
}

#[test]
fn r3_accepts_get_debug_assert_allow_and_test_code() {
    let f = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/r3_good.rs"),
    );
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}

#[test]
fn r3_does_not_apply_outside_hot_path_crates() {
    let f = run(
        "crates/cli/src/fixture.rs",
        include_str!("fixtures/r3_bad.rs"),
    );
    assert_eq!(count(&f, "R3"), 0, "{f:#?}");
}

// ---------------------------------------------------------------- R4 --

fn schema() -> Json {
    Json::parse(
        r#"{"type": "object", "required": ["event"],
            "properties": {"event": {"enum": ["run_meta", "run_end"]}}}"#,
    )
    .expect("fixture schema parses")
}

#[test]
fn r4_accepts_matching_vocabulary() {
    let f = check_vocabulary(
        "crates/types/src/obs.rs",
        include_str!("fixtures/r4_obs_good.rs"),
        "schemas/events.schema.json",
        &schema(),
    );
    assert_eq!(f, Vec::new(), "{f:#?}");
}

#[test]
fn r4_flags_drift_in_both_directions() {
    let f = check_vocabulary(
        "crates/types/src/obs.rs",
        include_str!("fixtures/r4_obs_bad.rs"),
        "schemas/events.schema.json",
        &schema(),
    );
    assert_eq!(count(&f, "R4"), 2, "{f:#?}");
    // Emitted but not in the schema: consumers cannot validate it.
    assert!(f
        .iter()
        .any(|x| x.message.contains("\"mystery_event\" is emitted but absent")));
    // Promised by the schema but never emitted: dead vocabulary.
    assert!(f
        .iter()
        .any(|x| x.message.contains("\"run_end\" but no ObsEvent::kind() arm")));
}

#[test]
fn r4_derived_schema_must_be_a_subset_of_the_vocabulary() {
    // A derived stream naming a subset of the emitted kinds is fine.
    let subset = Json::parse(
        r#"{"type": "object", "required": ["event"],
            "properties": {"event": {"enum": ["run_end"]}}}"#,
    )
    .unwrap();
    let f = check_derived_vocabulary(
        include_str!("fixtures/r4_obs_good.rs"),
        "schemas/timeseries.schema.json",
        &subset,
    );
    assert_eq!(f, Vec::new(), "{f:#?}");

    // A derived stream naming a kind nobody emits is dead vocabulary...
    let phantom = Json::parse(
        r#"{"type": "object", "required": ["event"],
            "properties": {"event": {"enum": ["run_end", "phantom_event"]}}}"#,
    )
    .unwrap();
    let f = check_derived_vocabulary(
        include_str!("fixtures/r4_obs_good.rs"),
        "schemas/timeseries.schema.json",
        &phantom,
    );
    assert_eq!(count(&f, "R4"), 1, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("\"phantom_event\"")));

    // ...and a derived schema with no enum at all cannot gate anything.
    let empty = Json::parse(r#"{"type": "object"}"#).unwrap();
    let f = check_derived_vocabulary(
        include_str!("fixtures/r4_obs_good.rs"),
        "schemas/timeseries.schema.json",
        &empty,
    );
    assert_eq!(count(&f, "R4"), 1, "{f:#?}");
    assert!(f.iter().any(|x| x.key == "missing-event-enum"));
}

// ---------------------------------------------------------------- R5 --

#[test]
fn r5_flags_unjustified_unsafe_and_empty_invariant() {
    let f = run(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/r5_bad.rs"),
    );
    assert_eq!(count(&f, "R5"), 2, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("SAFETY")));
    assert!(f.iter().any(|x| x.message.contains("INVARIANT")));
}

#[test]
fn r5_accepts_justified_unsafe_and_invariants() {
    let f = run(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/r5_good.rs"),
    );
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}

// ---------------------------------------------------------------- R6 --

#[test]
fn r6_flags_float_text_in_fingerprints() {
    let f = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/r6_bad.rs"),
    );
    // grid_hash (named) and cell_identity (FINGERPRINT-marked).
    assert_eq!(count(&f, "R6"), 2, "{f:#?}");
    assert!(f.iter().any(|x| x.line < 13), "named fn finding {f:#?}");
    assert!(f.iter().any(|x| x.line > 13), "marked fn finding {f:#?}");
}

#[test]
fn r6_accepts_to_bits_and_non_fingerprint_formatting() {
    let f = run(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/r6_good.rs"),
    );
    assert_eq!(f, Vec::new(), "good fixture must be fully clean");
}
