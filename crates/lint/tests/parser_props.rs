//! Property tests for the structural layer: the recursive-descent
//! parser must (a) produce spans that reconstruct to the same token
//! stream they were cut from and (b) never panic, whatever bytes it is
//! fed. The lexer is total and the parser is written to skip anything
//! it does not recognise, so both properties hold for arbitrary
//! mutations of real Rust source — which is exactly what half-saved
//! editor buffers and merge-conflict markers look like in practice.

use fifoms_lint::matcher::Matcher;
use fifoms_lint::parser;
use fifoms_lint::structural::{
    r7_wrapper_forwarding, r8_checkpoint_coverage, render_state_manifest, state_entries,
};
use fifoms_lint::Program;

/// The corpus: every committed parser fixture plus the two richest real
/// sources the workspace has (trait-heavy and checkpoint-heavy).
fn corpus() -> Vec<(String, String)> {
    let mut out = Vec::new();
    let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<_> = std::fs::read_dir(&fixtures)
        .expect("fixtures directory exists")
        .map(|e| e.expect("fixture entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    names.sort();
    for path in names {
        let rel = format!("fixtures/{}", path.file_name().unwrap().to_string_lossy());
        out.push((rel, std::fs::read_to_string(&path).expect("fixture readable")));
    }
    for real in ["../fabric/src/instrument.rs", "../core/src/slab.rs"] {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(real);
        if let Ok(src) = std::fs::read_to_string(&path) {
            out.push((real.to_string(), src));
        }
    }
    out
}

/// Join the significant tokens of `span` with single spaces. Because
/// the lexer never glues across whitespace, re-lexing this string must
/// reproduce exactly the same token texts.
fn reconstruct(m: &Matcher<'_>, lo: usize, hi: usize) -> String {
    (lo..hi).map(|i| m.text(i)).collect::<Vec<_>>().join(" ")
}

#[test]
fn item_spans_round_trip_through_the_lexer() {
    for (rel, src) in corpus() {
        let m = Matcher::new(&src);
        let ast = parser::parse(&m);
        let mut spans: Vec<(&str, usize, usize)> = Vec::new();
        for s in &ast.structs {
            spans.push(("struct", s.span.lo, s.span.hi));
        }
        for i in &ast.impls {
            spans.push(("impl", i.span.lo, i.span.hi));
            for method in &i.methods {
                spans.push(("method body", method.body.lo, method.body.hi));
            }
        }
        for (what, lo, hi) in spans {
            assert!(lo <= hi && hi <= m.len(), "{rel}: {what} span out of range");
            let text = reconstruct(&m, lo, hi);
            let again = Matcher::new(&text);
            assert_eq!(
                again.len(),
                hi - lo,
                "{rel}: {what} span re-lexed to a different token count"
            );
            for (k, i) in (lo..hi).enumerate() {
                assert_eq!(
                    again.text(k),
                    m.text(i),
                    "{rel}: {what} span token {k} changed across the round trip"
                );
            }
        }
    }
}

#[test]
fn struct_fields_and_impl_methods_sit_inside_their_item_span() {
    for (rel, src) in corpus() {
        let m = Matcher::new(&src);
        let ast = parser::parse(&m);
        for s in &ast.structs {
            let (span_line, _) = m.line_col(s.span.lo);
            for f in &s.fields {
                assert!(
                    f.line >= span_line,
                    "{rel}: struct {} field {} reported before the struct itself",
                    s.name,
                    f.name
                );
            }
        }
        for i in &ast.impls {
            for method in &i.methods {
                assert!(
                    i.span.lo <= method.body.lo && method.body.hi <= i.span.hi,
                    "{rel}: method {} body escapes its impl span",
                    method.name
                );
            }
        }
    }
}

/// Deterministic xorshift64 generator — the tests must not depend on
/// ambient randomness, so failures reproduce from the fixed seed.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One seeded mutation of `src`: delete a span, duplicate a span,
/// splice in structural noise, or truncate. Operates on chars so the
/// result stays valid UTF-8.
fn mutate(rng: &mut XorShift, src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    if chars.is_empty() {
        return "{".into();
    }
    let a = rng.below(chars.len());
    let b = (a + 1 + rng.below(40)).min(chars.len());
    match rng.below(4) {
        0 => {
            // Delete [a, b): unbalances braces, splits tokens.
            let mut out: Vec<char> = chars[..a].to_vec();
            out.extend_from_slice(&chars[b..]);
            out.into_iter().collect()
        }
        1 => {
            // Duplicate [a, b) in place: duplicate items and fields.
            let mut out: Vec<char> = chars[..b].to_vec();
            out.extend_from_slice(&chars[a..b]);
            out.extend_from_slice(&chars[b..]);
            out.into_iter().collect()
        }
        2 => {
            // Splice hostile structural noise at `a`.
            const NOISE: &[&str] = &[
                "}}}", "{{{", "impl", "struct S", "fn (", "<<<>>>", "\"", "r#\"", "/*", "//",
                "'a'", "=>", "#[cfg(test)]", "b\"\\x", "::<>",
            ];
            let mut out: Vec<char> = chars[..a].to_vec();
            out.extend(NOISE[rng.below(NOISE.len())].chars());
            out.extend_from_slice(&chars[a..]);
            out.into_iter().collect()
        }
        _ => chars[..a].iter().collect(), // Truncate mid-item.
    }
}

#[test]
fn parser_and_structural_rules_never_panic_on_mutated_sources() {
    let corpus = corpus();
    let mut rng = XorShift(0x5eed_cafe_f00d_1234);
    let mut mutants = 0usize;
    for (rel, src) in &corpus {
        for _ in 0..30 {
            let mutant = mutate(&mut rng, src);
            let m = Matcher::new(&mutant);
            let _ = parser::parse(&m);
            // The cross-file passes must hold up too: a program where
            // one file is garbage still has to lint the others.
            let program = Program::build(vec![
                ("crates/x/src/mutant.rs".into(), mutant),
                ("crates/x/src/good.rs".into(), src.clone()),
            ]);
            let _ = r7_wrapper_forwarding(&program);
            let _ = r8_checkpoint_coverage(&program);
            let _ = render_state_manifest(&state_entries(&program), None);
            mutants += 1;
        }
        let _ = rel;
    }
    assert!(
        mutants >= 200,
        "corpus too small: only {mutants} mutants exercised"
    );
}
