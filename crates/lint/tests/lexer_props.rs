//! Property-style round-trip tests for the fifoms-lint lexer. The build
//! environment has no proptest/quickcheck, so the generator is a small
//! seeded xorshift (the same idiom as `fifoms-obs`'s json_props):
//! hundreds of random token soups per run, fully deterministic,
//! shrinkable by seed.
//!
//! The invariant every rule depends on is *totality*: each byte of the
//! source lands in exactly one token, so concatenating the token texts
//! reproduces the file byte for byte, and `line_col` of any offset is
//! consistent with counting newlines by hand. A lexer that drops or
//! duplicates bytes would silently shift every finding's location.

use fifoms_lint::lexer::{Lexed, TokKind};

/// xorshift64* — deterministic, dependency-free pseudo-randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn ident(&mut self) -> String {
        let len = 1 + self.below(8) as usize;
        let mut s = String::new();
        if self.below(8) == 0 {
            s.push_str("r#"); // raw identifier
        }
        for i in 0..len {
            let c = if i == 0 {
                char::from(b'a' + self.below(26) as u8)
            } else if self.below(4) == 0 {
                '_'
            } else {
                char::from(b'0' + self.below(10) as u8)
            };
            s.push(c);
        }
        s
    }

    fn number(&mut self) -> String {
        match self.below(6) {
            0 => format!("{}", self.below(1 << 32)),
            1 => format!("0x{:x}", self.below(1 << 32)),
            2 => format!("0b{:b}", self.below(256)),
            3 => format!("{}.{}", self.below(1000), self.below(1000)),
            4 => format!("{}e{}{}", self.below(100), if self.below(2) == 0 { "+" } else { "-" }, self.below(30)),
            _ => format!("{}_u{}", self.below(1000), [8u64, 16, 32, 64][self.below(4) as usize]),
        }
    }

    fn string_lit(&mut self) -> String {
        match self.below(5) {
            // Raw strings with fences deep enough to hold quotes.
            0 => format!("r\"plain {}\"", self.below(100)),
            1 => format!("r#\"has \"quotes\" {}\"#", self.below(100)),
            2 => format!("br##\"fence \"# trap {}\"##", self.below(100)),
            // Escaped strings.
            3 => format!("\"esc \\\" \\\\ \\n {}\"", self.below(100)),
            _ => format!("b\"bytes \\x7f {}\"", self.below(100)),
        }
    }

    fn charlike(&mut self) -> String {
        match self.below(5) {
            0 => "'x'".into(),
            1 => "'\\n'".into(),
            2 => "'\\''".into(),
            3 => "b'q'".into(),
            // Lifetimes — the disambiguation hazard.
            _ => format!("'{}", self.ident().trim_start_matches("r#")),
        }
    }

    fn comment(&mut self) -> String {
        match self.below(4) {
            0 => format!("// line comment {}\n", self.below(100)),
            1 => "/* flat block */".into(),
            2 => "/* outer /* nested /* deep */ */ still outer */".into(),
            _ => "/// doc comment with `code`\n".into(),
        }
    }

    fn punct_run(&mut self) -> String {
        const PUNCTS: &[&str] = &[
            "::", "->", "=>", "..", "..=", "==", "!=", "<=", ">=", "&&", "||",
            "+", "-", "*", "/", "%", "^", "!", "&", "|", "<", ">", "=", "@",
            "(", ")", "[", "]", "{", "}", ",", ";", ":", "#", "?", ".",
        ];
        PUNCTS[self.below(PUNCTS.len() as u64) as usize].to_string()
    }

    /// One random source file: a soup of every token category glued with
    /// random whitespace.
    fn source(&mut self) -> String {
        let pieces = 2 + self.below(60) as usize;
        let mut src = String::new();
        for _ in 0..pieces {
            match self.below(7) {
                0 => src.push_str(&self.ident()),
                1 => src.push_str(&self.number()),
                2 => src.push_str(&self.string_lit()),
                3 => src.push_str(&self.charlike()),
                4 => src.push_str(&self.comment()),
                _ => src.push_str(&self.punct_run()),
            }
            match self.below(4) {
                0 => src.push(' '),
                1 => src.push('\n'),
                2 => src.push_str("\t "),
                _ => src.push_str("  \n"),
            }
        }
        src
    }
}

/// Concatenating every token's text must reproduce the input byte for
/// byte — the totality invariant all span arithmetic rests on.
#[test]
fn lex_reemit_is_byte_identical() {
    let mut rng = Rng(0x5EED_0001);
    for round in 0..300 {
        let src = rng.source();
        let lexed = Lexed::new(&src);
        let rebuilt: String = (0..lexed.toks.len()).map(|i| lexed.text(i)).collect();
        assert_eq!(rebuilt, src, "round {round}: re-emit diverged\n--- src ---\n{src}");
    }
}

/// Token spans must tile the file: start at 0, contiguous, end at len.
#[test]
fn spans_tile_without_gaps_or_overlap() {
    let mut rng = Rng(0x5EED_0002);
    for _ in 0..300 {
        let src = rng.source();
        let lexed = Lexed::new(&src);
        let mut cursor = 0;
        for t in &lexed.toks {
            assert_eq!(t.start, cursor, "gap or overlap before {t:?} in {src:?}");
            assert!(t.end > t.start, "empty token {t:?} in {src:?}");
            cursor = t.end;
        }
        assert_eq!(cursor, src.len(), "trailing bytes untokenized in {src:?}");
    }
}

/// `line_col` must agree with counting newlines by hand at every token
/// start — findings are reported through it, so a drifted line number
/// points the operator at the wrong code.
#[test]
fn line_col_matches_manual_count() {
    let mut rng = Rng(0x5EED_0003);
    for _ in 0..100 {
        let src = rng.source();
        let lexed = Lexed::new(&src);
        for t in &lexed.toks {
            let upto = &src[..t.start];
            let line = 1 + upto.bytes().filter(|&b| b == b'\n').count();
            let col = 1 + upto.rfind('\n').map_or(t.start, |nl| t.start - nl - 1);
            assert_eq!(
                lexed.line_col(t.start),
                (line, col),
                "span {t:?} at offset {} in {src:?}",
                t.start
            );
        }
    }
}

/// Random soups never produce Unknown tokens — every generated category
/// is one the lexer claims to understand.
#[test]
fn soup_lexes_without_unknown() {
    let mut rng = Rng(0x5EED_0004);
    for _ in 0..300 {
        let src = rng.source();
        let lexed = Lexed::new(&src);
        for (i, t) in lexed.toks.iter().enumerate() {
            assert_ne!(
                t.kind,
                TokKind::Unknown,
                "unknown token {:?} in {src:?}",
                lexed.text(i)
            );
        }
    }
}

/// Even for adversarial byte soup (arbitrary non-UTF8-hostile bytes the
/// lexer has no token for), totality must hold: Unknown tokens are fine,
/// dropped bytes are not.
#[test]
fn arbitrary_ascii_still_tiles() {
    let mut rng = Rng(0x5EED_0005);
    for _ in 0..300 {
        let len = rng.below(80) as usize;
        let src: String = (0..len)
            .map(|_| char::from(b' ' + rng.below(95) as u8))
            .collect();
        let lexed = Lexed::new(&src);
        let rebuilt: String = (0..lexed.toks.len()).map(|i| lexed.text(i)).collect();
        assert_eq!(rebuilt, src, "re-emit diverged on byte soup {src:?}");
    }
}
