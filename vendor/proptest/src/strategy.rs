//! The [`Strategy`] trait and implementations for ranges and tuples.

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// simply produces a value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($ty:ty) => {
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + rng.below(span + 1) as $ty
            }
        }
    };
}

int_range_strategy!(u8);
int_range_strategy!(u16);
int_range_strategy!(u32);
int_range_strategy!(u64);
int_range_strategy!(usize);

macro_rules! signed_range_strategy {
    ($ty:ty) => {
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }
    };
}

signed_range_strategy!(i32);
signed_range_strategy!(i64);
signed_range_strategy!(isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);

/// A constant strategy: always yields a clone of the value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::new(11);
        for _ in 0..500 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let (a, b) = ((0u16..4), (1u64..=3)).generate(&mut rng);
            assert!(a < 4 && (1..=3).contains(&b));
            let doubled = (0u32..5).prop_map(|x| x * 2).generate(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 10);
        }
    }
}
