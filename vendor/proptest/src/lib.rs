//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of `proptest` this workspace uses: the [`Strategy`] trait over
//! integer/float ranges, tuples and collections, `prop_map`, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`]
//! macros. Cases are generated from a fixed per-test seed so failures are
//! reproducible; there is no shrinking — the failing inputs are printed
//! as generated.
//!
//! The number of cases per property defaults to 64 and can be raised with
//! the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports: the [`Strategy`](strategy::Strategy) trait and the macros.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Result type the generated property bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Number of cases to run per property.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                // Seed differs per test (by name) but is stable across runs.
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let __cases = $crate::cases();
                let mut __ran = 0u32;
                let mut __rejected = 0u32;
                while __ran < __cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __desc = format!(concat!($(stringify!($arg), " = {:?}, "),+), $(&$arg),+);
                    let __result: $crate::TestCaseResult = (|| {
                        { $body }
                        Ok(())
                    })();
                    match __result {
                        Ok(()) => __ran += 1,
                        Err($crate::TestCaseError::Reject) => {
                            __rejected += 1;
                            if __rejected > 50 * __cases {
                                // Give up quietly: the assumption is too strict
                                // to ever find enough cases.
                                break;
                            }
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed: {}\n  inputs: {}",
                                stringify!($name), msg, __desc
                            );
                        }
                    }
                }
            }
        )+
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}
