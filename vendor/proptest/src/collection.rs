//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies: an exact size or a
/// half-open range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        debug_assert!(self.min < self.max);
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Generate `Vec`s of values from `element`, sized within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate `BTreeSet`s of values from `element`, sized within `size`.
///
/// Duplicates are regenerated a bounded number of times; if the element
/// domain is too small to reach the minimum size, the set is returned as
/// large as it got (mirroring proptest's best-effort behaviour).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < 16 * target + 32 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = vec(0u8..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            let exact = vec(0u8..10, 6).generate(&mut rng);
            assert_eq!(exact.len(), 6);
        }
    }

    #[test]
    fn btree_set_reaches_target_when_domain_allows() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = btree_set(0usize..100, 3..6).generate(&mut rng);
            assert!((3..6).contains(&s.len()), "got {}", s.len());
        }
        // Domain smaller than the minimum: best effort, no hang.
        let s = btree_set(0usize..2, 3..6).generate(&mut rng);
        assert!(s.len() <= 2);
    }

    #[test]
    fn nested_collections_compose() {
        let mut rng = TestRng::new(4);
        let v = vec(vec(0u8..3, 6), 6).generate(&mut rng);
        assert_eq!(v.len(), 6);
        assert!(v.iter().all(|inner| inner.len() == 6));
    }
}
