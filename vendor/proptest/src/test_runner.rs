//! The case generator RNG: xoshiro256++ seeded from the test name.

/// Deterministic RNG used to generate property-test cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary `u64`, expanding with SplitMix64.
    pub fn new(seed: u64) -> TestRng {
        let mut s = [0u64; 4];
        let mut x = seed;
        for w in s.iter_mut() {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            *w = z;
        }
        TestRng { s }
    }

    /// Seed stably from a test name (FNV-1a of the name).
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply map; the tiny bias is irrelevant for testing.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn named_seeds_differ_and_repeat() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bounded_draws_in_range() {
        let mut rng = TestRng::new(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
