//! Offline vendored subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this crate provides a
//! small, functional benchmark harness under criterion's names: it runs each
//! benchmark `sample_size` times within (roughly) `measurement_time` and
//! prints the median per-iteration wall time. There are no plots, baselines
//! or statistical analysis — the point is that `cargo bench` compiles and
//! produces usable numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export hint: prevent the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Set the target measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_one(&cfg, name, None, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declare how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        run_one(&cfg, &full, self.throughput, f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (printing nothing extra in this harness).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units of work per iteration, used to report a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to batch per timed run.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state: batch many iterations.
    SmallInput,
    /// Large per-iteration state: one iteration per batch.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Accumulated (iterations, elapsed) samples.
    samples: Vec<(u64, Duration)>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.iters_per_sample;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push((iters, start.elapsed()));
    }

    /// Time `routine` over fresh state from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = self.iters_per_sample;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push((iters, total));
    }
}

fn run_one<F>(cfg: &Criterion, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up / calibration pass: one iteration, used to scale the sample
    // loop so the whole benchmark lands near measurement_time.
    let mut bench = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    let warm_start = Instant::now();
    f(&mut bench);
    let once = warm_start.elapsed().max(Duration::from_nanos(1));
    while warm_start.elapsed() < cfg.warm_up_time {
        f(&mut bench);
    }

    let budget = cfg.measurement_time.as_secs_f64() / cfg.sample_size as f64;
    let iters = (budget / once.as_secs_f64()).clamp(1.0, 1e6) as u64;

    let mut bench = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    for _ in 0..cfg.sample_size {
        f(&mut bench);
    }

    let mut per_iter: Vec<f64> = bench
        .samples
        .iter()
        .filter(|(n, _)| *n > 0)
        .map(|(n, d)| d.as_secs_f64() / *n as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
    let rate = match throughput {
        Some(Throughput::Elements(e)) if median > 0.0 => {
            format!("  {:>12.0} elem/s", e as f64 / median)
        }
        Some(Throughput::Bytes(bytes)) if median > 0.0 => {
            format!("  {:>12.0} B/s", bytes as f64 / median)
        }
        _ => String::new(),
    };
    println!("bench {name:<50} {:>12}{rate}", format_time(median));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a benchmark group: a function running each target under a config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runner_smoke() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function(BenchmarkId::new("sum", 10), |b| {
            b.iter(|| (0..10u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
