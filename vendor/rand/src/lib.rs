//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) part of `rand` the workspace actually uses, with **bit-exact**
//! output streams relative to `rand` 0.8.5:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64, exactly as in
//!   `rand` 0.8 on 64-bit platforms;
//! * [`Rng::gen_range`] — Lemire widening-multiply sampling with `rand`'s
//!   "conservative zone" rejection rule for integers, and the `[1, 2)`
//!   mantissa-fill method for floats;
//! * [`Rng::gen_bool`] — the `Bernoulli` 2^64-scaled integer comparison.
//!
//! Keeping the streams identical means seeded experiments reproduce the same
//! arrival processes and tie-breaks as they would under the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let n = rem.len();
            rem.copy_from_slice(&self.next_u64().to_le_bytes()[..n]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Byte-array seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (the expansion
    /// `rand` 0.8 uses for its xoshiro-family generators).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let n = chunk.len();
            chunk.copy_from_slice(&z.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        if p == 1.0 {
            // rand's Bernoulli consumes no randomness for the certain case.
            return true;
        }
        // SCALE = 2^64 as f64; comparison against a 64-bit draw.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draw one sample from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening multiply helpers mirroring rand's `wmul`.
trait WideningMul: Copy {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    fn wmul(self, other: u32) -> (u32, u32) {
        let x = u64::from(self) * u64::from(other);
        ((x >> 32) as u32, x as u32)
    }
}

impl WideningMul for u64 {
    fn wmul(self, other: u64) -> (u64, u64) {
        let x = u128::from(self) * u128::from(other);
        ((x >> 64) as u64, x as u64)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $large:ty, $next:ident) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = (self.end.wrapping_sub(self.start)) as $large;
                sample_lemire::<$large, R>(range, rng)
                    .map(|hi| self.start.wrapping_add(hi as $ty))
                    .expect("nonzero range")
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let range = (hi.wrapping_sub(lo) as $large).wrapping_add(1);
                match sample_lemire::<$large, R>(range, rng) {
                    Some(v) => lo.wrapping_add(v as $ty),
                    // Full-width range: any draw is uniform.
                    None => lo.wrapping_add(<$large>::$next(rng) as $ty),
                }
            }
        }
    };
}

/// Lemire sampling with rand 0.8's "conservative zone": accept the widened
/// low word when it is below `range` shifted to the top of the word.
/// Returns `None` when `range == 0` (meaning the full integer width).
fn sample_lemire<L, R>(range: L, rng: &mut R) -> Option<L>
where
    L: WideningMul + PartialOrd + PartialEq + Copy + ZoneInt,
    R: RngCore + ?Sized,
{
    if range.is_zero() {
        return None;
    }
    let zone = range.shl_leading_zeros().wrapping_sub_one();
    loop {
        let v = L::draw(rng);
        let (hi, lo) = v.wmul(range);
        if lo <= zone {
            return Some(hi);
        }
    }
}

/// Integer plumbing for [`sample_lemire`] over the two widened widths.
trait ZoneInt: Sized {
    #[allow(clippy::wrong_self_convention)] // by-value Copy int, mirrors rand's internals
    fn is_zero(self) -> bool;
    fn shl_leading_zeros(self) -> Self;
    fn wrapping_sub_one(self) -> Self;
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    /// Raw full-width draw used for full-range inclusive sampling.
    fn next_u32(rng: &mut (impl RngCore + ?Sized)) -> Self;
    /// Raw full-width draw used for full-range inclusive sampling.
    fn next_u64(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

impl ZoneInt for u32 {
    fn is_zero(self) -> bool {
        self == 0
    }
    fn shl_leading_zeros(self) -> Self {
        self << self.leading_zeros()
    }
    fn wrapping_sub_one(self) -> Self {
        self.wrapping_sub(1)
    }
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
    fn next_u32(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u32()
    }
    fn next_u64(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u32()
    }
}

impl ZoneInt for u64 {
    fn is_zero(self) -> bool {
        self == 0
    }
    fn shl_leading_zeros(self) -> Self {
        self << self.leading_zeros()
    }
    fn wrapping_sub_one(self) -> Self {
        self.wrapping_sub(1)
    }
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
    fn next_u32(rng: &mut (impl RngCore + ?Sized)) -> Self {
        u64::from(rng.next_u32())
    }
    fn next_u64(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64()
    }
}

uniform_int_impl!(u8, u32, next_u32);
uniform_int_impl!(u16, u32, next_u32);
uniform_int_impl!(u32, u32, next_u32);
uniform_int_impl!(u64, u64, next_u64);
#[cfg(target_pointer_width = "64")]
uniform_int_impl!(usize, u64, next_u64);
#[cfg(target_pointer_width = "32")]
uniform_int_impl!(usize, u32, next_u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (low, high) = (self.start, self.end);
        assert!(low < high, "cannot sample empty range");
        let scale = high - low;
        assert!(scale.is_finite(), "range overflow in f64 sampling");
        loop {
            // Fill the 52 mantissa bits of a float in [1, 2), then shift down.
            let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
            let res = (value1_2 - 1.0) * scale + low;
            if res < high {
                return res;
            }
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (low, high) = (self.start, self.end);
        assert!(low < high, "cannot sample empty range");
        let scale = high - low;
        assert!(scale.is_finite(), "range overflow in f32 sampling");
        loop {
            let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
            let res = (value1_2 - 1.0) * scale + low;
            if res < high {
                return res;
            }
        }
    }
}

/// Seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The small, fast generator of `rand` 0.8 on 64-bit platforms:
    /// xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words, for checkpoint/restore.
        ///
        /// Restoring the exact words with [`SmallRng::from_state`] resumes
        /// the stream at precisely the next output; no draws are replayed.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from state words captured by
        /// [`SmallRng::state`].
        ///
        /// The all-zero state is the xoshiro fixed point and is mapped to
        /// `seed_from_u64(0)`, mirroring `from_seed`.
        pub fn from_state(s: [u64; 4]) -> SmallRng {
            if s == [0u64; 4] {
                return SmallRng::seed_from_u64(0);
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            if seed.iter().all(|&b| b == 0) {
                // Avoid the all-zero fixed point, as rand does.
                return SmallRng::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(
            (0..8).map(|_| a.gen_range(0u64..1 << 60)).collect::<Vec<_>>(),
            (0..8).map(|_| c.gen_range(0u64..1 << 60)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&v));
            let v = rng.gen_range(0u16..8);
            assert!(v < 8);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "gen_bool(0.3) measured {frac}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        // Must not loop or panic.
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(0u32..=u32::MAX);
    }

    /// Reference vector for xoshiro256++ seeded with SplitMix64(42) — the
    /// stream `rand` 0.8.5's `SmallRng::seed_from_u64(42)` produces.
    #[test]
    fn matches_xoshiro256plusplus_reference() {
        // SplitMix64 from 42 gives the initial state; the first outputs are
        // fully determined by the algorithm. Recompute the state expansion
        // here independently to guard the from-seed path.
        let mut s = [0u64; 4];
        let mut x = 42u64;
        for w in s.iter_mut() {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            *w = z;
        }
        let expected_first = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let mut rng = SmallRng::seed_from_u64(42);
        use super::RngCore;
        assert_eq!(rng.next_u64(), expected_first);
    }
}
